"""Structural verification: an fsck for every registered index kind.

``verify_index`` walks an index with *uncharged* page inspection (it is a
diagnostic, not a workload) and checks the cross-structure invariants each
family promises:

* R-tree family: parent pointers, level consistency, fan-out bounds, MBR
  containment, size counters;
* lazy family: all of the above plus exact hash-index <-> leaf agreement
  in both directions (stale pointers *and* orphaned entries);
* CT-R-tree: qs-region page chains (chain/fills agreement, page
  ownership, region containment), overflow buffers (list fills,
  alpha-tree leaf tags and bounds), duplicates, hash agreement, size;
* sharded engine: each shard verified recursively, plus router coverage
  -- every resident object lives in the shard its position maps to and
  the owner map mirrors actual residency;
* B+-tree family: key order, interval mirrors, arity, leaf-chain order,
  and (lazy variant) hash agreement.

Violations are typed (:class:`Violation` carries a stable ``code``, a
human-readable location, and a ``repairable`` flag); :func:`repair_index`
fixes the recoverable classes -- stale/orphaned hash entries, escaped
MBRs (re-widened, never shrunk, so lazy-update semantics survive), stale
fill counters, and stale shard-router entries -- and the caller re-runs
``verify_index`` to confirm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.btree.bptree import BPlusTree
from repro.btree.lazy import LazyBPlusTree
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Point, Rect
from repro.core.overflow import OWNER_QS, DataPage, NodeBuffer, QSEntry
from repro.engine.sharded import ShardedIndex
from repro.hashindex import HashIndex
from repro.lsm.tree import LSMRTree
from repro.rtree.alpha import AlphaTree
from repro.rtree.lazy import LazyRTree
from repro.rtree.node import Entry
from repro.rtree.rtree import RTree
from repro.storage.iostats import IOCategory
from repro.storage.page import NO_PAGE, PageId


@dataclass(frozen=True)
class Violation:
    """One broken invariant: a stable code, where, what, and whether
    :func:`repair_index` knows how to fix it."""

    code: str
    location: str
    message: str
    repairable: bool = False

    def __str__(self) -> str:
        flag = " [repairable]" if self.repairable else ""
        return f"{self.code} @ {self.location}: {self.message}{flag}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "location": self.location,
            "message": self.message,
            "repairable": self.repairable,
        }


@dataclass
class VerifyReport:
    """The verifier's audit trail for one index."""

    kind: str = ""
    violations: List[Violation] = field(default_factory=list)
    checked_nodes: int = 0
    checked_objects: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(
        self, code: str, location: str, message: str, *, repairable: bool = False
    ) -> None:
        self.violations.append(Violation(code, location, message, repairable))

    def repairable(self) -> List[Violation]:
        return [v for v in self.violations if v.repairable]

    def by_code(self, code: Optional[str] = None):
        """Without ``code``: a ``{code: count}`` tally; with it, the
        matching violations."""
        if code is not None:
            return [v for v in self.violations if v.code == code]
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.code] = tally.get(violation.code, 0) + 1
        return tally

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.kind}: OK ({self.checked_nodes} nodes, "
                f"{self.checked_objects} objects checked)"
            )
        codes = ", ".join(f"{c}×{n}" for c, n in sorted(self.by_code().items()))
        return f"{self.kind}: {len(self.violations)} violation(s) [{codes}]"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "checked_nodes": self.checked_nodes,
            "checked_objects": self.checked_objects,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class RepairReport:
    """What :func:`repair_index` changed."""

    kind: str = ""
    hash_repointed: int = 0
    hash_orphans_removed: int = 0
    mbrs_widened: int = 0
    fills_recomputed: int = 0
    router_entries_fixed: int = 0

    @property
    def total(self) -> int:
        return (
            self.hash_repointed
            + self.hash_orphans_removed
            + self.mbrs_widened
            + self.fills_recomputed
            + self.router_entries_fixed
        )

    def merge(self, other: "RepairReport") -> None:
        self.hash_repointed += other.hash_repointed
        self.hash_orphans_removed += other.hash_orphans_removed
        self.mbrs_widened += other.mbrs_widened
        self.fills_recomputed += other.fills_recomputed
        self.router_entries_fixed += other.router_entries_fixed

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "hash_repointed": self.hash_repointed,
            "hash_orphans_removed": self.hash_orphans_removed,
            "mbrs_widened": self.mbrs_widened,
            "fills_recomputed": self.fills_recomputed,
            "router_entries_fixed": self.router_entries_fixed,
            "total": self.total,
        }


# -- dispatch --------------------------------------------------------------


def verify_index(index, *, kind: Optional[str] = None) -> VerifyReport:
    """Check every structural invariant of ``index`` -> :class:`VerifyReport`.

    Dispatch is by concrete type for the built-in families; unknown types
    fall back to the registry's per-kind ``verifier`` capability (when
    ``kind`` names a registered spec) and finally to the duck-typed
    ``validate() -> List[str]`` convention.
    """
    t0 = perf_counter()
    inner = getattr(index, "inner", None)
    if inner is not None and hasattr(index, "health_state"):
        # A self-healing wrapper: verify whatever currently serves.
        report = verify_index(inner)
        report.elapsed_s = perf_counter() - t0
        return report

    report = VerifyReport()
    if isinstance(index, ShardedIndex):
        report.kind = "sharded"
        _verify_sharded(index, report)
    elif (
        hasattr(index, "shards")
        and hasattr(index, "partition")
        and hasattr(index, "_owner")
    ):
        # Duck-typed router surface: the parallel engine in thread mode (or
        # after its inline fallback) exposes `shards`/`partition`/`_owner`
        # exactly like ShardedIndex.  In process mode the shards live in
        # worker processes, `shards` raises AttributeError, and dispatch
        # falls through to the registry path below.
        report.kind = "sharded"
        _verify_sharded(index, report)
    elif isinstance(index, LSMRTree):
        report.kind = "lsm"
        _verify_lsm(index, report)
    elif isinstance(index, CTRTree):
        report.kind = "ct"
        _verify_ct(index, report)
    elif isinstance(index, LazyRTree):
        report.kind = "alpha" if isinstance(index, AlphaTree) else "lazy"
        _verify_lazy(index, report)
    elif isinstance(index, RTree):
        report.kind = "rtree"
        _verify_rtree(index, report)
    elif isinstance(index, LazyBPlusTree):
        report.kind = "lazy-bptree"
        _wrap_validate(index, report)
    elif isinstance(index, BPlusTree):
        report.kind = "bptree"
        _wrap_validate(index, report)
    else:
        _verify_registered(index, kind, report)
    report.elapsed_s = perf_counter() - t0
    return report


def _verify_registered(index, kind: Optional[str], report: VerifyReport) -> None:
    """Registry capability / duck-typed fallback for third-party kinds."""
    report.kind = kind or type(index).__name__
    if kind is not None:
        from repro.engine.registry import get_spec

        try:
            spec = get_spec(kind)
        except ValueError:
            spec = None
        if spec is not None and spec.verifier is not None:
            for message in spec.verifier(index):
                report.add("invariant", report.kind, message)
            return
    if hasattr(index, "validate"):
        _wrap_validate(index, report)
    else:
        report.add(
            "unsupported",
            report.kind,
            "no verifier is registered for this index type",
        )


#: Keyword -> code map for adopting ``validate()`` string output.
_CLASSIFIERS: Tuple[Tuple[str, str], ...] = (
    ("key order", "key-order"),
    ("out of order", "key-order"),
    ("outside (", "key-order"),
    ("interval mirror", "structure"),
    ("parent pointer", "structure"),
    ("leaf chain", "structure"),
    ("arity", "fanout"),
    ("overfull", "fanout"),
    ("hash", "hash-stale"),
    ("size", "size-counter"),
)


def _wrap_validate(index, report: VerifyReport) -> None:
    """Adopt a duck-typed ``validate()`` as typed violations."""
    for message in index.validate():
        code = "invariant"
        for keyword, mapped in _CLASSIFIERS:
            if keyword in message:
                code = mapped
                break
        report.add(
            code, report.kind, message, repairable=(code == "hash-stale")
        )
    report.checked_nodes += getattr(index, "node_count", lambda: 0)()
    report.checked_objects += len(index)


# -- R-tree family ---------------------------------------------------------


def _verify_rtree(tree: RTree, report: VerifyReport, prefix: str = "") -> None:
    _walk_rtree(tree, report, prefix)


def _walk_rtree(tree: RTree, report: VerifyReport, prefix: str) -> Dict[int, PageId]:
    """Structural walk shared by the plain and lazy verifiers; returns the
    object -> leaf-pid residency map."""
    live: Dict[int, PageId] = {}
    root = tree.pager.inspect(tree.root_pid)
    if root.parent != NO_PAGE:
        report.add("structure", f"{prefix}root", "root has a parent pointer")
    stack: List[Tuple[PageId, Optional[Rect], int]] = [
        (tree.root_pid, None, root.level)
    ]
    while stack:
        pid, covering, expected_level = stack.pop()
        node = tree.pager.inspect(pid)
        report.checked_nodes += 1
        loc = f"{prefix}node {pid}"
        if node.level != expected_level:
            report.add(
                "structure", loc, f"level {node.level} != expected {expected_level}"
            )
        fill = len(node.entries)
        if pid != tree.root_pid:
            if tree.shrink_on_delete:
                if not tree.min_entries <= fill <= tree.max_entries:
                    report.add(
                        "fanout",
                        loc,
                        f"fill {fill} outside "
                        f"[{tree.min_entries}, {tree.max_entries}]",
                    )
            elif fill == 0 or fill > tree.max_entries:
                report.add(
                    "fanout", loc, f"fill {fill} outside (0, {tree.max_entries}]"
                )
        # Walk the packed entry columns directly (``iter_packed`` yields the
        # canonical (lo, hi, child) bounds without per-entry view objects);
        # a Rect is only materialized for branch entries, which descend.
        for lo, hi, entry_child in node.entries.iter_packed():
            if covering is not None and not (
                covering.contains_rect(Rect._make(lo, hi))
            ):
                report.add(
                    "mbr-containment",
                    loc,
                    f"entry {entry_child} escapes the parent rectangle",
                    repairable=True,
                )
            if node.mbr is not None and not node.mbr.contains_rect(
                Rect._make(lo, hi)
            ):
                report.add(
                    "mbr-containment",
                    loc,
                    f"entry {entry_child} escapes the node's own MBR",
                    repairable=True,
                )
            if node.is_leaf:
                report.checked_objects += 1
                if entry_child in live:
                    report.add(
                        "duplicate-object",
                        loc,
                        f"object {entry_child} stored twice",
                    )
                live[entry_child] = pid
            else:
                child = tree.pager.inspect(entry_child)
                if child.parent != pid:
                    report.add(
                        "structure",
                        f"{prefix}node {entry_child}",
                        f"parent pointer {child.parent} != {pid}",
                    )
                stack.append((entry_child, Rect._make(lo, hi), node.level - 1))
    if len(live) != len(tree):
        report.add(
            "size-counter",
            f"{prefix}tree",
            f"size counter {len(tree)} != stored objects {len(live)}",
        )
    return live


def _verify_lazy(lazy: LazyRTree, report: VerifyReport, prefix: str = "") -> None:
    live = _walk_rtree(lazy.tree, report, prefix)
    _check_hash(lazy.hash, live, report, prefix)


def _check_hash(
    hash_index: HashIndex,
    live: Dict[int, PageId],
    report: VerifyReport,
    prefix: str,
) -> None:
    """Hash <-> residency agreement in both directions."""
    for obj_id, pid in live.items():
        pointed = hash_index.peek(obj_id)
        if pointed != pid:
            report.add(
                "hash-stale",
                f"{prefix}hash",
                f"object {obj_id} points at {pointed}, lives in {pid}",
                repairable=True,
            )
    for obj_id, bucket_no in _iter_hash_entries(hash_index):
        if obj_id not in live:
            report.add(
                "hash-orphan",
                f"{prefix}hash bucket {bucket_no}",
                f"entry for unknown object {obj_id}",
                repairable=True,
            )


def _iter_hash_entries(hash_index: HashIndex) -> Iterator[Tuple[int, int]]:
    """Every (object id, bucket number) with a non-null slot; uncharged."""
    per = hash_index.entries_per_bucket
    for bucket_no, bpid in sorted(hash_index._buckets.items()):
        page = hash_index._pager.inspect(bpid)
        for slot, value in enumerate(page.slots):
            if value is not None:
                yield bucket_no * per + slot, bucket_no


# -- LSM-R-tree ------------------------------------------------------------


def _verify_lsm(lsm: LSMRTree, report: VerifyReport, prefix: str = "") -> None:
    """Run-level R-tree invariants plus the LSM's own cross-run promises.

    * every run tree passes the structural walk (MBR containment, fanout,
      level/parent consistency, per-run size counter);
    * a run's sorted oid side table agrees exactly with its tree contents
      (the membership probes queries rely on must not lie);
    * no oid is both live and tombstoned within one run;
    * the bloom filter admits every oid the run mentions (no false
      negatives -- a lying bloom silently drops suppression);
    * tombstone accounting: every tombstone still suppresses some older
      version (compaction must have dropped the garbage ones);
    * the live counter equals the resolved newest-version-only object
      count across memtable + runs (each object resolves exactly once).
    """
    resolved = 0
    suppressed: set = set(lsm._mem_dead)
    for pending in lsm.memtable.iter_pending():
        if pending.oid in lsm._mem_dead:
            report.add(
                "lsm-memtable",
                f"{prefix}memtable",
                f"oid {pending.oid} is both pending and tombstoned",
            )
        resolved += 1
        suppressed.add(pending.oid)
    report.checked_objects += resolved
    runs = lsm.runs
    for i in range(len(runs) - 1, -1, -1):
        run = runs[i]
        loc = f"{prefix}run {i} (seq {run.seq})"
        _verify_rtree(run.tree, report, prefix=f"{loc}: ")
        stored = sorted(oid for oid, _ in run.tree.iter_objects())
        side = list(run.oids)
        if stored != side:
            report.add(
                "lsm-side-table",
                loc,
                f"oid side table holds {len(side)} oids, tree stores "
                f"{len(stored)}; membership probes would lie",
            )
        overlap = set(run.oids) & set(run.tombstones)
        if overlap:
            report.add(
                "lsm-tombstone",
                loc,
                f"oids both live and tombstoned: {sorted(overlap)[:5]}",
            )
        for oid in run.oids:
            if oid not in run.bloom:
                report.add(
                    "lsm-bloom",
                    loc,
                    f"bloom filter denies stored oid {oid} "
                    "(false negative)",
                )
            if oid not in suppressed:
                resolved += 1
        for oid in run.tombstones:
            if oid not in run.bloom:
                report.add(
                    "lsm-bloom",
                    loc,
                    f"bloom filter denies tombstoned oid {oid} "
                    "(false negative)",
                )
            if oid not in suppressed and not any(
                runs[j].mentions(oid) for j in range(i)
            ):
                report.add(
                    "lsm-tombstone",
                    loc,
                    f"tombstone for oid {oid} suppresses nothing older",
                )
        suppressed.update(run.oids)
        suppressed.update(run.tombstones)
    if resolved != len(lsm):
        report.add(
            "size-counter",
            f"{prefix}lsm",
            f"live counter {len(lsm)} != resolved objects {resolved}",
        )


# -- CT-R-tree -------------------------------------------------------------


def _verify_ct(ct: CTRTree, report: VerifyReport, prefix: str = "") -> None:
    live: Dict[int, PageId] = {}
    root = ct._pager.inspect(ct._root_pid)
    if root.parent != NO_PAGE:
        report.add(
            "structure", f"{prefix}root", "structural root has a parent pointer"
        )
    stack: List[Tuple[PageId, Optional[Rect]]] = [(ct._root_pid, None)]
    while stack:
        pid, covering = stack.pop()
        node = ct._pager.inspect(pid)
        report.checked_nodes += 1
        loc = f"{prefix}node {pid}"
        if len(node.entries) > ct.max_entries:
            report.add("fanout", loc, f"overfull ({len(node.entries)})")
        for entry in node.entries:
            if covering is not None and not covering.contains_rect(entry.rect):
                report.add(
                    "mbr-containment",
                    loc,
                    "entry escapes the parent rectangle",
                    repairable=True,
                )
            if node.is_leaf:
                if not isinstance(entry, QSEntry):
                    report.add("structure", loc, "leaf entry is not a QSEntry")
                    continue
                _verify_qs_chain(ct, node, entry, live, report, prefix)
            else:
                child = ct._pager.inspect(entry.child)
                if child.parent != pid:
                    report.add(
                        "structure",
                        f"{prefix}node {entry.child}",
                        f"parent pointer {child.parent} != {pid}",
                    )
                stack.append((entry.child, entry.rect))
        _verify_node_buffer(ct, node, live, report, prefix)
    _check_hash(ct.hash, live, report, prefix)
    report.checked_objects += len(live)
    if len(live) != len(ct):
        report.add(
            "size-counter",
            f"{prefix}tree",
            f"size counter {len(ct)} != stored objects {len(live)}",
        )


def _verify_qs_chain(
    ct: CTRTree,
    node,
    qs: QSEntry,
    live: Dict[int, PageId],
    report: VerifyReport,
    prefix: str,
) -> None:
    loc = f"{prefix}region {qs.region_id}"
    if len(qs.chain) != len(qs.fills):
        report.add("qs-chain", loc, "chain/fills length mismatch")
    for pid, fill in zip(qs.chain, qs.fills):
        page = ct._pager.inspect(pid)
        if not isinstance(page, DataPage):
            report.add("qs-chain", loc, f"chain pid {pid} is not a data page")
            continue
        if len(page.records) != fill:
            report.add(
                "stale-fill",
                loc,
                f"fill counter {fill} != {len(page.records)} records "
                f"on page {pid}",
                repairable=True,
            )
        if page.owner != (OWNER_QS, node.pid, qs.region_id):
            report.add("page-owner", loc, f"page {pid} has wrong owner")
        for obj_id, point in page.records.items():
            if not qs.rect.contains_point(point):
                report.add(
                    "qs-containment", loc, f"object {obj_id} outside the region"
                )
            if obj_id in live:
                report.add(
                    "duplicate-object", loc, f"object {obj_id} stored twice"
                )
            live[obj_id] = pid


def _verify_node_buffer(
    ct: CTRTree, node, live: Dict[int, PageId], report: VerifyReport, prefix: str
) -> None:
    buf = node.buffer
    loc = f"{prefix}buffer of node {node.pid}"
    if buf.kind == NodeBuffer.KIND_LIST:
        for pid, fill in zip(buf.pages, buf.fills):
            page = ct._pager.inspect(pid)
            if not isinstance(page, DataPage):
                report.add("buffer", loc, f"pid {pid} is not a data page")
                continue
            if len(page.records) != fill:
                report.add(
                    "stale-fill",
                    loc,
                    f"fill counter {fill} != {len(page.records)} records "
                    f"on page {pid}",
                    repairable=True,
                )
            for obj_id, point in page.records.items():
                if page.tolerance is not None and not page.tolerance.contains_point(
                    point
                ):
                    report.add(
                        "buffer", loc, f"object {obj_id} outside the tolerance"
                    )
                if obj_id in live:
                    report.add(
                        "duplicate-object", loc, f"object {obj_id} stored twice"
                    )
                live[obj_id] = pid
    else:
        tree = ct._buffer_trees.get(node.pid)
        if tree is None:
            report.add("buffer", loc, "tree-kind buffer without a tree")
            return
        _walk_rtree(tree, report, f"{loc}: ")
        bound = ct._buffer_bounds.get(node.pid)
        for leaf in tree.iter_leaves():
            if leaf.tag != node.pid:
                report.add("buffer", loc, f"leaf {leaf.pid} untagged")
            for entry in leaf.entries:
                if bound is not None and not bound.contains_point(entry.point):
                    report.add(
                        "buffer", loc, f"object {entry.child} out of bound"
                    )
                if entry.child in live:
                    report.add(
                        "duplicate-object",
                        loc,
                        f"object {entry.child} stored twice",
                    )
                live[entry.child] = leaf.pid


# -- sharded engine --------------------------------------------------------


def _verify_sharded(sharded: ShardedIndex, report: VerifyReport) -> None:
    residents: Dict[int, Tuple[int, Point]] = {}
    for shard in sharded.shards:
        prefix = f"shard {shard.sid}: "
        index = shard.index
        if isinstance(index, CTRTree):
            _verify_ct(index, report, prefix)
        elif isinstance(index, LazyRTree):
            _verify_lazy(index, report, prefix)
        elif isinstance(index, RTree):
            _verify_rtree(index, report, prefix)
        elif hasattr(index, "validate"):
            for message in index.validate():
                report.add("invariant", f"{prefix.rstrip(': ')}", message)
        for obj_id, position in _iter_objects(index):
            if obj_id in residents:
                report.add(
                    "duplicate-object",
                    "router",
                    f"object {obj_id} lives in shards "
                    f"{residents[obj_id][0]} and {shard.sid}",
                )
            residents[obj_id] = (shard.sid, position)
            # Identity-aware routing: shard_for covers non-uniform
            # boundaries and the speed partitioner's churn shard (where
            # residency is decided by object id, not position).
            home = sharded.partition.shard_for(obj_id, position)
            if home != shard.sid:
                report.add(
                    "router-coverage",
                    f"shard {shard.sid}",
                    f"object {obj_id} at {position} belongs to slab {home}",
                )
    n = len(sharded.shards)
    for obj_id, sid in sharded._owner.items():
        if not 0 <= sid < n:
            report.add(
                "router-range", "router", f"object {obj_id} owned by slab {sid}"
            )
            continue
        resident = residents.get(obj_id)
        if resident is None:
            report.add(
                "router-stale",
                "router",
                f"owner map holds object {obj_id} (shard {sid}) "
                "but no shard stores it",
                repairable=True,
            )
        elif resident[0] != sid:
            report.add(
                "router-stale",
                "router",
                f"owner map says shard {sid}, object {obj_id} "
                f"lives in shard {resident[0]}",
                repairable=True,
            )
    for obj_id in residents:
        if obj_id not in sharded._owner:
            report.add(
                "router-stale",
                "router",
                f"object {obj_id} is stored but missing from the owner map",
                repairable=True,
            )


def _iter_objects(index) -> Iterator[Tuple[int, Point]]:
    """(object id, position) pairs of any spatial index family; uncharged."""
    if hasattr(index, "iter_objects"):
        yield from index.iter_objects()
    elif hasattr(index, "tree"):
        yield from index.tree.iter_objects()


# -- repair ----------------------------------------------------------------


def repair_index(index) -> RepairReport:
    """Fix the recoverable violation classes in place -> :class:`RepairReport`.

    Repairs charge I/O under the BUILD category: they are maintenance, not
    workload.  The caller re-runs :func:`verify_index` to confirm.
    """
    inner = getattr(index, "inner", None)
    if inner is not None and hasattr(index, "health_state"):
        return repair_index(inner)
    report = RepairReport()
    stats = getattr(getattr(index, "pager", None), "stats", None)
    if stats is not None:
        with stats.category(IOCategory.BUILD):
            _repair(index, report)
    else:
        _repair(index, report)
    return report


def _repair(index, report: RepairReport) -> None:
    if isinstance(index, ShardedIndex):
        report.kind = "sharded"
        for shard in index.shards:
            sub = RepairReport()
            _repair(shard.index, sub)
            report.merge(sub)
        _repair_router(index, report)
    elif isinstance(index, CTRTree):
        report.kind = "ct"
        _repair_ct(index, report)
    elif isinstance(index, LazyRTree):
        report.kind = "alpha" if isinstance(index, AlphaTree) else "lazy"
        _repair_mbrs(index.tree, report)
        live = {
            entry.child: leaf.pid
            for leaf in index.tree.iter_leaves()
            for entry in leaf.entries
        }
        _repair_hash(index.hash, live, report)
    elif isinstance(index, RTree):
        report.kind = "rtree"
        _repair_mbrs(index, report)
    elif isinstance(index, LazyBPlusTree):
        report.kind = "lazy-bptree"
        live = {
            entry[1]: leaf.pid
            for leaf in index.tree.iter_leaves()
            for entry in leaf.entries
        }
        _repair_hash(index.hash, live, report)
    else:
        report.kind = type(index).__name__


def _repair_hash(
    hash_index: HashIndex, live: Dict[int, PageId], report: RepairReport
) -> None:
    stale = [
        (obj_id, pid)
        for obj_id, pid in live.items()
        if hash_index.peek(obj_id) != pid
    ]
    if stale:
        hash_index.set_many(stale)
        report.hash_repointed += len(stale)
    orphans = [
        obj_id for obj_id, _bucket in _iter_hash_entries(hash_index)
        if obj_id not in live
    ]
    for obj_id in orphans:
        hash_index.remove(obj_id)
    report.hash_orphans_removed += len(orphans)


def _repair_mbrs(tree: RTree, report: RepairReport) -> None:
    """Re-widen MBRs bottom-up so every entry is contained again.

    Widening (never shrinking) preserves the lazy-update contract: a
    node's registered MBR may exceed its tight bound, but must cover it.
    """

    def fix(pid: PageId) -> Optional[Rect]:
        node = tree.pager.inspect(pid)
        changed = False
        if not node.is_leaf:
            for i, entry in enumerate(node.entries):
                child_cover = fix(entry.child)
                if child_cover is not None and not entry.rect.contains_rect(
                    child_cover
                ):
                    node.entries[i] = Entry(
                        entry.rect.union(child_cover), entry.child
                    )
                    changed = True
        tight = node.tight_mbr()
        if tight is not None and (
            node.mbr is None or not node.mbr.contains_rect(tight)
        ):
            node.mbr = tight if node.mbr is None else node.mbr.union(tight)
            changed = True
        if changed:
            tree.pager.write(node)
            report.mbrs_widened += 1
        return node.mbr

    fix(tree.root_pid)


def _repair_ct(ct: CTRTree, report: RepairReport) -> None:
    live: Dict[int, PageId] = {}
    for node in ct.iter_nodes():
        changed = False
        buf = node.buffer
        if buf.kind == NodeBuffer.KIND_LIST:
            for i, pid in enumerate(buf.pages):
                page = ct._pager.inspect(pid)
                if not isinstance(page, DataPage):
                    continue
                if i < len(buf.fills) and buf.fills[i] != len(page.records):
                    buf.fills[i] = len(page.records)
                    report.fills_recomputed += 1
                    changed = True
                for obj_id in page.records:
                    live[obj_id] = pid
        else:
            tree = ct._buffer_trees.get(node.pid)
            if tree is not None:
                for leaf in tree.iter_leaves():
                    for entry in leaf.entries:
                        live[entry.child] = leaf.pid
        if node.is_leaf:
            for qs in node.entries:
                if not isinstance(qs, QSEntry):
                    continue
                for i, pid in enumerate(qs.chain):
                    page = ct._pager.inspect(pid)
                    if not isinstance(page, DataPage):
                        continue
                    if i < len(qs.fills) and qs.fills[i] != len(page.records):
                        qs.fills[i] = len(page.records)
                        report.fills_recomputed += 1
                        changed = True
                    for obj_id in page.records:
                        live[obj_id] = pid
        if changed:
            ct._pager.write(node)
    _repair_hash(ct.hash, live, report)


def _repair_router(sharded: ShardedIndex, report: RepairReport) -> None:
    """Rebuild the owner map from actual shard residency."""
    rebuilt: Dict[int, int] = {}
    for shard in sharded.shards:
        for obj_id, _position in _iter_objects(shard.index):
            rebuilt[obj_id] = shard.sid
    if rebuilt != sharded._owner:
        before = sharded._owner
        fixed = sum(
            1 for oid, sid in rebuilt.items() if before.get(oid) != sid
        ) + sum(1 for oid in before if oid not in rebuilt)
        sharded._owner = rebuilt
        report.router_entries_fixed += fixed
