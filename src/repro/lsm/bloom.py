"""A deterministic bloom filter over integer object ids.

Each immutable run carries one filter over every oid it mentions (live
entries *and* tombstones), so the query fan-out's "does a newer run
supersede this oid?" probe short-circuits without touching the run's sorted
oid array in the common negative case.  Following "Persistent
Cache-oblivious Streaming Indexes", the filter bounds the read
amplification of membership probes across runs.

The filter is pure arithmetic over a ``bytearray`` -- no hash seeds drawn
at construction -- so rebuilding it from the same key set yields the same
bits, which keeps snapshot round-trips byte-stable (the filter itself is
never serialized; loaders rebuild it from the run's oid arrays).
"""

from __future__ import annotations

from typing import Iterable

_MASK = (1 << 64) - 1


def _mix(value: int) -> int:
    """SplitMix64 finalizer: a strong deterministic 64-bit mixer."""
    value &= _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


class BloomFilter:
    """Fixed-size bloom filter sized for ``expected`` keys.

    Args:
        expected: anticipated number of distinct keys (sizes the bit array).
        bits_per_key: bits budgeted per key; 10 gives ~1% false positives
            with the derived probe count (k = bits_per_key * ln 2 ~ 7).
    """

    __slots__ = ("_bits", "_nbits", "_k", "count")

    def __init__(self, expected: int, bits_per_key: int = 10) -> None:
        nbits = max(64, int(expected) * int(bits_per_key))
        nbits += (-nbits) % 8  # whole bytes
        self._nbits = nbits
        self._bits = bytearray(nbits // 8)
        # k = m/n * ln2, clamped to a sane band.
        self._k = max(1, min(16, round(bits_per_key * 0.6931)))
        self.count = 0

    @classmethod
    def from_keys(
        cls, keys: Iterable[int], bits_per_key: int = 10
    ) -> "BloomFilter":
        keys = list(keys)
        bloom = cls(len(keys), bits_per_key)
        for key in keys:
            bloom.add(key)
        return bloom

    def add(self, key: int) -> None:
        h1 = _mix(key)
        # Kirsch-Mitzenmacher double hashing; odd step covers all slots.
        h2 = _mix(h1 ^ 0x9E3779B97F4A7C15) | 1
        bits = self._bits
        nbits = self._nbits
        for i in range(self._k):
            idx = (h1 + i * h2) % nbits
            bits[idx >> 3] |= 1 << (idx & 7)
        self.count += 1

    def __contains__(self, key: int) -> bool:
        h1 = _mix(key)
        h2 = _mix(h1 ^ 0x9E3779B97F4A7C15) | 1
        bits = self._bits
        nbits = self._nbits
        for i in range(self._k):
            idx = (h1 + i * h2) % nbits
            if not bits[idx >> 3] & (1 << (idx & 7)):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self._nbits}, k={self._k}, keys={self.count})"
        )
