"""Immutable runs: bulk-loaded R-trees with oid/tombstone side tables.

A run is what one memtable flush (or one compaction merge) produces: an
STR-packed R-tree over the flushed points, a sorted ``array('q')`` of the
oids it holds, a sorted array of the oids it *tombstones* (deletes that
must suppress older runs), and a bloom filter over both.  Runs are never
mutated after construction -- compaction replaces whole runs.

Membership metadata (oid arrays, blooms) is main-memory and uncharged,
consistent with the repo's accounting rule that parent pointers and hash
directories are uncharged bookkeeping (DESIGN.md section 5); the run's
*tree pages* are charged normally on query and compaction reads.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, List, Sequence, Tuple

from repro.core.geometry import Point
from repro.lsm.bloom import BloomFilter
from repro.rtree.bulk import str_pack
from repro.rtree.rtree import RTree
from repro.storage.pager import Pager


def _sorted_array(values: Iterable[int]) -> array:
    arr = array("q", sorted(values))
    return arr


def _in_sorted(arr: array, key: int) -> bool:
    idx = bisect_left(arr, key)
    return idx < len(arr) and arr[idx] == key


class Run:
    """One immutable sorted run of the LSM-R-tree."""

    __slots__ = ("tree", "oids", "tombstones", "seq", "bloom")

    def __init__(
        self,
        tree: RTree,
        oids: Iterable[int],
        tombstones: Iterable[int],
        seq: int,
    ) -> None:
        self.tree = tree
        self.oids = _sorted_array(oids)
        self.tombstones = _sorted_array(tombstones)
        self.seq = seq
        self.bloom = BloomFilter.from_keys(
            list(self.oids) + list(self.tombstones)
        )

    def __len__(self) -> int:
        return len(self.oids)

    @property
    def size(self) -> int:
        """Total entries the run accounts for (live + tombstones); the
        quantity size-tiered compaction tiers on."""
        return len(self.oids) + len(self.tombstones)

    def mentions(self, oid: int) -> bool:
        """Does this run say *anything* about ``oid`` (live or tombstone)?

        A newer run mentioning an oid supersedes every older version of it.
        Bloom-gated: the common negative answers without a binary search.
        """
        if oid not in self.bloom:
            return False
        return _in_sorted(self.oids, oid) or _in_sorted(self.tombstones, oid)

    def contains_live(self, oid: int) -> bool:
        if oid not in self.bloom:
            return False
        return _in_sorted(self.oids, oid)

    def is_tombstoned(self, oid: int) -> bool:
        if oid not in self.bloom:
            return False
        return _in_sorted(self.tombstones, oid)

    def read_items(self) -> List[Tuple[int, Point]]:
        """Every (oid, point) in the run via a *charged* page walk.

        Compaction uses this: merging runs re-reads their pages, and that
        cost must land on the ledger like any other page I/O.
        """
        out: List[Tuple[int, Point]] = []
        pager = self.tree.pager
        stack = [self.tree.root_pid]
        while stack:
            node = pager.read(stack.pop())
            if node.is_leaf:
                out.extend(node.entries.iter_points())
            else:
                stack.extend(node.entries.child_list())
        return out

    def page_count(self) -> int:
        """Number of tree pages (uncharged walk)."""
        return self.tree.node_count()

    def free_pages(self) -> None:
        """Release every page of the run's tree (uncharged, like any free)."""
        pager = self.tree.pager
        stack = [self.tree.root_pid]
        while stack:
            pid = stack.pop()
            node = pager.inspect(pid)
            if not node.is_leaf:
                stack.extend(node.entries.child_list())
            pager.free(pid)

    def __repr__(self) -> str:
        return (
            f"Run(seq={self.seq}, live={len(self.oids)}, "
            f"tombstones={len(self.tombstones)}, pages={self.page_count()})"
        )


def build_run(
    pager: Pager,
    items: Sequence[Tuple[int, Point]],
    tombstones: Iterable[int],
    seq: int,
    *,
    max_entries: int = 20,
    split: str = "quadratic",
    fill: float = 0.9,
) -> Run:
    """STR-pack ``items`` into a fresh immutable run on ``pager``.

    Charged under whatever I/O category is active at the caller (the
    memtable flushes inside the driver's UPDATE scope; loads inside BUILD),
    so flush cost lands on the ledger exactly where the work happened.

    ``shrink_on_delete=False``: runs are append-only, and STR tiling
    legitimately leaves a final under-filled node per slice, which the
    traditional minimum-fill invariant would flag.
    """
    tree = RTree(
        pager,
        max_entries=max_entries,
        split=split,
        shrink_on_delete=False,
    )
    ordered = sorted(items, key=lambda item: item[0])
    if ordered:
        str_pack(tree, ordered, fill=fill)
    return Run(tree, (oid for oid, _ in ordered), tombstones, seq)
