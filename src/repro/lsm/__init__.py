"""repro.lsm -- a memtable + immutable-run LSM layer over the R-tree family.

The fifth registry kind (``lsm``): the coalescing
:class:`~repro.engine.buffer.UpdateBuffer` is the memtable, flushes bulk-load
immutable run R-trees via STR packing, a size-tiered compactor merges runs
under a ratio trigger, and queries fan out newest-run-first with per-run oid
bloom filters and tombstone/superseded-oid suppression.  Per-update cost is
O(memtable) -- independent of the total object count -- which is the design
point of "An Update-intensive LSM-based R-tree Index" (PAPERS.md).
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.run import Run, build_run
from repro.lsm.tree import LSMConfig, LSMRTree

__all__ = ["BloomFilter", "Run", "build_run", "LSMConfig", "LSMRTree"]
