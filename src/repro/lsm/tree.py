"""The LSM-R-tree: memtable + immutable runs + size-tiered compaction.

Write path: every insert/update lands in the coalescing
:class:`~repro.engine.buffer.UpdateBuffer` memtable (uncharged main memory,
optionally WAL-backed); when the memtable reaches ``memtable_size`` distinct
objects it drains into a fresh STR-packed immutable run.  Per-update cost is
therefore O(memtable) amortized -- independent of how many objects the index
holds -- which is the whole point under update-dominant traffic.

Read path: queries fan out newest-component-first (memtable, then runs
newest to oldest).  A version found in run *i* counts only if **no newer
component mentions the oid** -- a ``seen``-set alone would be wrong: an
object whose newer position moved *outside* the query rectangle never
enters the result set, so its stale in-rect version in an older run would
leak through.  The membership probe is bloom-gated and uncharged; the run
tree pages a query touches are charged normally, and the number of runs
probed is the query's read amplification (bounded by compaction).

Compaction: size-tiered.  Runs whose sizes fall in the same ratio tier
merge once ``size_ratio`` of them accumulate; a hard ``max_runs`` bound
merges the cheapest adjacent pair when tiering alone leaves too many runs.
Merges take age-contiguous windows only (merging around a surviving middle
run would reorder versions).  ``compact_step()`` is synchronous and
deterministic -- tests and the single-writer serve loop decide when
compaction work happens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.engine.buffer import FlushPolicy, UpdateBuffer, UpdateLog
from repro.engine.protocol import PageStore, position_of
from repro.lsm.run import Run, build_run
from repro.obs.metrics import get_registry
from repro.storage.page import NO_PAGE, PageId


@dataclass(frozen=True)
class LSMConfig:
    """Compaction and memtable knobs.

    Args:
        memtable_size: distinct pending objects that trigger a flush.
        size_ratio: tier width and trigger -- runs sized within one
            ratio-power of each other share a tier, and a tier compacts
            once it holds this many runs.
        max_runs: hard read-amplification bound; exceeding it forces the
            cheapest adjacent merge even when no tier has tripped.
        run_fill: STR packing fill factor for run trees (runs are
            immutable, so they pack dense).
        auto_compact: run the compactor to quiescence after every flush;
            disable for externally stepped (deterministic) compaction.
    """

    memtable_size: int = 256
    size_ratio: int = 4
    max_runs: int = 8
    run_fill: float = 0.9
    auto_compact: bool = True

    def __post_init__(self) -> None:
        if self.memtable_size < 1:
            raise ValueError("memtable_size must be >= 1")
        if self.size_ratio < 2:
            raise ValueError("size_ratio must be >= 2")
        if self.max_runs < 2:
            raise ValueError("max_runs must be >= 2")
        if not 0.0 < self.run_fill <= 1.0:
            raise ValueError("run_fill must be in (0, 1]")


@dataclass
class CompactionStats:
    """Lifetime compaction tallies (monotone)."""

    compactions: int = 0
    runs_merged: int = 0
    entries_rewritten: int = 0
    pages_rewritten: int = 0
    bytes_rewritten: int = 0
    tombstones_dropped: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "compactions": self.compactions,
            "runs_merged": self.runs_merged,
            "entries_rewritten": self.entries_rewritten,
            "pages_rewritten": self.pages_rewritten,
            "bytes_rewritten": self.bytes_rewritten,
            "tombstones_dropped": self.tombstones_dropped,
        }


class _RunSink:
    """Flush target: collects the memtable batch instead of applying it.

    ``UpdateBuffer.flush`` wants an index with insert/update; the LSM does
    not apply updates in place -- it bulk-loads them into a fresh run -- so
    the sink records the coalesced batch for :func:`build_run`.
    """

    def __init__(self) -> None:
        self.items: List[Tuple[int, Point]] = []

    def insert(
        self, obj_id: int, position: Point, now: Optional[float] = None
    ) -> PageId:
        self.items.append((obj_id, position))
        return NO_PAGE

    def update(
        self,
        obj_id: int,
        old_position: Point,
        new_position: Point,
        now: Optional[float] = None,
    ) -> PageId:
        self.items.append((obj_id, new_position))
        return NO_PAGE


class LSMRTree:
    """A :class:`~repro.engine.protocol.SpatialIndex` with flat update cost.

    Args:
        pager: shared page store; every run tree allocates from it, so one
            ledger carries the whole index.
        max_entries: run-tree fan-out (same meaning as the other kinds).
        split: run-tree split policy (only exercised by STR packing's
            bookkeeping; runs never split after construction).
        config: memtable/compaction knobs.
        wal: optional write-ahead log for the memtable -- updates are
            logged before they are acknowledged, exactly like the engine's
            batched execution path.
    """

    def __init__(
        self,
        pager: PageStore,
        *,
        max_entries: int = 20,
        split: str = "quadratic",
        config: Optional[LSMConfig] = None,
        wal: Optional[UpdateLog] = None,
    ) -> None:
        self._pager = pager
        self.max_entries = max_entries
        self.split_policy = split
        self.config = config if config is not None else LSMConfig()
        self.memtable = UpdateBuffer(
            FlushPolicy(batch_size=self.config.memtable_size), wal=wal
        )
        #: Oids deleted since the last flush; a flush turns them into the
        #: new run's tombstones.  Disjoint from the memtable's pending set
        #: by construction (a delete drops the pending entry, an upsert
        #: clears the death mark).
        self._mem_dead: set = set()
        #: Immutable runs, oldest first; queries walk it in reverse.
        self._runs: List[Run] = []
        self._live = 0
        self._next_seq = 0
        self.compaction = CompactionStats()
        self.flushes = 0
        self.queries = 0
        self.query_run_probes = 0

    # -- protocol surface ---------------------------------------------------

    @property
    def pager(self) -> PageStore:
        return self._pager

    def __len__(self) -> int:
        return self._live

    @property
    def height(self) -> int:
        """Max run-tree height (the memtable is flat main memory)."""
        return max((run.tree.height for run in self._runs), default=0)

    @property
    def runs(self) -> Tuple[Run, ...]:
        """The immutable runs, oldest first (read-only view)."""
        return tuple(self._runs)

    @property
    def run_count(self) -> int:
        return len(self._runs)

    def insert(
        self, obj_id: int, position: Sequence[float], now: Optional[float] = None
    ) -> PageId:
        return self._upsert(obj_id, None, position, now)

    def update(
        self,
        obj_id: int,
        old_position: Sequence[float],
        new_position: Sequence[float],
        now: Optional[float] = None,
    ) -> PageId:
        return self._upsert(obj_id, old_position, new_position, now)

    def _upsert(
        self,
        obj_id: int,
        old_position: Optional[Sequence[float]],
        position: Sequence[float],
        now: Optional[float],
    ) -> PageId:
        point = position_of(position)
        if not self._is_live(obj_id):
            self._live += 1
        self._mem_dead.discard(obj_id)
        t = 0.0 if now is None else float(now)
        self.memtable.put(obj_id, old_position, point, t)
        if self.memtable.should_flush(t):
            self.flush(reason="size")
        return NO_PAGE

    def delete(
        self,
        obj_id: int,
        old_position: Optional[Sequence[float]] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Out-of-place delete: drop any pending version, mark a tombstone."""
        del old_position, now
        if not self._is_live(obj_id):
            return False
        self.memtable.drop(obj_id)
        # A tombstone is only worth flushing if some run still mentions the
        # oid; a purely-pending object dies entirely in memory.
        if any(run.mentions(obj_id) for run in self._runs):
            self._mem_dead.add(obj_id)
        else:
            self._mem_dead.discard(obj_id)
        self._live -= 1
        return True

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        """Fan out newest-first; each oid resolves to its newest version.

        An older-run hit survives only if *no newer component mentions the
        oid* -- the newer version may lie outside ``rect``, so presence in
        the newer run's own result set cannot be the test.
        """
        results: Dict[int, Point] = {}
        for pending in self.memtable.iter_pending():
            if rect.contains_point(pending.point):
                results[pending.oid] = pending.point
        runs_probed = 0
        for i in range(len(self._runs) - 1, -1, -1):
            runs_probed += 1
            for oid, point in self._runs[i].tree.range_search(rect):
                if oid in results:
                    continue
                if self._superseded(oid, i):
                    continue
                results[oid] = point
        self._note_query(runs_probed)
        return list(results.items())

    def nearest(
        self, point: Sequence[float], k: int = 1
    ) -> List[Tuple[float, int, Point]]:
        """The ``k`` nearest live objects as (distance, id, point).

        Each component contributes its own top-``k`` *live* candidates
        (per-run best-first search with a doubling fetch size until ``k``
        unsuppressed survivors or exhaustion), then the union is merged --
        any global winner is necessarily a within-component winner.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        target = position_of(point)
        candidates: List[Tuple[float, int, Point]] = []
        for pending in self.memtable.iter_pending():
            candidates.append(
                (math.dist(target, pending.point), pending.oid, pending.point)
            )
        runs_probed = 0
        for i in range(len(self._runs) - 1, -1, -1):
            run = self._runs[i]
            if not len(run):
                continue
            runs_probed += 1
            fetch = k
            while True:
                found = run.tree.nearest(target, fetch)
                live = [
                    (dist, oid, pt)
                    for dist, oid, pt in found
                    if not self._superseded(oid, i)
                ]
                if len(live) >= k or len(found) < fetch:
                    break
                fetch *= 2
            candidates.extend(live[:k])
        self._note_query(runs_probed)
        candidates.sort(key=lambda c: (c[0], c[1]))
        return candidates[:k]

    # -- membership resolution ----------------------------------------------

    def _is_live(self, oid: int) -> bool:
        if oid in self._mem_dead:
            return False
        if self.memtable.pending_for(oid) is not None:
            return True
        for run in reversed(self._runs):
            if run.is_tombstoned(oid):
                return False
            if run.contains_live(oid):
                return True
        return False

    def _superseded(self, oid: int, run_index: int) -> bool:
        """Does any component newer than ``self._runs[run_index]`` mention
        ``oid`` (newer live version or tombstone)?"""
        if oid in self._mem_dead or self.memtable.pending_for(oid) is not None:
            return True
        for j in range(len(self._runs) - 1, run_index, -1):
            if self._runs[j].mentions(oid):
                return True
        return False

    def _mentioned_at_or_after(self, oid: int, run_index: int) -> bool:
        """Like :meth:`_superseded` but inclusive of ``run_index`` (the
        compactor's "is this window version garbage?" probe, where
        ``run_index`` is the first run *after* the merge window)."""
        return self._superseded(oid, run_index - 1)

    def iter_objects(self) -> Iterator[Tuple[int, Point]]:
        """Every live (oid, newest position); uncharged (diagnostics)."""
        seen = set(self._mem_dead)
        for pending in self.memtable.iter_pending():
            seen.add(pending.oid)
            yield pending.oid, pending.point
        for run in reversed(self._runs):
            for oid, point in run.tree.iter_objects():
                if oid not in seen:
                    yield oid, point
            seen.update(run.oids)
            seen.update(run.tombstones)

    # -- flush ---------------------------------------------------------------

    def flush(self, reason: str = "manual") -> int:
        """Drain the memtable into a fresh immutable run.

        Charged under the caller's active I/O category -- the driver
        flushes inside its UPDATE scope, loads inside BUILD -- so flush
        cost is attributed exactly like the in-place kinds' update cost.
        """
        if not len(self.memtable) and not self._mem_dead:
            return 0
        registry = get_registry()
        timer = (
            registry.timer("lsm.flush.time") if registry.enabled else None
        )
        with timer if timer is not None else _NULL_CTX:
            sink = _RunSink()
            applied = self.memtable.flush(sink, reason)
            tombstones = sorted(
                oid
                for oid in self._mem_dead
                if any(run.mentions(oid) for run in self._runs)
            )
            self._mem_dead.clear()
            if sink.items or tombstones:
                run = build_run(
                    self._pager,
                    sink.items,
                    tombstones,
                    self._next_seq,
                    max_entries=self.max_entries,
                    split=self.split_policy,
                    fill=self.config.run_fill,
                )
                self._next_seq += 1
                self._runs.append(run)
            self.flushes += 1
        if registry.enabled:
            registry.inc("lsm.flush.count")
            registry.inc("lsm.flush.entries", len(sink.items))
        if self.config.auto_compact:
            self.maybe_compact()
        return applied

    # -- compaction ----------------------------------------------------------

    def _tier(self, size: int) -> int:
        """The size tier of a run: how many ratio-powers of the memtable
        capacity its entry count spans (integer arithmetic, deterministic)."""
        tier = 0
        threshold = max(1, self.config.memtable_size) * self.config.size_ratio
        while size >= threshold:
            tier += 1
            threshold *= self.config.size_ratio
        return tier

    def compaction_needed(self) -> Optional[Tuple[int, int]]:
        """The next merge window ``[start, end)`` in ``self._runs``, or None.

        Windows are age-contiguous: merging around a surviving middle run
        would let an old version leapfrog a newer one.  The lowest tripped
        tier merges first (cheapest work, fastest run-count relief); the
        ``max_runs`` bound falls back to the cheapest adjacent pair.
        """
        runs = self._runs
        if len(runs) < 2:
            return None
        tiers = [self._tier(run.size) for run in runs]
        best: Optional[Tuple[int, int]] = None
        i = 0
        while i < len(runs):
            j = i
            while j < len(runs) and tiers[j] == tiers[i]:
                j += 1
            if j - i >= self.config.size_ratio and (
                best is None or tiers[i] < tiers[best[0]]
            ):
                best = (i, j)
            i = j
        if best is not None:
            return best
        if len(runs) > self.config.max_runs:
            cheapest = min(
                range(len(runs) - 1),
                key=lambda idx: runs[idx].size + runs[idx + 1].size,
            )
            return (cheapest, cheapest + 2)
        return None

    def compact_step(self) -> Optional[Dict[str, int]]:
        """Perform one merge if triggered; returns its stats or None.

        Synchronous and deterministic: callers (the driver, the serve
        loop's single writer, tests) decide when compaction work happens.
        """
        window = self.compaction_needed()
        if window is None:
            return None
        start, end = window
        registry = get_registry()
        timer = (
            registry.timer("lsm.compaction.time") if registry.enabled else None
        )
        with timer if timer is not None else _NULL_CTX:
            info = self._merge(start, end)
        if registry.enabled:
            registry.inc("lsm.compaction.count")
            registry.inc("lsm.compaction.runs_merged", info["runs_merged"])
            registry.inc(
                "lsm.compaction.bytes_rewritten", info["bytes_rewritten"]
            )
        return info

    def maybe_compact(self) -> int:
        """Run :meth:`compact_step` to quiescence; returns steps taken."""
        steps = 0
        while self.compact_step() is not None:
            steps += 1
        return steps

    def _merge(self, start: int, end: int) -> Dict[str, int]:
        window = self._runs[start:end]
        resolved: Dict[int, Point] = {}
        dead: set = set()
        # Newest-first within the window: first mention wins.
        for run in reversed(window):
            for oid, point in run.read_items():  # charged reads
                if oid not in resolved and oid not in dead:
                    resolved[oid] = point
            for oid in run.tombstones:
                if oid not in resolved and oid not in dead:
                    dead.add(oid)
        # Versions any newer-than-window component supersedes are garbage.
        items = [
            (oid, point)
            for oid, point in resolved.items()
            if not self._mentioned_at_or_after(oid, end)
        ]
        # Tombstones survive only while an *older* run still holds a
        # version they must suppress; at the bottom of the tree they drop.
        tombstones = [
            oid
            for oid in dead
            if not self._mentioned_at_or_after(oid, end)
            and any(self._runs[j].mentions(oid) for j in range(start))
        ]
        dropped_tombstones = len(dead) - len(tombstones)
        replacement: List[Run] = []
        pages_written = 0
        if items or tombstones:
            merged = build_run(
                self._pager,
                items,
                tombstones,
                self._next_seq,
                max_entries=self.max_entries,
                split=self.split_policy,
                fill=self.config.run_fill,
            )
            self._next_seq += 1
            pages_written = merged.page_count()
            replacement = [merged]
        for run in window:
            run.free_pages()
        self._runs[start:end] = replacement
        page_size = getattr(self._pager, "page_size", 4096)
        stats = self.compaction
        stats.compactions += 1
        stats.runs_merged += len(window)
        stats.entries_rewritten += len(items)
        stats.pages_rewritten += pages_written
        stats.bytes_rewritten += pages_written * page_size
        stats.tombstones_dropped += dropped_tombstones
        return {
            "runs_merged": len(window),
            "entries": len(items),
            "tombstones": len(tombstones),
            "pages_written": pages_written,
            "bytes_rewritten": pages_written * page_size,
            "run_count": len(self._runs),
        }

    # -- diagnostics ---------------------------------------------------------

    def _note_query(self, runs_probed: int) -> None:
        self.queries += 1
        self.query_run_probes += runs_probed
        registry = get_registry()
        if registry.enabled:
            amplification = runs_probed + (1 if len(self.memtable) else 0)
            registry.observe("lsm.query.read_amplification", amplification)

    @property
    def read_amplification(self) -> float:
        """Mean number of runs probed per query over the index lifetime."""
        return self.query_run_probes / self.queries if self.queries else 0.0

    def validate(self) -> List[str]:
        """Duck-typed invariant check (the convention ``verify_index`` and
        the sharded verifier adopt); [] when clean."""
        problems: List[str] = []
        live_seen: set = set()
        suppressed = set(self._mem_dead)
        for pending in self.memtable.iter_pending():
            if pending.oid in self._mem_dead:
                problems.append(
                    f"oid {pending.oid} is both pending and tombstoned "
                    "in the memtable"
                )
            live_seen.add(pending.oid)
            suppressed.add(pending.oid)
        for i in range(len(self._runs) - 1, -1, -1):
            run = self._runs[i]
            for message in run.tree.validate():
                problems.append(f"run {i} (seq {run.seq}): {message}")
            stored = sorted(oid for oid, _ in run.tree.iter_objects())
            if stored != list(run.oids):
                problems.append(
                    f"run {i} (seq {run.seq}): oid side table disagrees "
                    "with the tree's stored objects"
                )
            overlap = set(run.oids) & set(run.tombstones)
            if overlap:
                problems.append(
                    f"run {i} (seq {run.seq}): oids both live and "
                    f"tombstoned in one run: {sorted(overlap)[:5]}"
                )
            for oid in run.oids:
                if oid not in suppressed:
                    live_seen.add(oid)
            suppressed.update(run.oids)
            suppressed.update(run.tombstones)
        if len(live_seen) != self._live:
            problems.append(
                f"live counter {self._live} != resolved live objects "
                f"{len(live_seen)}"
            )
        return problems

    def collect_tree_stats(self) -> Dict[str, object]:
        """The ``tree_stats`` probe: per-run shapes plus LSM counters."""
        from repro.obs.treestats import tree_stats

        per_run = [tree_stats(run.tree) for run in self._runs]
        flush_stats = self.memtable.stats.to_dict()
        return {
            "kind": "lsm",
            "size": self._live,
            "height": self.height,
            "node_count": sum(int(s.get("node_count", 0)) for s in per_run),
            "leaf_count": sum(int(s.get("leaf_count", 0)) for s in per_run),
            "entry_count": sum(int(s.get("entry_count", 0)) for s in per_run),
            "max_entries": self.max_entries,
            "n_runs": len(self._runs),
            "run_sizes": [len(run) for run in self._runs],
            "run_tombstones": [len(run.tombstones) for run in self._runs],
            "memtable_pending": len(self.memtable),
            "memtable_dead": len(self._mem_dead),
            "flush": flush_stats,
            "flushes": self.flushes,
            "compaction": self.compaction.to_dict(),
            "queries": self.queries,
            "read_amplification": self.read_amplification,
            "runs": per_run,
        }

    def __repr__(self) -> str:
        return (
            f"LSMRTree(live={self._live}, runs={len(self._runs)}, "
            f"memtable={len(self.memtable)}, flushes={self.flushes}, "
            f"compactions={self.compaction.compactions})"
        )


class _NullCtx:
    def __enter__(self) -> "_NullCtx":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CTX = _NullCtx()
