"""Micro-benchmarks: per-operation costs of the four index structures.

These time individual operations (wall clock) and cross-check the I/O costs
the paper's analysis predicts: the lazy/CT in-MBR update at exactly 3 page
I/Os, the traditional R-tree update an order of magnitude above it.
"""

import itertools
import random

import pytest

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.rtree import AlphaTree, LazyRTree, RTree
from repro.storage.pager import Pager

DOMAIN = Rect((0, 0), (1000, 1000))
N = 2000


def clustered_points(seed=0, n=N):
    rng = random.Random(seed)
    centers = [(rng.uniform(50, 950), rng.uniform(50, 950)) for _ in range(40)]
    points = {}
    for oid in range(n):
        cx, cy = centers[oid % len(centers)]
        points[oid] = (cx + rng.gauss(0, 5), cy + rng.gauss(0, 5))
    return centers, points


def region_rects(centers, side=40.0):
    return [
        Rect((cx - side / 2, cy - side / 2), (cx + side / 2, cy + side / 2))
        for cx, cy in centers
    ]


@pytest.fixture(scope="module")
def loaded():
    centers, points = clustered_points()
    indexes = {}
    for name, factory in (
        ("rtree", lambda p: RTree(p)),
        ("lazy", lambda p: LazyRTree(p)),
        ("alpha", lambda p: AlphaTree(p)),
        ("ct", lambda p: CTRTree(p, DOMAIN, region_rects(centers))),
    ):
        pager = Pager()
        index = factory(pager)
        for oid, point in points.items():
            index.insert(oid, point)
        indexes[name] = (index, pager)
    return indexes, points


def _jitter_cycle(points, seed=1):
    rng = random.Random(seed)
    cycle = []
    for oid, (x, y) in points.items():
        cycle.append((oid, (x, y), (x + rng.uniform(-1, 1), y + rng.uniform(-1, 1))))
    return itertools.cycle(cycle)


@pytest.mark.parametrize("name", ["rtree", "lazy", "alpha", "ct"])
def test_update_small_move(benchmark, loaded, name):
    indexes, points = loaded
    index, _pager = indexes[name]
    moves = _jitter_cycle(points)

    def op():
        oid, old, new = next(moves)
        index.update(oid, old, new)
        index.update(oid, new, old)  # restore, keeping state stable

    benchmark(op)


@pytest.mark.parametrize("name", ["rtree", "lazy", "alpha", "ct"])
def test_range_query_small(benchmark, loaded, name):
    indexes, _points = loaded
    index, _pager = indexes[name]
    rng = random.Random(2)
    queries = itertools.cycle(
        [
            Rect(
                (x, y),
                (x + 31.6, y + 31.6),  # 0.1% of the domain
            )
            for x, y in ((rng.uniform(0, 950), rng.uniform(0, 950)) for _ in range(64))
        ]
    )
    benchmark(lambda: index.range_search(next(queries)))


def test_lazy_update_costs_exactly_three_ios(loaded):
    indexes, points = loaded
    for name in ("lazy", "alpha", "ct"):
        index, pager = indexes[name]
        # Find an object whose 0.1-metre move stays in its MBR/qs-region.
        for oid, (x, y) in points.items():
            before = (pager.stats.reads(), pager.stats.writes())
            lazy_before = index.lazy_hits
            index.update(oid, (x, y), (x + 0.1, y))
            if index.lazy_hits == lazy_before + 1:
                reads = pager.stats.reads() - before[0]
                writes = pager.stats.writes() - before[1]
                assert (reads, writes) == (2, 1), name
                index.update(oid, (x + 0.1, y), (x, y))
                break
        else:
            pytest.fail(f"no lazy update found for {name}")


def test_insert_throughput(benchmark):
    pager = Pager()
    tree = LazyRTree(pager)
    counter = itertools.count()
    rng = random.Random(3)

    def op():
        tree.insert(next(counter), (rng.uniform(0, 1000), rng.uniform(0, 1000)))

    benchmark(op)


def test_hash_lookup(benchmark, loaded):
    indexes, points = loaded
    index, _pager = indexes["lazy"]
    oids = itertools.cycle(list(points))
    benchmark(lambda: index.hash.get(next(oids)))
