#!/usr/bin/env python
"""Fixed-seed regression benchmark: the repo's perf trajectory seed.

Runs one small deterministic workload through all four index kinds and
writes ``BENCH_driver.json`` in a stable schema:

* per index kind: ``ios_per_update`` / ``ios_per_query`` / ``wall_clock_s``
  under the paper's cache-less accounting (the headline numbers every
  figure uses), plus a second run over an LRU buffer pool reported under
  ``pooled`` (``cache_hit_rate``, evictions, write-backs, pooled I/O);
* ``metrics_overhead``: the same workload replayed with the metrics registry
  disabled vs. enabled, plus a direct micro-measurement of the disabled
  (no-op) hook cost -- demonstrating that default-off observability leaves
  the hot path untouched (<5% of a driver run);
* ``engine``: the execution-engine levers -- the lazy and CT runs replayed
  through a coalescing update buffer (batched per-op update I/O must stay at
  or below unbatched), and a sharded run whose merged ledger and per-shard
  breakdown pin the space-partitioned router's accounting;
* ``durability``: the lazy run replayed with a group-commit write-ahead log
  (WAL-on per-op page I/O must stay within 25% of WAL-off -- the log is a
  file append, not pager traffic), the WAL's own counters (appends, fsyncs,
  bytes, group-commit batch sizes), and a crash recovery replaying the
  stream the run logged;
* ``health``: the lazy run replayed behind the self-healing wrapper on the
  same (drift-free) workload -- the drift monitor stays out of the way, no
  rebuild fires, and the wrapper's steady-state per-op update I/O must stay
  within 10% of the bare run -- plus a full ``verify_index`` pass over the
  wrapped index at the end of the stream;
* ``parallel``: the CT build serial vs. a 4-process pool (must be
  byte-identical; wall clocks per phase), and the sharded lazy workload at
  1 (inline) / 2 / 4 process workers with batched dispatch -- update/query
  throughput, the 4-worker speedup, and the per-op I/O delta against the
  inline router (must stay within 5%; worker pools change *where* work
  runs, never what gets charged).  ``below_break_even`` flags runs where
  parallelism cannot pay off -- smoke scale (per-shard work too small to
  amortize fork + pipe round-trips) or a machine without enough usable
  CPUs to run the workers concurrently; CI enforces the speedup gates
  only above it;
* ``rebalance``: the adaptive shard management levers on a deterministic
  *skewed* workload (a flash crowd dwelling in one narrow slab plus a
  minority of fast movers) -- the grid / density / speed partitioners
  each run inline and on a process pool with identical static partitions
  (per-op I/O parity is exact and enforced unconditionally; the
  parallel-vs-inline update speedup per partitioner is gated at >=1.3x
  for density or speed only above break-even, where the grid's hot
  shard serialises the pool), plus an online-rebalance run (hot-shard
  detection fires, the cutover verifies clean) and a snapshot
  byte-identity check across a rebalance cutover (save -> load -> apply
  the same plan to both -> canonical JSON must match);
* ``serve``: the concurrent serving layer (PR 8) -- a real daemon per
  client count (ephemeral port, bounded writer queue, snapshot read
  replicas) driven by the multi-process load generator replaying the
  trace's online window: p50/p99/max end-to-end latency (nearest-rank
  over raw client samples, retries included), sustained acked ops/sec,
  reject rate, and the acceptance rails CI enforces unconditionally --
  exact result parity between a post-drain query sweep through the
  daemon and an inline timeline-order run, and a clean ``verify_index``
  after the graceful drain;
* ``resilience``: the exactly-once serving rails (PR 9) -- one seeded
  chaos run (kill profile) at smoke scale: a supervised daemon is
  SIGKILLed mid-workload under concurrent idempotent writers, restarts
  through WAL recovery, and the harness audits the wreckage before
  returning -- zero lost acked writes, zero double-applied stamps, clean
  ``verify_index`` (all enforced unconditionally); the section reports
  retry / dedup / reject accounting, restart count, and recovery MTTR
  (wall-clock figures are trend-watching, like every other timing here);
* ``lsm``: the LSM-R-tree's reason to exist (PR 10) -- per-update I/O for
  lsm / rtree / ct over the same deterministic update-heavy window at
  increasing seed sizes (steady-state: an unmeasured warm-up window
  absorbs the post-seed compaction transient first).  CI gates the flat
  curve (largest-scale LSM per-update I/O <= 1.15x the smallest), the
  head-to-head (LSM beats the CT-R-tree per update at the largest
  scale), and read amplification (mean runs probed per query <=
  ``max_runs`` + 1);
* ``geometry``: the Rect hot-path micro-kernels
  (``benchmarks/bench_geometry.py``) -- method vs. flat-tuple kernel
  ns/op for intersects / contains_point / union / enlargement;
* ``soa``: the struct-of-arrays node layout (PR 7) -- whole-node
  intersect-all / choose-subtree scans, SoA vs object layout, at fanout
  and vectorized node sizes (CI gates >=3x at the large size); per-ping
  worker dispatch RTT for thread / process-pipe / process-shared-memory
  transports (CI gates shm < pipe); and a dual-layout parity replay of
  the lazy workload (identical I/O ledgers and byte-identical snapshot
  documents, enforced unconditionally).

I/O counts and tree shapes are deterministic given ``--seed``; wall clocks
are hardware-dependent and exist for trend-watching, not for diffing.

Usage::

    PYTHONPATH=src python benchmarks/bench_regression.py [--scale smoke]
        [--seed 0] [--buffer-pool 64] [--out BENCH_driver.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import FlushPolicy, ShardedIndex, UpdateBuffer  # noqa: E402
from repro.experiments.harness import build_workload  # noqa: E402
from repro.obs import MetricsRegistry, set_enabled, tree_stats  # noqa: E402
from repro.storage import BufferPool, Pager  # noqa: E402
from repro.workload import (  # noqa: E402
    IndexKind,
    QueryWorkload,
    SimulationDriver,
    make_index,
)

SCHEMA_VERSION = 10

ENGINE_BATCH = 64
ENGINE_SHARDS = 4
DURABILITY_SYNC = "group:8"
PARALLEL_BUILD_WORKERS = 4
PARALLEL_WORKER_COUNTS = (2, 4)
PARALLEL_BATCH = 256
REBALANCE_SHARDS = 4
REBALANCE_OBJECTS = 120
REBALANCE_ROUNDS = 6
SERVE_CLIENT_COUNTS = (1, 8, 32)
LSM_SCALES = (200, 800, 2000)
LSM_MEMTABLE = 32
LSM_SIZE_RATIO = 4
LSM_MAX_RUNS = 12
# One full tier-1 compaction cycle: memtable * ratio^2 updates cover 16
# flushes, 4 tier-0 merges, and 1 tier-1 merge -- the same merge schedule
# at every scale, so the windows are comparable (see _measure_update_window).
LSM_WINDOW = LSM_MEMTABLE * LSM_SIZE_RATIO * LSM_SIZE_RATIO
LSM_QUERIES = 32


def run_kind(
    bundle, kind, *, pool_frames, metrics=None, batch=0, shards=1,
    durability=None, healing=False,
):
    """Build ``kind`` fresh, replay the bundle's workload; returns the pieces."""
    histories = bundle.histories() if kind == IndexKind.CT else None
    if shards > 1:
        index = ShardedIndex(
            kind,
            bundle.domain,
            shards,
            histories=histories,
            query_rate=bundle.scale.base_update_rate / 100.0,
            pool_frames=pool_frames,
        )
        store = index.pager
        pool = None
    else:
        pager = Pager()
        pool = BufferPool(pager, capacity=pool_frames) if pool_frames else None
        store = pool if pool is not None else pager
        index = make_index(
            kind,
            store,
            bundle.domain,
            histories=histories,
            query_rate=bundle.scale.base_update_rate / 100.0,
        )
    if healing:
        from repro.engine import IndexOptions
        from repro.health import DriftMonitor, SelfHealingIndex

        index = SelfHealingIndex(
            index,
            kind,
            bundle.domain,
            monitor=DriftMonitor(window=200),
            options=IndexOptions(
                histories=histories,
                query_rate=bundle.scale.base_update_rate / 100.0,
            ),
        )
    buffer = UpdateBuffer(FlushPolicy(batch_size=batch)) if batch else None
    driver = SimulationDriver(index, store, kind, metrics=metrics,
                              update_buffer=buffer, durability=durability)
    driver.load(bundle.current(), now=bundle.trace.load_time(bundle.scale.n_history))
    t_start, t_end = bundle.trace.online_span(bundle.scale.n_history)
    queries = QueryWorkload(
        bundle.domain, bundle.scale.base_update_rate / 100.0, 0.001, seed=99
    ).between(t_start, t_end)
    result = driver.run(bundle.update_stream(), queries)
    return result, index, pool


def kind_entry(result, index, pooled_result, pool):
    return {
        # Paper accounting: every page touch is one I/O.
        "ios_per_update": result.ios_per_update,
        "ios_per_query": result.ios_per_query,
        "n_updates": result.n_updates,
        "n_queries": result.n_queries,
        "update_io": result.update_io.to_dict(),
        "query_io": result.query_io.to_dict(),
        "wall_clock_s": result.wall_clock_s,
        "cache_hit_rate": pool.hit_rate,
        "tree_stats": tree_stats(index),
        # The same workload over an LRU pool (ablation substrate).
        "pooled": {
            "ios_per_update": pooled_result.ios_per_update,
            "ios_per_query": pooled_result.ios_per_query,
            "wall_clock_s": pooled_result.wall_clock_s,
            "buffer_pool": pool.metrics_dict(),
        },
    }


def measure_noop_hook_cost(n_events: int) -> float:
    """Seconds the disabled-registry branches add across ``n_events`` events.

    The driver's per-event instrumentation is two ``if enabled`` checks when
    metrics are off; this times exactly that.
    """
    registry = MetricsRegistry(enabled=False)
    t0 = perf_counter()
    for _ in range(n_events):
        if registry.enabled:
            pass
        if registry.enabled:
            pass
    return perf_counter() - t0


def time_ct_build(bundle, workers):
    """One full CT build at ``workers``; returns (seconds, report, document).

    The document is the canonical JSON snapshot text -- the determinism
    contract says the parallel build's must equal the serial build's byte
    for byte.
    """
    from repro.core.builder import CTRTreeBuilder
    from repro.storage.snapshot import build_document

    builder = CTRTreeBuilder(
        query_rate=bundle.scale.base_update_rate / 100.0, workers=workers
    )
    pager = Pager()
    t0 = perf_counter()
    tree, report = builder.build(
        pager, bundle.domain, bundle.histories(), bundle.current()
    )
    total_s = perf_counter() - t0
    document = json.dumps(build_document(tree, kind="ct"), sort_keys=True)
    return total_s, report, document


def run_parallel_sharded(bundle, workers, *, mode="process"):
    """The lazy workload over the worker-pool router at ``workers`` workers
    (== shards), updates batched so dispatch amortizes the IPC round-trip."""
    from repro.parallel import ParallelShardedIndex

    index = ParallelShardedIndex(
        IndexKind.LAZY,
        bundle.domain,
        workers,
        mode=mode,
        query_rate=bundle.scale.base_update_rate / 100.0,
    )
    try:
        buffer = UpdateBuffer(FlushPolicy(batch_size=PARALLEL_BATCH))
        driver = SimulationDriver(
            index, index.pager, IndexKind.LAZY, update_buffer=buffer
        )
        driver.load(
            bundle.current(), now=bundle.trace.load_time(bundle.scale.n_history)
        )
        t_start, t_end = bundle.trace.online_span(bundle.scale.n_history)
        queries = QueryWorkload(
            bundle.domain, bundle.scale.base_update_rate / 100.0, 0.001, seed=99
        ).between(t_start, t_end)
        result = driver.run(bundle.update_stream(), queries)
        engine = index.engine_dict()
    finally:
        index.close()
    return result, engine


def skewed_workload(n_objects=REBALANCE_OBJECTS, rounds=REBALANCE_ROUNDS,
                    seed=17):
    """A deterministic flash-crowd script: ~85% of objects dwell in one
    narrow x slab (all their updates and most queries hammer one grid
    shard), ~15% are fast movers hopping across the whole domain (every
    hop crosses grid slab boundaries).  Returns (domain, histories,
    initial positions, op list)."""
    import random

    from repro.core.geometry import Rect

    rng = random.Random(seed)
    domain = Rect((0.0, 0.0), (100.0, 100.0))
    n_fast = max(1, n_objects * 15 // 100)

    def dwell_point():
        return (rng.uniform(5.0, 15.0), rng.uniform(0.0, 100.0))

    def roam_point():
        return (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))

    histories = {}
    start = {}
    for oid in range(n_objects):
        fast = oid < n_fast
        trail = [
            ((roam_point() if fast else dwell_point()), 900.0 + i)
            for i in range(5)
        ]
        histories[oid] = trail
        start[oid] = trail[-1][0]

    ops = []
    pos = dict(start)
    t = 1000.0
    for oid in range(n_objects):
        ops.append(("insert", oid, pos[oid], t))
        t += 1.0
    hot_query = Rect((5.0, 0.0), (15.0, 100.0))
    wide_query = Rect((0.0, 0.0), (100.0, 100.0))
    for _ in range(rounds):
        for oid in range(n_objects):
            if oid < n_fast:
                p = roam_point()
            else:
                p = (
                    min(15.0, max(5.0, pos[oid][0] + rng.uniform(-1.0, 1.0))),
                    min(100.0, max(0.0, pos[oid][1] + rng.uniform(-3.0, 3.0))),
                )
            ops.append(("update", oid, pos[oid], p, t))
            pos[oid] = p
            t += 1.0
        ops.append(("query", hot_query))
        ops.append(("query", wide_query))
    return domain, histories, start, ops


def replay_skewed(index, ops):
    """Drive a sharded engine through the skewed script under driver-style
    category scopes; returns throughput + per-category I/O."""
    from repro.storage.iostats import IOCategory

    stats = index.pager.stats
    n_updates = n_queries = 0
    t0 = perf_counter()
    for op in ops:
        if op[0] == "insert":
            with stats.category(IOCategory.UPDATE):
                index.insert(op[1], op[2], now=op[3])
            n_updates += 1
        elif op[0] == "update":
            with stats.category(IOCategory.UPDATE):
                index.update(op[1], op[2], op[3], now=op[4])
            n_updates += 1
        else:
            with stats.category(IOCategory.QUERY):
                index.range_search(op[1])
            n_queries += 1
    wall = perf_counter() - t0
    update_ios = stats.total(IOCategory.UPDATE)
    query_ios = stats.total(IOCategory.QUERY)
    return {
        "n_updates": n_updates,
        "n_queries": n_queries,
        "wall_clock_s": wall,
        "updates_per_s": n_updates / wall if wall else 0.0,
        "update_ios": update_ios,
        "query_ios": query_ios,
        "ios_per_update": update_ios / n_updates if n_updates else 0.0,
    }


def update_io_skew(engine):
    """Hottest shard's share of cumulative update I/O vs the fair share."""
    results = engine.shard_results()
    totals = [float(r.update_io.total) for r in results]
    total = sum(totals)
    if total <= 0 or not totals:
        return 0.0
    return max(totals) / (total / len(totals))


def run_rebalance_bench():
    """The ``rebalance`` document section (see module docstring)."""
    from repro.engine import (
        PARTITIONER_KINDS,
        RebalancePolicy,
        ShardRebalancer,
        make_partition,
        partition_from_dict,
    )
    from repro.health import verify_index
    from repro.parallel import ParallelShardedIndex

    domain, histories, start, ops = skewed_workload()
    partitioners = {}
    for name in PARTITIONER_KINDS:
        inline = ShardedIndex(
            IndexKind.LAZY,
            domain,
            partition=make_partition(
                name, domain, REBALANCE_SHARDS,
                positions=start, histories=histories,
            ),
        )
        inline_run = replay_skewed(inline, ops)
        par = ParallelShardedIndex(
            IndexKind.LAZY,
            domain,
            mode="process",
            partition=make_partition(
                name, domain, REBALANCE_SHARDS,
                positions=start, histories=histories,
            ),
        )
        try:
            par_run = replay_skewed(par, ops)
            par_engine = par.engine_dict()
        finally:
            par.close()
        partitioners[name] = {
            "inline": inline_run,
            "parallel": par_run,
            "parallel_update_speedup": (
                par_run["updates_per_s"] / inline_run["updates_per_s"]
                if inline_run["updates_per_s"] else 0.0
            ),
            # Worker pools change *where* work runs, never what gets
            # charged: with identical static partitions the per-category
            # ledgers must match exactly (CI gates this at == 0).
            "io_delta_pct": (
                abs(par_run["update_ios"] - inline_run["update_ios"])
                / inline_run["update_ios"] * 100.0
                if inline_run["update_ios"] else 0.0
            ),
            "update_io_skew": update_io_skew(inline),
            "cross_shard_moves": inline.cross_shard_moves,
            "parallel_fell_back": par_engine["parallel"]["fell_back"],
        }
        print(
            f"  rebalance {name:<8} "
            f"{inline_run['ios_per_update']:8.2f} I/O/upd  "
            f"skew {partitioners[name]['update_io_skew']:.2f}  "
            f"moves {inline.cross_shard_moves:>4}  "
            f"io delta {partitioners[name]['io_delta_pct']:.3f}%"
        )

    # Online rebalance: born on the skewed grid, the detector must fire
    # and the cutover must leave the engine verifier-clean.
    rebalancer = ShardRebalancer(RebalancePolicy(
        check_every=64, min_window_ios=32, hot_factor=1.8
    ))
    live = ShardedIndex(
        IndexKind.LAZY, domain, REBALANCE_SHARDS, rebalancer=rebalancer
    )
    live_run = replay_skewed(live, ops)
    live_verdict = verify_index(live, kind=IndexKind.LAZY)

    # Snapshot byte-identity across a cutover: a loaded clone replaying
    # the same plan must land on the same bytes as the live engine.
    import tempfile

    from repro.engine import BoundaryPartition
    from repro.storage.snapshot import build_document, load_sharded, save_sharded

    frozen = ShardedIndex(IndexKind.LAZY, domain, REBALANCE_SHARDS)
    replay_skewed(frozen, ops)
    with tempfile.TemporaryDirectory(prefix="bench-rebalance-") as tmp:
        clone = load_sharded(save_sharded(frozen, Path(tmp) / "pre.json"))
    plan = BoundaryPartition.from_points(
        domain, REBALANCE_SHARDS, frozen.position_map().values()
    )
    frozen.apply_partition(plan)
    clone.apply_partition(partition_from_dict(plan.to_dict()))
    identical = json.dumps(
        build_document(frozen), sort_keys=True
    ) == json.dumps(build_document(clone), sort_keys=True)

    print(
        f"  rebalance online:  {rebalancer.rebalances} cutovers "
        f"(verify {'OK' if live_verdict.ok else 'FAILED'}, snapshot "
        f"{'identical' if identical else 'DIVERGED'})"
    )
    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable_cpus = os.cpu_count() or 1
    return {
        "shards": REBALANCE_SHARDS,
        # The density/speed >=1.3x parallel speedup gate needs the workers
        # actually running concurrently; CI skips it (with this reason
        # recorded) when the runner cannot provide that.
        "usable_cpus": usable_cpus,
        "below_break_even": usable_cpus < REBALANCE_SHARDS,
        "workload": {
            "n_objects": REBALANCE_OBJECTS,
            "rounds": REBALANCE_ROUNDS,
            "fast_share": 0.15,
            "note": (
                "deterministic flash crowd: ~85% of objects dwell in the "
                "x in [5, 15) slab, ~15% hop across the whole domain each "
                "round"
            ),
        },
        "partitioners": partitioners,
        "online": {
            "strategy": rebalancer.policy.strategy,
            "rebalances": rebalancer.rebalances,
            "skipped": rebalancer.skipped,
            "events": rebalancer.events,
            "run": live_run,
            "verify_ok": live_verdict.ok,
            "verify_violations": len(live_verdict.violations),
            "engine": live.engine_dict(),
        },
        "snapshot_byte_identical": identical,
    }


def run_resilience_bench(seed):
    """The ``resilience`` section: one seeded chaos run, kill profile.

    A supervised ``repro serve`` daemon (WAL sync=always) is SIGKILLed
    mid-workload while idempotent writers keep retrying through it; the
    harness then recovers the WAL offline and audits exactly-once.  The
    invariants are gated here, not just recorded: a lost acked write, a
    double-applied stamp, or a dirty verify fails the whole bench run.
    Retry/MTTR figures are timing-dependent and exist for trend-watching.
    """
    import shutil
    import tempfile

    from repro.chaos import ChaosConfig, run_chaos

    run_dir = Path(tempfile.mkdtemp(prefix="bench-resilience-"))
    try:
        report = run_chaos(
            ChaosConfig(
                run_dir=run_dir,
                seed=seed,
                profile="kill",
                writers=2,
                objects=16,
                min_ops=30,
            )
        )
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)
    assert report["ok"], json.dumps(report["invariants"], indent=2)
    work = report["workload"]
    acked = int(work["ops_acked"])
    rejects = int(work["rejects"])
    return {
        "seed": report["seed"],
        "profile": report["profile"],
        "seed_line": report["seed_line"],
        "ok": bool(report["ok"]),
        "acked": acked,
        "acked_first_try": work["acked_first_try"],
        "acked_retried": work["acked_retried"],
        "dedup_acks": work["dedup_acks"],
        "rejects": rejects,
        "reject_rate": rejects / (acked + rejects) if acked + rejects else 0.0,
        "transport_errors": work["transport_errors"],
        "reconnects": work["reconnects"],
        "ambiguous": work["ambiguous"],
        "kills": report["faults"]["kills"],
        "restarts": report["supervisor"]["restarts"],
        "mttr_mean_s": report["mttr"]["mean_s"],
        "mttr_max_s": report["mttr"]["max_s"],
        "wall_s": report["wall_s"],
        "invariants": report["invariants"],
    }


def run_layout_parity(bundle):
    """Both entry layouts over the same lazy workload (the PR 7 rail).

    The SoA layout must be invisible: per-category I/O ledgers, result
    counts, and the canonical snapshot document must match the object
    layout byte for byte.  CI enforces every flag here unconditionally.
    """
    from repro.rtree.node import set_default_layout
    from repro.storage.snapshot import build_document

    docs = {}
    runs = {}
    for layout in ("soa", "object"):
        prev = set_default_layout(layout)
        try:
            result, index, _ = run_kind(bundle, IndexKind.LAZY, pool_frames=0)
        finally:
            set_default_layout(prev)
        runs[layout] = result
        docs[layout] = json.dumps(build_document(index), sort_keys=True)
    soa_run, obj_run = runs["soa"], runs["object"]
    return {
        "kind": IndexKind.LAZY,
        "identical_update_io": soa_run.update_io.to_dict()
        == obj_run.update_io.to_dict(),
        "identical_query_io": soa_run.query_io.to_dict()
        == obj_run.query_io.to_dict(),
        "identical_result_count": soa_run.result_count == obj_run.result_count,
        "identical_snapshot": docs["soa"] == docs["object"],
        "io_delta_pct": 0.0
        if soa_run.update_io.to_dict() == obj_run.update_io.to_dict()
        else abs(soa_run.ios_per_update - obj_run.ios_per_update)
        / obj_run.ios_per_update
        * 100.0,
    }


def _lsm_scale_workload(n_objects, seed=7):
    """Deterministic update-heavy script at ``n_objects`` scale.

    Returns (histories, start positions, warm-up ops, measured ops,
    query rects).  The same script drives every index kind so the
    per-update I/O numbers are directly comparable; histories exist only
    because the CT-R-tree needs a profile to build from.
    """
    import random

    from repro.core.geometry import Rect

    rng = random.Random(seed)
    histories = {}
    start = {}
    for oid in range(n_objects):
        trail = [
            ((rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)), 900.0 + i)
            for i in range(5)
        ]
        histories[oid] = trail
        start[oid] = trail[-1][0]

    def window():
        return [
            (rng.randrange(n_objects),
             (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)))
            for _ in range(LSM_WINDOW)
        ]

    warmup = window()
    measured = window()
    rects = []
    for _ in range(LSM_QUERIES):
        x, y = rng.uniform(0.0, 90.0), rng.uniform(0.0, 90.0)
        rects.append(Rect((x, y), (x + 10.0, y + 10.0)))
    return histories, start, warmup, measured, rects


def _measure_update_window(kind, n_objects):
    """Per-update I/O for ``kind`` over the measured window at one scale.

    Methodology (refines tests/test_lsm.py::TestFlatUpdateCost): seed the
    index, run an unmeasured warm-up window under BUILD to absorb the
    post-seed transient (leftover sub-memtable runs merging with the
    window's churn), then for the LSM kind drain to a phase boundary --
    flush the memtable remainder and compact to quiescence, still under
    BUILD -- so every scale starts the measured window at the same point
    of the compaction cycle.  The window itself is one full tier-1 cycle
    (``memtable * ratio^2`` updates): it contains the identical flush and
    merge schedule at every scale, which is what makes the per-update
    numbers comparable; a window that cuts the cycle mid-phase catches a
    big merge at one scale and not another and reads as slope where there
    is none.  The measured updates (flushes and compactions included) are
    charged under UPDATE; everything before is BUILD.
    """
    from repro.core.geometry import Rect as _Rect
    from repro.storage.iostats import IOCategory

    domain = _Rect((0.0, 0.0), (100.0, 100.0))
    histories, start, warmup, measured, rects = _lsm_scale_workload(n_objects)
    pager = Pager()
    kwargs = {"query_rate": 0.5}
    if kind == IndexKind.CT:
        kwargs["histories"] = histories
    elif kind == IndexKind.LSM:
        kwargs.update(
            lsm_memtable=LSM_MEMTABLE,
            lsm_size_ratio=LSM_SIZE_RATIO,
            lsm_max_runs=LSM_MAX_RUNS,
        )
    index = make_index(kind, pager, domain, **kwargs)
    pos = dict(start)
    with pager.stats.category(IOCategory.BUILD):
        for oid in range(n_objects):
            index.insert(oid, pos[oid], now=1000.0 + oid)
        t = 1000.0 + n_objects
        for oid, point in warmup:
            index.update(oid, pos[oid], point, now=t)
            pos[oid] = point
            t += 1.0
        if kind == IndexKind.LSM:  # phase boundary: empty memtable,
            index.flush("bench")   # quiescent run set
            index.maybe_compact()
    before = pager.stats.total(IOCategory.UPDATE)
    t0 = perf_counter()
    with pager.stats.category(IOCategory.UPDATE):
        for oid, point in measured:
            index.update(oid, pos[oid], point, now=t)
            pos[oid] = point
            t += 1.0
    wall = perf_counter() - t0
    update_ios = pager.stats.total(IOCategory.UPDATE) - before
    q_before = pager.stats.total(IOCategory.QUERY)
    with pager.stats.category(IOCategory.QUERY):
        for rect in rects:
            index.range_search(rect)
    entry = {
        "ios_per_update": update_ios / len(measured),
        "update_ios": update_ios,
        "wall_clock_s": wall,
        "ios_per_query": (
            (pager.stats.total(IOCategory.QUERY) - q_before) / len(rects)
        ),
    }
    if kind == IndexKind.LSM:
        entry["n_runs"] = index.run_count
        entry["read_amplification"] = index.read_amplification
        entry["memtable_pending"] = len(index.memtable)
    return entry


def run_lsm_bench(indexes):
    """The ``lsm`` document section: flat per-update cost head-to-head.

    The paper's pitch for an LSM organisation is that per-update cost is a
    function of the memtable, not the index: classic R-tree (and CT)
    updates walk a tree whose height grows with the object count, while an
    LSM update is a WAL append plus an in-memory coalesce, with flushes
    amortised across the memtable.  This section measures per-update I/O
    for lsm / rtree / ct over the *same* deterministic update window at
    increasing seed sizes and records the gates CI enforces:

    * ``flat_ratio`` -- LSM per-update I/O at the largest scale over the
      smallest; must stay <= ``flat_gate`` (the curve is flat);
    * ``beats_ct_at_scale`` -- LSM per-update I/O below the CT-R-tree's
      at the largest scale (the head-to-head the ISSUE names);
    * ``read_amp_within_bound`` -- mean runs probed per query never
      exceeds ``max_runs`` + 1 (every run plus the memtable).
    """
    scales = {}
    for n in LSM_SCALES:
        row = {"n_objects": n, "kinds": {}}
        for kind in (IndexKind.LSM, IndexKind.RTREE, IndexKind.CT):
            row["kinds"][kind] = _measure_update_window(kind, n)
        scales[str(n)] = row
        lsm_row = row["kinds"][IndexKind.LSM]
        print(
            f"  lsm scale {n:>5}: "
            f"lsm {lsm_row['ios_per_update']:6.2f} I/O/upd  "
            f"rtree {row['kinds'][IndexKind.RTREE]['ios_per_update']:6.2f}  "
            f"ct {row['kinds'][IndexKind.CT]['ios_per_update']:6.2f}  "
            f"({lsm_row['n_runs']} runs, "
            f"read amp {lsm_row['read_amplification']:.2f})"
        )
    lo, hi = str(min(LSM_SCALES)), str(max(LSM_SCALES))
    lsm_lo = scales[lo]["kinds"][IndexKind.LSM]["ios_per_update"]
    lsm_hi = scales[hi]["kinds"][IndexKind.LSM]["ios_per_update"]
    ct_hi = scales[hi]["kinds"][IndexKind.CT]["ios_per_update"]
    max_read_amp = max(
        row["kinds"][IndexKind.LSM]["read_amplification"]
        for row in scales.values()
    )
    return {
        "window": LSM_WINDOW,
        "queries_per_scale": LSM_QUERIES,
        "config": {
            "memtable_size": LSM_MEMTABLE,
            "size_ratio": LSM_SIZE_RATIO,
            "max_runs": LSM_MAX_RUNS,
        },
        "scales": scales,
        "flat_gate": 1.15,
        "flat_ratio": lsm_hi / lsm_lo if lsm_lo else 0.0,
        "lsm_vs_ct_at_scale": lsm_hi / ct_hi if ct_hi else 0.0,
        "beats_ct_at_scale": lsm_hi < ct_hi,
        "read_amp_bound": LSM_MAX_RUNS + 1,
        "max_read_amplification": max_read_amp,
        "read_amp_within_bound": max_read_amp <= LSM_MAX_RUNS + 1,
        # The driver workload's numbers (same trace as ``indexes``), for
        # the committed-baseline trend: query-heavier, so LSM pays its
        # read amplification there.
        "driver_workload": {
            "lsm_ios_per_update": indexes[IndexKind.LSM]["ios_per_update"],
            "ct_ios_per_update": indexes[IndexKind.CT]["ios_per_update"],
            "rtree_ios_per_update": indexes[IndexKind.RTREE]["ios_per_update"],
        },
    }


def throughput_entry(result, engine=None):
    wall = result.wall_clock_s
    entry = {
        "n_updates": result.n_updates,
        "n_queries": result.n_queries,
        "wall_clock_s": wall,
        "updates_per_s": result.n_updates / wall if wall else 0.0,
        "queries_per_s": result.n_queries / wall if wall else 0.0,
        "ios_per_update": result.ios_per_update,
        "ios_per_query": result.ios_per_query,
    }
    if engine is not None:
        entry["engine"] = engine
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke",
                        choices=("smoke", "small", "medium"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--buffer-pool", type=int, default=64, metavar="FRAMES")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_driver.json"))
    args = parser.parse_args(argv)

    # Metrics default off; the overhead probe below flips them deliberately.
    set_enabled(False)
    print(f"simulating workload (scale={args.scale}, seed={args.seed}) ...")
    bundle = build_workload(args.scale, args.seed, fresh=True)

    indexes = {}
    for kind in IndexKind.ALL:
        t0 = perf_counter()
        result, index, _ = run_kind(bundle, kind, pool_frames=0)
        pooled_result, _, pool = run_kind(
            bundle, kind, pool_frames=args.buffer_pool
        )
        indexes[kind] = kind_entry(result, index, pooled_result, pool)
        print(
            f"  {IndexKind.LABELS[kind]:<12} "
            f"{result.ios_per_update:8.2f} I/O/upd  "
            f"{result.ios_per_query:8.2f} I/O/qry  "
            f"{result.wall_clock_s:6.3f}s run  "
            f"hit rate {pool.hit_rate:6.1%}  "
            f"({perf_counter() - t0:.2f}s incl. build)"
        )

    # Overhead probe: one kind replayed with metrics hard-off vs. hard-on.
    disabled_result, _, _ = run_kind(
        bundle,
        IndexKind.LAZY,
        pool_frames=0,
        metrics=MetricsRegistry(enabled=False),
    )
    enabled_result, _, _ = run_kind(
        bundle,
        IndexKind.LAZY,
        pool_frames=0,
        metrics=MetricsRegistry(enabled=True),
    )
    disabled_s = disabled_result.wall_clock_s
    enabled_s = enabled_result.wall_clock_s
    n_events = disabled_result.n_updates + disabled_result.n_queries
    noop_s = measure_noop_hook_cost(n_events)
    overhead = {
        "kind": IndexKind.LAZY,
        "n_events": n_events,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_pct": (
            (enabled_s - disabled_s) / disabled_s * 100.0 if disabled_s else 0.0
        ),
        # What the default-off hooks cost: the per-event branch checks, timed
        # directly and expressed against the disabled run.
        "noop_hook_s": noop_s,
        "disabled_overhead_pct": (
            noop_s / disabled_s * 100.0 if disabled_s else 0.0
        ),
    }
    print(
        f"  metrics overhead: disabled hooks {overhead['disabled_overhead_pct']:.3f}% "
        f"of run, enabled {overhead['enabled_overhead_pct']:+.1f}%"
    )

    # Engine levers: batched updates (lazy + CT) and a sharded run.
    engine = {"batch_size": ENGINE_BATCH, "shards": ENGINE_SHARDS, "batched": {}}
    for kind in (IndexKind.LAZY, IndexKind.CT):
        batched_result, _, _ = run_kind(
            bundle, kind, pool_frames=0, batch=ENGINE_BATCH
        )
        unbatched = indexes[kind]["ios_per_update"]
        engine["batched"][kind] = {
            "ios_per_update": batched_result.ios_per_update,
            "ios_per_query": batched_result.ios_per_query,
            "unbatched_ios_per_update": unbatched,
            "n_coalesced": batched_result.n_coalesced,
            "n_flushes": batched_result.n_flushes,
            "n_applied": batched_result.n_applied,
        }
        print(
            f"  batched {IndexKind.LABELS[kind]:<12} "
            f"{batched_result.ios_per_update:8.2f} I/O/upd "
            f"(unbatched {unbatched:.2f}, "
            f"coalesced {batched_result.n_coalesced})"
        )
    sharded_result, sharded_index, _ = run_kind(
        bundle, IndexKind.LAZY, pool_frames=0, shards=ENGINE_SHARDS
    )
    engine["sharded"] = {
        "kind": IndexKind.LAZY,
        "ios_per_update": sharded_result.ios_per_update,
        "ios_per_query": sharded_result.ios_per_query,
        "unsharded_ios_per_update": indexes[IndexKind.LAZY]["ios_per_update"],
        "cross_shard_moves": sharded_index.cross_shard_moves,
        "merged": sharded_index.merged_result().to_dict(),
        "engine": sharded_index.engine_dict(),
    }
    print(
        f"  sharded {IndexKind.LABELS[IndexKind.LAZY]:<12} "
        f"{sharded_result.ios_per_update:8.2f} I/O/upd over "
        f"{ENGINE_SHARDS} shards "
        f"({sharded_index.cross_shard_moves} cross-shard moves)"
    )

    # Durability: the lazy run again, every update logged through a
    # group-commit WAL, then crash-recovered from the log it left behind
    # (no closing checkpoint, so recovery replays the whole online stream).
    import shutil
    import tempfile

    from repro.durability import DurabilityManager, recover

    wal_dir = tempfile.mkdtemp(prefix="bench-wal-")
    try:
        manager = DurabilityManager(wal_dir, sync=DURABILITY_SYNC)
        wal_result, wal_index, _ = run_kind(
            bundle, IndexKind.LAZY, pool_frames=0, durability=manager
        )
        manager.close()
        wal_stats = manager.stats
        recovered, report = recover(wal_dir)
        recovered_ok = len(recovered) == len(wal_index)
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
    wal_off = indexes[IndexKind.LAZY]["ios_per_update"]
    durability = {
        "kind": IndexKind.LAZY,
        "sync_policy": DURABILITY_SYNC,
        "ios_per_update": wal_result.ios_per_update,
        "wal_off_ios_per_update": wal_off,
        # The gate CI enforces: logging is file appends, not pager traffic,
        # so per-op page I/O must track the WAL-off run closely.
        "overhead_pct": (
            (wal_result.ios_per_update - wal_off) / wal_off * 100.0
            if wal_off else 0.0
        ),
        "wall_clock_s": wal_result.wall_clock_s,
        "wal": wal_stats.to_dict(),
        "recovery": {
            "records_replayed": report.records_replayed,
            "records_skipped": report.records_skipped,
            "replay_s": report.replay_s,
            "checkpoint_ordinal": report.checkpoint_ordinal,
            "recovered_object_count_matches": recovered_ok,
        },
    }
    print(
        f"  durability {IndexKind.LABELS[IndexKind.LAZY]:<9} "
        f"{wal_result.ios_per_update:8.2f} I/O/upd with WAL "
        f"(off {wal_off:.2f}, {wal_stats.fsyncs} fsyncs, "
        f"replayed {report.records_replayed} in {report.replay_s:.3f}s)"
    )

    # Health: the lazy run once more behind the self-healing wrapper.  The
    # workload has no mid-run behaviour shift, so the drift monitor should
    # never push past HEALTHY and no rebuild fires: what is left is the
    # steady-state cost of the wrapper itself (I/O deltas per update, a
    # window roll every N ops) -- the gate CI enforces is <=10% per-op
    # update I/O over the bare run.  The verifier then sweeps the whole
    # wrapped index as the `repro verify` smoke's in-process twin.
    from repro.health import verify_index

    heal_result, heal_index, _ = run_kind(
        bundle, IndexKind.LAZY, pool_frames=0, healing=True
    )
    verdict = verify_index(heal_index)
    heal_off = indexes[IndexKind.LAZY]["ios_per_update"]
    health = {
        "kind": IndexKind.LAZY,
        "ios_per_update": heal_result.ios_per_update,
        "heal_off_ios_per_update": heal_off,
        "overhead_pct": (
            (heal_result.ios_per_update - heal_off) / heal_off * 100.0
            if heal_off else 0.0
        ),
        "wall_clock_s": heal_result.wall_clock_s,
        "verify_ok": verdict.ok,
        "verify_violations": len(verdict.violations),
        "verify_checked_objects": verdict.checked_objects,
        "health": heal_index.health_dict(),
    }
    print(
        f"  self-heal {IndexKind.LABELS[IndexKind.LAZY]:<10} "
        f"{heal_result.ios_per_update:8.2f} I/O/upd wrapped "
        f"(off {heal_off:.2f}, state {heal_index.health_state}, "
        f"{heal_index.cutovers} cutovers, "
        f"verify {'OK' if verdict.ok else 'FAILED'})"
    )

    # Parallel: the worker-pool execution mode.  (a) The CT build, serial vs
    # process-pool -- the contract is bit-identical output, only wall clock
    # may move; (b) the sharded lazy workload at 1 (inline router), 2, and 4
    # process workers, updates batched so each dispatch ships a sub-batch.
    # Smoke scale sits below the parallelism break-even (per-op work is a few
    # microseconds of pure Python; fork + queue round-trips cost more than
    # they save), so CI enforces the speedup gates only when
    # ``below_break_even`` is false -- the byte-identity and I/O-parity gates
    # hold at every scale.
    serial_s, serial_report, serial_doc = time_ct_build(bundle, workers=0)
    par_s, par_report, par_doc = time_ct_build(
        bundle, workers=PARALLEL_BUILD_WORKERS
    )
    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable_cpus = os.cpu_count() or 1
    below_break_even = (
        args.scale == "smoke" or usable_cpus < PARALLEL_BUILD_WORKERS
    )
    parallel = {
        "below_break_even": below_break_even,
        "usable_cpus": usable_cpus,
        "note": (
            "below_break_even is true when the machine cannot actually run "
            f"{PARALLEL_BUILD_WORKERS} workers concurrently (usable_cpus < "
            f"{PARALLEL_BUILD_WORKERS}: processes time-slice one core and "
            "pay dispatch cost for nothing) or at smoke scale, where per-op "
            "work is a few microseconds of pure Python against a measured "
            "~75-110us pipe round-trip per dispatch.  CI enforces the "
            "speedup gates only when this flag is false; byte-identity and "
            "I/O parity are enforced at every scale."
        ),
        "batch_size": PARALLEL_BATCH,
        "build": {
            "workers": PARALLEL_BUILD_WORKERS,
            "serial_s": serial_s,
            "parallel_s": par_s,
            "speedup": serial_s / par_s if par_s else 0.0,
            "identical_document": serial_doc == par_doc,
            "serial_phase_timings": serial_report.phase_timings,
            "parallel_phase_timings": par_report.phase_timings,
        },
    }
    print(
        f"  parallel build: serial {serial_s:.3f}s, "
        f"{PARALLEL_BUILD_WORKERS} workers {par_s:.3f}s "
        f"({'identical' if parallel['build']['identical_document'] else 'DIVERGED'})"
    )
    inline_result, inline_index, _ = run_kind(
        bundle, IndexKind.LAZY, pool_frames=0, batch=PARALLEL_BATCH,
        shards=ENGINE_SHARDS,
    )
    runs = {"1": throughput_entry(inline_result, inline_index.engine_dict())}
    for workers in PARALLEL_WORKER_COUNTS:
        par_result, par_engine = run_parallel_sharded(bundle, workers)
        runs[str(workers)] = throughput_entry(par_result, par_engine)
        print(
            f"  parallel sharded x{workers}: "
            f"{runs[str(workers)]['updates_per_s']:10.0f} upd/s "
            f"(inline {runs['1']['updates_per_s']:.0f}, "
            f"{runs[str(workers)]['ios_per_update']:.2f} I/O/upd)"
        )
    top = str(max(PARALLEL_WORKER_COUNTS))
    parallel["sharded"] = {
        "kind": IndexKind.LAZY,
        "mode": "process",
        "shards_at_1": ENGINE_SHARDS,
        "runs": runs,
        "update_speedup_at_4": (
            runs[top]["updates_per_s"] / runs["1"]["updates_per_s"]
            if runs["1"]["updates_per_s"] else 0.0
        ),
        "query_speedup_at_4": (
            runs[top]["queries_per_s"] / runs["1"]["queries_per_s"]
            if runs["1"]["queries_per_s"] else 0.0
        ),
        # Worker-pool execution must not change what gets charged: per-op
        # update I/O at 4 workers vs the inline 4-shard router (same
        # partition, same batch schedule).  CI gates this at 5%.
        "io_delta_pct": (
            abs(runs[top]["ios_per_update"] - runs["1"]["ios_per_update"])
            / runs["1"]["ios_per_update"] * 100.0
            if runs["1"]["ios_per_update"] else 0.0
        ),
    }

    # Adaptive shard management on the skewed flash-crowd workload.
    rebalance = run_rebalance_bench()

    # Geometry micro-kernels (the Rect hot path the perf work rewrote).
    try:
        from benchmarks.bench_geometry import run_geometry_bench
    except ImportError:
        from bench_geometry import run_geometry_bench
    geometry = run_geometry_bench(n_pairs=2048, repeat=3)
    ns = geometry["ops"]["intersects"]
    print(
        f"  geometry: intersects method {ns['method_ns_per_op']:.0f} ns, "
        f"kernel {ns['kernel_ns_per_op']:.0f} ns"
    )

    # Struct-of-arrays layout (PR 7): node scans, dispatch RTT, parity.
    try:
        from benchmarks.bench_geometry import (
            run_dispatch_bench,
            run_node_scan_bench,
        )
    except ImportError:
        from bench_geometry import run_dispatch_bench, run_node_scan_bench
    node_scan = run_node_scan_bench(repeat=5)
    dispatch = run_dispatch_bench(n_pings=150)
    parity = run_layout_parity(bundle)
    soa = {
        "node_scan": node_scan,
        "dispatch": dispatch,
        "layout_parity": parity,
    }
    big = node_scan["sizes"][str(max(int(k) for k in node_scan["sizes"]))]
    shm_row = dispatch["modes"].get("process_shm")
    pipe_row = dispatch["modes"]["process_pipe"]
    print(
        f"  soa node scans: intersect {big['intersect_all']['speedup']:.2f}x, "
        f"choose {big['choose_subtree']['speedup']:.2f}x  "
        f"rtt pipe {pipe_row['median_us']:.1f}us"
        + (
            f" shm {shm_row['median_us']:.1f}us"
            if shm_row
            else " (shm unavailable)"
        )
        + f"  parity {'OK' if parity['identical_snapshot'] else 'DIVERGED'}"
    )

    # LSM-R-tree (PR 10): flat per-update cost head-to-head at increasing
    # scales; the flat-curve / beats-CT / read-amp gates live in CI.
    lsm = run_lsm_bench(indexes)
    print(
        f"  lsm flat ratio {lsm['flat_ratio']:.3f} (gate {lsm['flat_gate']}), "
        f"vs ct at scale {lsm['lsm_vs_ct_at_scale']:.3f}, "
        f"read amp {lsm['max_read_amplification']:.2f} "
        f"(bound {lsm['read_amp_bound']})"
    )

    # Serving layer (PR 8): one daemon per client count, driven by the
    # multi-process loadgen; parity + verify are enforced inside.
    from repro.serve.bench import run_serve_bench

    serve = run_serve_bench(
        bundle.trace,
        bundle.scale.n_history,
        bundle.domain,
        kind=IndexKind.LAZY,
        client_counts=SERVE_CLIENT_COUNTS,
        refresh_interval=0.1,
        seed=args.seed,
    )
    for run in serve["runs"]:
        lat = run["latency"]["all"]
        print(
            f"  serve x{run['n_clients']:<3} {run['ops_per_s']:9.0f} ops/s  "
            f"p50 {lat.get('p50_ms', float('nan')):6.2f}ms  "
            f"p99 {lat.get('p99_ms', float('nan')):6.2f}ms  "
            f"rejects {run['rejected']:>4}  "
            f"parity {'OK' if run['parity'] else 'FAIL'}"
        )

    # Resilience (PR 9): SIGKILL a supervised daemon mid-workload; the
    # harness gates the exactly-once invariants before returning.
    resilience = run_resilience_bench(args.seed)
    mttr = resilience["mttr_mean_s"]
    print(
        f"  resilience: {resilience['acked']} acked "
        f"({resilience['acked_retried']} retried, "
        f"{resilience['dedup_acks']} deduped), "
        f"{resilience['restarts']} restarts, mttr "
        + (f"{mttr:.2f}s" if mttr is not None else "n/a")
        + f", lost {resilience['invariants']['acked_writes_lost']}"
    )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_regression.py",
        "scale": args.scale,
        "seed": args.seed,
        "buffer_pool_frames": args.buffer_pool,
        "workload": {
            "n_objects": bundle.scale.n_objects,
            "n_history": bundle.scale.n_history,
            "n_updates_per_object": bundle.scale.n_updates,
        },
        "indexes": indexes,
        "metrics_overhead": overhead,
        "engine": engine,
        "durability": durability,
        "health": health,
        "parallel": parallel,
        "rebalance": rebalance,
        "lsm": lsm,
        "serve": serve,
        "resilience": resilience,
        "geometry": geometry,
        "soa": soa,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
