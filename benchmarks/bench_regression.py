#!/usr/bin/env python
"""Fixed-seed regression benchmark: the repo's perf trajectory seed.

Runs one small deterministic workload through all four index kinds and
writes ``BENCH_driver.json`` in a stable schema:

* per index kind: ``ios_per_update`` / ``ios_per_query`` / ``wall_clock_s``
  under the paper's cache-less accounting (the headline numbers every
  figure uses), plus a second run over an LRU buffer pool reported under
  ``pooled`` (``cache_hit_rate``, evictions, write-backs, pooled I/O);
* ``metrics_overhead``: the same workload replayed with the metrics registry
  disabled vs. enabled, plus a direct micro-measurement of the disabled
  (no-op) hook cost -- demonstrating that default-off observability leaves
  the hot path untouched (<5% of a driver run).

I/O counts and tree shapes are deterministic given ``--seed``; wall clocks
are hardware-dependent and exist for trend-watching, not for diffing.

Usage::

    PYTHONPATH=src python benchmarks/bench_regression.py [--scale smoke]
        [--seed 0] [--buffer-pool 64] [--out BENCH_driver.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.harness import build_workload  # noqa: E402
from repro.obs import MetricsRegistry, set_enabled, tree_stats  # noqa: E402
from repro.storage import BufferPool, Pager  # noqa: E402
from repro.workload import (  # noqa: E402
    IndexKind,
    QueryWorkload,
    SimulationDriver,
    make_index,
)

SCHEMA_VERSION = 1


def run_kind(bundle, kind, *, pool_frames, metrics=None):
    """Build ``kind`` fresh, replay the bundle's workload; returns the pieces."""
    pager = Pager()
    pool = BufferPool(pager, capacity=pool_frames) if pool_frames else None
    store = pool if pool is not None else pager
    histories = bundle.histories() if kind == IndexKind.CT else None
    index = make_index(
        kind,
        store,
        bundle.domain,
        histories=histories,
        query_rate=bundle.scale.base_update_rate / 100.0,
    )
    driver = SimulationDriver(index, store, kind, metrics=metrics)
    driver.load(bundle.current(), now=bundle.trace.load_time(bundle.scale.n_history))
    t_start, t_end = bundle.trace.online_span(bundle.scale.n_history)
    queries = QueryWorkload(
        bundle.domain, bundle.scale.base_update_rate / 100.0, 0.001, seed=99
    ).between(t_start, t_end)
    result = driver.run(bundle.update_stream(), queries)
    return result, index, pool


def kind_entry(result, index, pooled_result, pool):
    return {
        # Paper accounting: every page touch is one I/O.
        "ios_per_update": result.ios_per_update,
        "ios_per_query": result.ios_per_query,
        "n_updates": result.n_updates,
        "n_queries": result.n_queries,
        "update_io": result.update_io.to_dict(),
        "query_io": result.query_io.to_dict(),
        "wall_clock_s": result.wall_clock_s,
        "cache_hit_rate": pool.hit_rate,
        "tree_stats": tree_stats(index),
        # The same workload over an LRU pool (ablation substrate).
        "pooled": {
            "ios_per_update": pooled_result.ios_per_update,
            "ios_per_query": pooled_result.ios_per_query,
            "wall_clock_s": pooled_result.wall_clock_s,
            "buffer_pool": pool.metrics_dict(),
        },
    }


def measure_noop_hook_cost(n_events: int) -> float:
    """Seconds the disabled-registry branches add across ``n_events`` events.

    The driver's per-event instrumentation is two ``if enabled`` checks when
    metrics are off; this times exactly that.
    """
    registry = MetricsRegistry(enabled=False)
    t0 = perf_counter()
    for _ in range(n_events):
        if registry.enabled:
            pass
        if registry.enabled:
            pass
    return perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke",
                        choices=("smoke", "small", "medium"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--buffer-pool", type=int, default=64, metavar="FRAMES")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_driver.json"))
    args = parser.parse_args(argv)

    # Metrics default off; the overhead probe below flips them deliberately.
    set_enabled(False)
    print(f"simulating workload (scale={args.scale}, seed={args.seed}) ...")
    bundle = build_workload(args.scale, args.seed, fresh=True)

    indexes = {}
    for kind in IndexKind.ALL:
        t0 = perf_counter()
        result, index, _ = run_kind(bundle, kind, pool_frames=0)
        pooled_result, _, pool = run_kind(
            bundle, kind, pool_frames=args.buffer_pool
        )
        indexes[kind] = kind_entry(result, index, pooled_result, pool)
        print(
            f"  {IndexKind.LABELS[kind]:<12} "
            f"{result.ios_per_update:8.2f} I/O/upd  "
            f"{result.ios_per_query:8.2f} I/O/qry  "
            f"{result.wall_clock_s:6.3f}s run  "
            f"hit rate {pool.hit_rate:6.1%}  "
            f"({perf_counter() - t0:.2f}s incl. build)"
        )

    # Overhead probe: one kind replayed with metrics hard-off vs. hard-on.
    disabled_result, _, _ = run_kind(
        bundle,
        IndexKind.LAZY,
        pool_frames=0,
        metrics=MetricsRegistry(enabled=False),
    )
    enabled_result, _, _ = run_kind(
        bundle,
        IndexKind.LAZY,
        pool_frames=0,
        metrics=MetricsRegistry(enabled=True),
    )
    disabled_s = disabled_result.wall_clock_s
    enabled_s = enabled_result.wall_clock_s
    n_events = disabled_result.n_updates + disabled_result.n_queries
    noop_s = measure_noop_hook_cost(n_events)
    overhead = {
        "kind": IndexKind.LAZY,
        "n_events": n_events,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_pct": (
            (enabled_s - disabled_s) / disabled_s * 100.0 if disabled_s else 0.0
        ),
        # What the default-off hooks cost: the per-event branch checks, timed
        # directly and expressed against the disabled run.
        "noop_hook_s": noop_s,
        "disabled_overhead_pct": (
            noop_s / disabled_s * 100.0 if disabled_s else 0.0
        ),
    }
    print(
        f"  metrics overhead: disabled hooks {overhead['disabled_overhead_pct']:.3f}% "
        f"of run, enabled {overhead['enabled_overhead_pct']:+.1f}%"
    )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_regression.py",
        "scale": args.scale,
        "seed": args.seed,
        "buffer_pool_frames": args.buffer_pool,
        "workload": {
            "n_objects": bundle.scale.n_objects,
            "n_history": bundle.scale.n_history,
            "n_updates_per_object": bundle.scale.n_updates,
        },
        "indexes": indexes,
        "metrics_overhead": overhead,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
