"""Figure 9: query-I/O ratio (alpha-tree, CT-R-tree vs lazy-R-tree) over
query size.

Shape assertions: both looser structures pay more query I/O than the
tight-MBR lazy-R-tree (ratios above 1), with the CT-R-tree above the
alpha-tree -- the paper's Figure 9 ordering.
"""

import pytest

from repro.experiments import figure9
from benchmarks.conftest import save_result


@pytest.fixture(scope="module")
def result(bench_scale):
    return figure9.run(bench_scale)


def test_figure9_sweep(benchmark, result, bench_scale):
    from repro.experiments.harness import build_workload, run_index_on
    from repro.workload.driver import IndexKind

    bundle = build_workload(bench_scale, 0)

    def one_cell():
        return run_index_on(
            IndexKind.CT, bundle, query_count=60, query_size_fraction=0.001
        ).result.query_ios

    ios = benchmark.pedantic(one_cell, rounds=1, iterations=1)
    save_result("figure9", result.to_table())
    assert ios > 0


def test_figure9_loose_structures_pay_on_queries(result):
    for row in result.rows:
        assert row["CT/lazy"] > 1.0
        assert row["alpha/lazy"] > 0.95  # alpha's penalty is mild but present


def test_figure9_ct_pays_more_than_alpha(result):
    above = sum(1 for row in result.rows if row["CT/lazy"] > row["alpha/lazy"])
    assert above >= len(result.rows) - 1  # allow one noisy point
