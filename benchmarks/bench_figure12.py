"""Figure 12: CT-R-tree sensitivity to T_rate, T_time, T_dist, T_area.

Shape assertion: flat curves -- total I/O varies by a small factor across a
16x parameter range ("it is not critical to choose precise parameter values
for the CT-R-tree to work efficiently").
"""

import pytest

from repro.experiments import figure12
from benchmarks.conftest import save_result

PARAMS = ("t_rate", "t_time", "t_dist", "t_area")


@pytest.fixture(scope="module")
def results(bench_scale):
    return {param: figure12.run_parameter(param, bench_scale) for param in PARAMS}


def test_figure12_sweeps(benchmark, results):
    text = "\n\n".join(results[p].to_table() for p in PARAMS)
    save_result("figure12", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(len(results[p].rows) == 5 for p in PARAMS)


@pytest.mark.parametrize("param", PARAMS)
def test_figure12_flat_over_wide_range(results, param):
    series = [row["total I/O"] for row in results[param].rows]
    assert max(series) < 1.6 * min(series), f"{param} is too sensitive: {series}"


def test_figure12_small_t_area_hurts(results):
    """The paper's caveat: an overly small T_area means "many objects that
    should be in a qs-region may then not be able to hit one ... leading to
    poor performance" -- the smallest cap must cost at least the baseline."""
    rows = results["t_area"].rows
    assert rows[0]["total I/O"] >= rows[2]["total I/O"]
