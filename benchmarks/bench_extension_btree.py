"""Extension bench (paper Section 6): change tolerance in one dimension.

Three indexes over a stream of scalar sensor readings (drift around an
operating point, rare regime jumps):

* plain B+-tree -- every reading is a delete + re-insert;
* lazy B+-tree -- hash index on sensor id; in-leaf readings cost 3 I/Os;
* CT index -- a 1-D CT-R-tree whose qs-*intervals* are mined from reading
  history by the unmodified Phase-1/2/3 pipeline (the algorithms are
  dimension-agnostic).

Expected shape: the same story as Figure 8's update-heavy end, transplanted
to 1-D -- plain >> lazy >= CT on update I/O, with CT's tolerance set by the
mined operating intervals rather than by split-dependent leaf boundaries.
"""

import random

import pytest

from repro.btree import BPlusTree, LazyBPlusTree
from repro.core.builder import CTRTreeBuilder
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.storage.iostats import IOCategory
from repro.storage.pager import Pager
from benchmarks.conftest import save_result

N_SENSORS = 300
N_HISTORY = 110
N_ONLINE = 40
REGIMES = (5.0, 15.0, 25.0, 35.0)
DOMAIN_1D = Rect((-20.0,), (60.0,))


def simulate_readings(seed=0):
    """Per-sensor scalar trails: slow drift, 1% regime jumps."""
    rng = random.Random(seed)
    trails = {}
    for sid in range(N_SENSORS):
        regime = rng.choice(REGIMES)
        value = regime
        t = 0.0
        trail = []
        for _ in range(N_HISTORY + N_ONLINE):
            t += 20.0
            if rng.random() < 0.01:
                regime = rng.choice(REGIMES)
                value = regime
            value += rng.gauss(0, 0.05) + 0.05 * (regime - value)
            trail.append(((value,), t))
        trails[sid] = trail
    return trails


@pytest.fixture(scope="module")
def workload():
    trails = simulate_readings()
    histories = {sid: trail[:N_HISTORY] for sid, trail in trails.items()}
    current = {sid: trail[N_HISTORY - 1][0] for sid, trail in trails.items()}
    online = []
    for sid, trail in trails.items():
        for point, t in trail[N_HISTORY:]:
            online.append((t, sid, point))
    online.sort()
    return histories, current, online


def run_btree(cls, workload):
    histories, current, online = workload
    pager = Pager()
    tree = cls(pager)
    positions = {}
    with pager.stats.category(IOCategory.BUILD):
        for sid, point in current.items():
            tree.insert(sid, point[0])
            positions[sid] = point[0]
    with pager.stats.category(IOCategory.UPDATE):
        for _t, sid, point in online:
            tree.update(sid, positions[sid], point[0])
            positions[sid] = point[0]
    with pager.stats.category(IOCategory.QUERY):
        for low in range(-10, 50, 3):
            tree.range_search(float(low), float(low) + 3.0)
    return tree, pager


def run_ct(workload):
    histories, current, online = workload
    pager = Pager()
    params = CTParams(t_dist=2.0, t_rate=0.05, t_time=300.0, t_area=4.0)
    builder = CTRTreeBuilder(params, query_rate=0.1)
    tree, _report = builder.build(pager, DOMAIN_1D, histories)
    positions = {}
    with pager.stats.category(IOCategory.BUILD):
        for sid, point in current.items():
            tree.insert(sid, point)
            positions[sid] = point
    with pager.stats.category(IOCategory.UPDATE):
        for t, sid, point in online:
            tree.update(sid, positions[sid], point, now=t)
            positions[sid] = point
    with pager.stats.category(IOCategory.QUERY):
        for low in range(-10, 50, 3):
            tree.range_search(Rect((float(low),), (float(low) + 3.0,)))
    return tree, pager


@pytest.fixture(scope="module")
def results(workload):
    plain_tree, plain_pager = run_btree(BPlusTree, workload)
    lazy_tree, lazy_pager = run_btree(LazyBPlusTree, workload)
    ct_tree, ct_pager = run_ct(workload)
    return {
        "B+-tree": (plain_tree, plain_pager),
        "lazy B+-tree": (lazy_tree, lazy_pager),
        "CT (1-D)": (ct_tree, ct_pager),
    }


def test_extension_table(benchmark, results, workload):
    _histories, _current, online = workload
    lines = [
        "Extension: 1-D sensor-value indexing (Section 6 future work)",
        f"{N_SENSORS} sensors, {len(online)} readings",
        f"{'index':<14} {'update I/O':>12} {'query I/O':>10} {'lazy %':>8}",
    ]
    for name, (tree, pager) in results.items():
        lazy_hits = getattr(tree, "lazy_hits", None)
        lazy_pct = f"{100 * lazy_hits / len(online):.0f}%" if lazy_hits is not None else "-"
        lines.append(
            f"{name:<14} {pager.stats.total(IOCategory.UPDATE):>12,} "
            f"{pager.stats.total(IOCategory.QUERY):>10,} {lazy_pct:>8}"
        )
    save_result("extension_btree", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_lazy_beats_plain(results):
    """Lazy helps, but only partially: 300 sensors packed into 4 operating
    regimes make B+-leaf intervals razor-thin, so even tiny drift crosses a
    separator about half the time.  (This is exactly the 1-D version of
    Figure 11's density argument -- and why CT's mined intervals win.)"""
    plain = results["B+-tree"][1].stats.total(IOCategory.UPDATE)
    lazy = results["lazy B+-tree"][1].stats.total(IOCategory.UPDATE)
    assert lazy < 0.85 * plain


def test_ct_beats_lazy_decisively(results):
    lazy = results["lazy B+-tree"][1].stats.total(IOCategory.UPDATE)
    ct = results["CT (1-D)"][1].stats.total(IOCategory.UPDATE)
    assert ct < 0.7 * lazy


def test_ct_interval_tolerance_holds(results, workload):
    _histories, _current, online = workload
    ct_tree, ct_pager = results["CT (1-D)"]
    assert ct_tree.lazy_hits / len(online) > 0.8
    lazy = results["lazy B+-tree"][1].stats.total(IOCategory.UPDATE)
    ct = ct_pager.stats.total(IOCategory.UPDATE)
    assert ct < 1.3 * lazy  # competitive with (typically beating) lazy

    # Results must agree across structures: same sensors in 14-16 degrees.
    ct_hits = sorted(oid for oid, _ in ct_tree.range_search(Rect((14.0,), (16.0,))))
    lazy_hits_ids = sorted(
        oid for oid, _ in results["lazy B+-tree"][0].range_search(14.0, 16.0)
    )
    assert ct_hits == lazy_hits_ids


def test_all_structures_valid(results):
    for name, (tree, _pager) in results.items():
        assert tree.validate() == [], name
