"""Benchmark configuration.

Each ``bench_*`` module regenerates one of the paper's tables/figures and
benchmarks its cost.  The scale is selected with the ``REPRO_BENCH_SCALE``
environment variable (default ``smoke`` so ``pytest benchmarks/`` finishes in
minutes; use ``small``/``medium`` for the shapes reported in
EXPERIMENTS.md).  Rendered tables are written to ``benchmarks/results/`` so
the figures survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a rendered experiment table and echo it (visible with -s)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}_{BENCH_SCALE}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE
