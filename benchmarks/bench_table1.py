"""Table 1: parameters and baseline values.

The "benchmark" here is the cost of constructing and rendering the full
parameter set; the real deliverable is the rendered table, saved to
``benchmarks/results/``.
"""

from repro.experiments import table1
from benchmarks.conftest import save_result


def test_table1(benchmark, bench_scale):
    text = benchmark(table1.run, "paper")
    save_result("table1", text)
    assert "lambda_u" in text
    assert "22500.0" in text  # T_area baseline
