"""Figure 8: total I/O vs update/query ratio, all four indexes.

Shape assertions (the paper's headline claims):

* at the query-heavy end the CT-R-tree is the *worst* of the lazy family
  (its qs-regions are looser than tight MBRs: about 2x in the paper);
* at the update-heavy end the traditional R-tree collapses while the hash
  -indexed structures stay cheap -- the paper reports CT at 1/27th of the
  R-tree at ratio 1000.

Absolute factors grow with population density (Figure 11); run with
``REPRO_BENCH_SCALE=small`` or ``medium`` for the EXPERIMENTS.md numbers.
"""

import pytest

from repro.experiments import figure8
from repro.workload.driver import IndexKind
from benchmarks.conftest import save_result

RATIOS = (0.1, 1.0, 10.0, 100.0, 1000.0)


@pytest.fixture(scope="module")
def result(bench_scale):
    return figure8.run(bench_scale, ratios=RATIOS)


def test_figure8_sweep(benchmark, result, bench_scale):
    # The sweep itself ran once (module fixture); benchmark one mid-ratio cell.
    from repro.experiments.harness import build_workload, ratio_controls, run_index_on

    bundle = build_workload(bench_scale, 0)
    duration = bundle.update_stream().duration
    skip, query_rate = ratio_controls(bundle.scale, duration, 100.0)

    def one_cell():
        return run_index_on(
            IndexKind.CT, bundle, skip=skip, query_rate=query_rate
        ).result.total_ios

    total = benchmark.pedantic(one_cell, rounds=1, iterations=1)
    save_result("figure8", result.to_table())
    assert total > 0


def test_figure8_ct_worst_at_query_heavy_end(result):
    low = result.rows[0]
    assert low["ratio"] == 0.1
    assert low[IndexKind.LABELS[IndexKind.CT]] > low[IndexKind.LABELS[IndexKind.LAZY]]


def test_figure8_rtree_collapses_at_update_heavy_end(result, bench_scale):
    # The CT margin over the R-tree widens with density (Figure 11);
    # smoke-sized populations only show the direction.
    ct_bound = 0.75 if bench_scale == "smoke" else 0.6
    high = result.rows[-1]
    rtree = high[IndexKind.LABELS[IndexKind.RTREE]]
    for kind in (IndexKind.LAZY, IndexKind.ALPHA):
        assert high[IndexKind.LABELS[kind]] < 0.6 * rtree
    assert high[IndexKind.LABELS[IndexKind.CT]] < ct_bound * rtree


def test_figure8_grows_with_update_rate(result):
    """More updates -> more total I/O, for every index (paper: "all four
    indexes show an increase in the number of I/Os").  Once full sampling is
    reached, consecutive points only differ in (cheap) query volume, so a
    small tolerance is allowed there."""
    for kind in IndexKind.ALL:
        label = IndexKind.LABELS[kind]
        series = [row[label] for row in result.rows]
        assert series[-1] > 10 * series[0]
        for previous, current in zip(series, series[1:]):
            assert current >= 0.9 * previous
