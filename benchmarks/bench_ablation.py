"""Ablation benches: the design choices DESIGN.md calls out.

Each test regenerates one ablation table (saved to ``benchmarks/results/``)
and asserts its headline direction.
"""

import pytest

from repro.experiments import ablations
from benchmarks.conftest import save_result


@pytest.fixture(scope="module")
def all_results(bench_scale):
    return ablations.run(bench_scale)


def test_ablation_tables(benchmark, all_results):
    text = "\n\n".join(result.to_table() for result in all_results.values())
    save_result("ablations", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(all_results) == {
        "secondary_index",
        "merge_phases",
        "t_list",
        "split_policy",
        "buffer_pool",
        "bulk_loading",
        "mobility_models",
    }


def test_mobility_model_robustness(all_results):
    """The paper's premise check: CT wins with dwells, degrades gracefully
    (stays within 2x of lazy) when movement never settles."""
    rows = {row["model"]: row for row in all_results["mobility_models"].rows}
    assert rows["city"]["CT lazy %"] > 50.0
    adversarial = rows["gauss_markov"]
    assert adversarial["CT-R-tree I/O"] < 2.0 * adversarial["lazy-R-tree I/O"]


def test_secondary_index_buys_cheap_updates(all_results):
    rows = {row["index"]: row for row in all_results["secondary_index"].rows}
    assert rows["lazy-R-tree"]["update I/O"] < 0.7 * rows["R-tree"]["update I/O"]


def test_merge_phases_reduce_region_count(all_results):
    phase1, full = all_results["merge_phases"].rows
    assert full["qs-regions"] < phase1["qs-regions"]


def test_t_list_has_bounded_effect(all_results):
    series = [row["total I/O"] for row in all_results["t_list"].rows]
    assert max(series) < 1.5 * min(series)


def test_split_policies_all_viable(all_results):
    series = [row["total I/O"] for row in all_results["split_policy"].rows]
    assert max(series) < 1.5 * min(series)


def test_buffer_pool_preserves_ct_advantage_direction(all_results):
    rows = all_results["buffer_pool"].rows
    cached = {row["index"]: row for row in rows if row["cache"] == "LRU"}
    uncached = {row["index"]: row for row in rows if row["cache"] == "none"}
    for index in cached:
        assert cached[index]["total I/O"] <= uncached[index]["total I/O"]
        assert cached[index]["hit rate"] > 0.2


def test_bulk_loading_cheaper_than_insertion(all_results):
    rows = {row["method"]: row for row in all_results["bulk_loading"].rows}
    assert rows["STR packing"]["build I/O"] < 0.5 * rows["repeated insertion"]["build I/O"]
