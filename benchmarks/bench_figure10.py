"""Figure 10: total I/O vs query size at the baseline update-heavy mix.

Shape assertion: under the Table-1 ratio (100 updates per query) the hash
-indexed structures are all close, and the CT-R-tree's query handicap stays
bounded -- the paper's point is that update savings dominate at this mix.
The decisive CT win requires the paper's population density; the trend is
checked in bench_figure11.
"""

import pytest

from repro.experiments import figure10
from repro.workload.driver import IndexKind
from benchmarks.conftest import save_result


@pytest.fixture(scope="module")
def result(bench_scale):
    return figure10.run(bench_scale)


def test_figure10_sweep(benchmark, result, bench_scale):
    save_result("figure10", result.to_table())
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(result.rows) == 5


def test_figure10_totals_dominated_by_updates(result):
    """Growing the query size 20x must barely move the totals at ratio 100
    (updates dominate) -- within 25% for every index."""
    for kind in (IndexKind.LAZY, IndexKind.ALPHA, IndexKind.CT):
        label = IndexKind.LABELS[kind]
        series = [row[label] for row in result.rows]
        assert max(series) < 1.25 * min(series)


def test_figure10_ct_competitive_across_sizes(result, bench_scale):
    """The CT-R-tree must stay within a small factor of the best structure
    at every query size (it wins outright at paper density; at smoke-sized
    populations a quarter of the objects live in buffers, widening the gap)."""
    factor = 1.8 if bench_scale == "smoke" else 1.3
    for row in result.rows:
        best = min(
            row[IndexKind.LABELS[k]]
            for k in (IndexKind.LAZY, IndexKind.ALPHA, IndexKind.CT)
        )
        assert row[IndexKind.LABELS[IndexKind.CT]] <= factor * best
