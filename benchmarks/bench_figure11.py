"""Figure 11: scalability -- total I/O vs number of objects.

Shape assertions: both indexes' totals grow with N, and the lazy-R-tree/CT
gap does not shrink as the population grows (the paper observes it widening:
denser leaves split more; qs-regions never split)."""

import pytest

from repro.experiments import figure11
from repro.workload.driver import IndexKind
from benchmarks.conftest import save_result


@pytest.fixture(scope="module")
def result(bench_scale):
    return figure11.run(bench_scale)


def test_figure11_sweep(benchmark, result):
    save_result("figure11", result.to_table())
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(result.rows) == 5


def test_figure11_totals_grow_with_population(result):
    for kind in (IndexKind.LAZY, IndexKind.CT):
        label = IndexKind.LABELS[kind]
        series = [row[label] for row in result.rows]
        assert series == sorted(series)
        assert series[-1] > 2 * series[0]


def test_figure11_gap_does_not_shrink(result):
    gaps = [row["gap (lazy/CT)"] for row in result.rows]
    # Densification helps CT: the last point's gap must be at least the
    # first point's (within 10% measurement noise).
    assert gaps[-1] >= 0.9 * gaps[0]
