"""Figure 13 (Appendix A): changed traffic patterns, adaptation on/off.

Shape assertion: with Appendix A's qs-region detection enabled the CT-R-tree
must never be much worse than the frozen index, and at the update-heavy end
-- where stranded objects thrash through the static tree's linked lists --
it must win.  Adaptation needs stray *volume* to act on, so the decisive gap
appears from ``small`` scale up; at ``smoke`` the two variants end up close
and only the never-much-worse bound is checked.
"""

import pytest

from repro.experiments import figure13
from benchmarks.conftest import save_result


@pytest.fixture(scope="module")
def result(bench_scale):
    return figure13.run(bench_scale)


def test_figure13_sweep(benchmark, result):
    save_result("figure13", result.to_table())
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(result.rows) == 4


def test_figure13_adaptation_never_much_worse(result):
    for row in result.rows:
        assert row["new qs-regions"] <= 1.15 * row["unchanged qs-regions"]


def test_figure13_adaptation_wins_when_it_can_act(result, bench_scale):
    if bench_scale == "smoke":
        pytest.skip("a 5-building change at smoke scale strands too few objects")
    high = result.rows[-1]
    assert high["new qs-regions"] < high["unchanged qs-regions"]
    assert high["promotions"] >= 1
