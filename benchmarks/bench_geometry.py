#!/usr/bin/env python
"""Geometry micro-benchmark: the Rect hot-path kernels.

Times the four predicates every R-tree descent funnels through --
``intersects``, ``union``, ``enlargement``, ``contains_point`` -- both
through the :class:`~repro.core.geometry.Rect` methods and through the
flat-tuple kernels the descent loops use (``rect_intersects`` & co.), over
a fixed-seed pair set.  The kernel and method paths perform identical
floating-point operations, so this also cross-checks that the fast paths
agree bit-for-bit with the objects they replace.

Importable: :func:`run_geometry_bench` returns the result dict that
``bench_regression.py`` embeds under the ``geometry`` key of
``BENCH_driver.json``.  Wall clocks are hardware-dependent and exist for
trend-watching; only the agreement checks are asserted.

Usage::

    PYTHONPATH=src python benchmarks/bench_geometry.py [--pairs 4096]
        [--repeat 5] [--out geometry.json]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.geometry import (  # noqa: E402
    Rect,
    rect_contains_point,
    rect_enlargement,
    rect_intersects,
)

DOMAIN = 1000.0


def make_pairs(
    n_pairs: int, seed: int = 0
) -> List[Tuple[Rect, Rect, Tuple[float, float]]]:
    """Fixed-seed (rect, rect, point) triples spanning hits and misses."""
    rng = random.Random(seed)
    out = []
    for _ in range(n_pairs):
        ax = rng.uniform(0.0, DOMAIN - 60.0)
        ay = rng.uniform(0.0, DOMAIN - 60.0)
        a = Rect((ax, ay), (ax + rng.uniform(1.0, 60.0), ay + rng.uniform(1.0, 60.0)))
        # Half the partners land near a (overlap likely), half anywhere.
        if rng.random() < 0.5:
            bx = ax + rng.uniform(-40.0, 40.0)
            by = ay + rng.uniform(-40.0, 40.0)
        else:
            bx = rng.uniform(0.0, DOMAIN - 60.0)
            by = rng.uniform(0.0, DOMAIN - 60.0)
        bx = max(0.0, bx)
        by = max(0.0, by)
        b = Rect((bx, by), (bx + rng.uniform(1.0, 60.0), by + rng.uniform(1.0, 60.0)))
        point = (rng.uniform(0.0, DOMAIN), rng.uniform(0.0, DOMAIN))
        out.append((a, b, point))
    return out


def _best_of(fn: Callable[[], int], repeat: int) -> Tuple[float, int]:
    """(best wall-clock seconds, ops per pass) over ``repeat`` passes."""
    best = float("inf")
    ops = 0
    for _ in range(repeat):
        t0 = perf_counter()
        ops = fn()
        elapsed = perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, ops


def run_geometry_bench(n_pairs: int = 4096, repeat: int = 5) -> Dict[str, object]:
    """Time the hot-path predicates; returns the bench-JSON ``geometry`` dict."""
    pairs = make_pairs(n_pairs)

    def method_intersects() -> int:
        count = 0
        for a, b, _ in pairs:
            if a.intersects(b):
                count += 1
        return len(pairs)

    def kernel_intersects() -> int:
        fast = rect_intersects
        count = 0
        for a, b, _ in pairs:
            if fast(a.lo, a.hi, b.lo, b.hi):
                count += 1
        return len(pairs)

    def method_contains() -> int:
        count = 0
        for a, _, point in pairs:
            if a.contains_point(point):
                count += 1
        return len(pairs)

    def kernel_contains() -> int:
        fast = rect_contains_point
        count = 0
        for a, _, point in pairs:
            if fast(a.lo, a.hi, point):
                count += 1
        return len(pairs)

    def method_union() -> int:
        for a, b, _ in pairs:
            a.union(b)
        return len(pairs)

    def method_enlargement() -> int:
        for a, b, _ in pairs:
            a.enlargement(b)
        return len(pairs)

    def kernel_enlargement() -> int:
        fast = rect_enlargement
        for a, b, _ in pairs:
            fast(a.lo, a.hi, b.lo, b.hi, a.area)
        return len(pairs)

    timed: Dict[str, Dict[str, Callable[[], int]]] = {
        "intersects": {"method": method_intersects, "kernel": kernel_intersects},
        "contains_point": {"method": method_contains, "kernel": kernel_contains},
        "union": {"method": method_union},
        "enlargement": {"method": method_enlargement, "kernel": kernel_enlargement},
    }
    result: Dict[str, object] = {"n_pairs": n_pairs, "repeat": repeat, "ops": {}}
    ops_out: Dict[str, Dict[str, float]] = {}
    for name, variants in timed.items():
        entry: Dict[str, float] = {}
        for variant, fn in variants.items():
            seconds, ops = _best_of(fn, repeat)
            entry[f"{variant}_ns_per_op"] = seconds / ops * 1e9
        ops_out[name] = entry
    result["ops"] = ops_out
    return result


# -- agreement checks (run in the tier-1 suite; timings are not asserted) --


def test_kernels_agree_with_methods() -> None:
    pairs = make_pairs(512, seed=7)
    for a, b, point in pairs:
        assert rect_intersects(a.lo, a.hi, b.lo, b.hi) == a.intersects(b)
        assert rect_contains_point(a.lo, a.hi, point) == a.contains_point(point)
        assert rect_enlargement(a.lo, a.hi, b.lo, b.hi, a.area) == a.enlargement(b)
        union = a.union(b)
        assert union.lo == tuple(min(x, y) for x, y in zip(a.lo, b.lo))
        assert union.hi == tuple(max(x, y) for x, y in zip(a.hi, b.hi))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=4096)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--out", default=None, metavar="JSON")
    args = parser.parse_args(argv)

    result = run_geometry_bench(args.pairs, args.repeat)
    for name, entry in result["ops"].items():
        parts = ", ".join(f"{k[:-10]} {v:8.1f} ns/op" for k, v in entry.items())
        print(f"  {name:<15} {parts}")
    if args.out:
        Path(args.out).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
