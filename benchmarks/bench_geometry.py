#!/usr/bin/env python
"""Geometry micro-benchmark: the Rect hot-path kernels.

Times the four predicates every R-tree descent funnels through --
``intersects``, ``union``, ``enlargement``, ``contains_point`` -- both
through the :class:`~repro.core.geometry.Rect` methods and through the
flat-tuple kernels the descent loops use (``rect_intersects`` & co.), over
a fixed-seed pair set.  The kernel and method paths perform identical
floating-point operations, so this also cross-checks that the fast paths
agree bit-for-bit with the objects they replace.

PR 7 adds two sections:

* **node scans** (:func:`run_node_scan_bench`): whole-node intersect-all
  and choose-subtree over the struct-of-arrays layout
  (:class:`~repro.rtree.node.SoAEntries`) versus the object layout
  (:class:`~repro.rtree.node.ObjectEntries`), at fanout-scale and
  vectorized-scale node sizes.  Results are asserted identical per query
  before anything is timed.
* **dispatch RTT** (:func:`run_dispatch_bench`): per-``("ping", token)``
  round-trip through real shard workers in thread mode, process mode over
  the pipe transport, and process mode over the shared-memory mailbox.

Importable: :func:`run_geometry_bench` & co. return the result dicts that
``bench_regression.py`` embeds under the ``geometry`` / ``soa`` keys of
``BENCH_driver.json``.  Wall clocks are hardware-dependent and exist for
trend-watching; only the agreement checks are asserted.

Usage::

    PYTHONPATH=src python benchmarks/bench_geometry.py [--pairs 4096]
        [--repeat 5] [--pings 200] [--skip-dispatch] [--out geometry.json]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.geometry import (  # noqa: E402
    Rect,
    rect_contains_point,
    rect_enlargement,
    rect_intersects,
)

DOMAIN = 1000.0


def make_pairs(
    n_pairs: int, seed: int = 0
) -> List[Tuple[Rect, Rect, Tuple[float, float]]]:
    """Fixed-seed (rect, rect, point) triples spanning hits and misses."""
    rng = random.Random(seed)
    out = []
    for _ in range(n_pairs):
        ax = rng.uniform(0.0, DOMAIN - 60.0)
        ay = rng.uniform(0.0, DOMAIN - 60.0)
        a = Rect((ax, ay), (ax + rng.uniform(1.0, 60.0), ay + rng.uniform(1.0, 60.0)))
        # Half the partners land near a (overlap likely), half anywhere.
        if rng.random() < 0.5:
            bx = ax + rng.uniform(-40.0, 40.0)
            by = ay + rng.uniform(-40.0, 40.0)
        else:
            bx = rng.uniform(0.0, DOMAIN - 60.0)
            by = rng.uniform(0.0, DOMAIN - 60.0)
        bx = max(0.0, bx)
        by = max(0.0, by)
        b = Rect((bx, by), (bx + rng.uniform(1.0, 60.0), by + rng.uniform(1.0, 60.0)))
        point = (rng.uniform(0.0, DOMAIN), rng.uniform(0.0, DOMAIN))
        out.append((a, b, point))
    return out


def _best_of(fn: Callable[[], int], repeat: int) -> Tuple[float, int]:
    """(best wall-clock seconds, ops per pass) over ``repeat`` passes."""
    best = float("inf")
    ops = 0
    for _ in range(repeat):
        t0 = perf_counter()
        ops = fn()
        elapsed = perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, ops


def run_geometry_bench(n_pairs: int = 4096, repeat: int = 5) -> Dict[str, object]:
    """Time the hot-path predicates; returns the bench-JSON ``geometry`` dict."""
    pairs = make_pairs(n_pairs)

    def method_intersects() -> int:
        count = 0
        for a, b, _ in pairs:
            if a.intersects(b):
                count += 1
        return len(pairs)

    def kernel_intersects() -> int:
        fast = rect_intersects
        count = 0
        for a, b, _ in pairs:
            if fast(a.lo, a.hi, b.lo, b.hi):
                count += 1
        return len(pairs)

    def method_contains() -> int:
        count = 0
        for a, _, point in pairs:
            if a.contains_point(point):
                count += 1
        return len(pairs)

    def kernel_contains() -> int:
        fast = rect_contains_point
        count = 0
        for a, _, point in pairs:
            if fast(a.lo, a.hi, point):
                count += 1
        return len(pairs)

    def method_union() -> int:
        for a, b, _ in pairs:
            a.union(b)
        return len(pairs)

    def method_enlargement() -> int:
        for a, b, _ in pairs:
            a.enlargement(b)
        return len(pairs)

    def kernel_enlargement() -> int:
        fast = rect_enlargement
        for a, b, _ in pairs:
            fast(a.lo, a.hi, b.lo, b.hi, a.area)
        return len(pairs)

    timed: Dict[str, Dict[str, Callable[[], int]]] = {
        "intersects": {"method": method_intersects, "kernel": kernel_intersects},
        "contains_point": {"method": method_contains, "kernel": kernel_contains},
        "union": {"method": method_union},
        "enlargement": {"method": method_enlargement, "kernel": kernel_enlargement},
    }
    result: Dict[str, object] = {"n_pairs": n_pairs, "repeat": repeat, "ops": {}}
    ops_out: Dict[str, Dict[str, float]] = {}
    for name, variants in timed.items():
        entry: Dict[str, float] = {}
        for variant, fn in variants.items():
            seconds, ops = _best_of(fn, repeat)
            entry[f"{variant}_ns_per_op"] = seconds / ops * 1e9
        ops_out[name] = entry
    result["ops"] = ops_out
    return result


# -- PR 7: whole-node scan micro-bench (SoA vs object layout) --------------


def _make_node(n: int, seed: int):
    """Identical entry data packed into both layouts, plus probe rects."""
    from repro.rtree.node import Entry, ObjectEntries, SoAEntries

    rng = random.Random(seed)
    soa = SoAEntries()
    obj = ObjectEntries()
    for child in range(n):
        x = rng.uniform(0.0, DOMAIN - 80.0)
        y = rng.uniform(0.0, DOMAIN - 80.0)
        rect = Rect(
            (x, y),
            (x + rng.uniform(1.0, 80.0), y + rng.uniform(1.0, 80.0)),
        )
        soa.append(Entry(rect, child))
        obj.append(Entry(rect, child))
    queries = []
    for _ in range(64):
        qx = rng.uniform(0.0, DOMAIN - 120.0)
        qy = rng.uniform(0.0, DOMAIN - 120.0)
        queries.append(
            Rect(
                (qx, qy),
                (qx + rng.uniform(5.0, 120.0), qy + rng.uniform(5.0, 120.0)),
            )
        )
    return soa, obj, queries


def run_node_scan_bench(
    sizes: Tuple[int, ...] = (20, 256), repeat: int = 5, seed: int = 11
) -> Dict[str, object]:
    """Whole-node scans, SoA vs object layout; asserts identical results.

    ``n=20`` is real fanout (the pure-Python scan path), ``n=256`` is the
    vectorized regime the ≥3x CI gate watches.  ``vectorized`` records
    whether numpy backs the large-size scans -- without it the wall-clock
    gates are meaningless (the fallback is a plain loop) and CI skips them.
    """
    from repro.core.geometry import NP_SCAN_MIN, _np

    out: Dict[str, object] = {
        "repeat": repeat,
        "vectorized": _np is not None and max(sizes) >= NP_SCAN_MIN,
        "sizes": {},
    }
    for n in sizes:
        soa, obj, queries = _make_node(n, seed)
        # Agreement first: a wrong scan must never be timed.
        for q in queries:
            if soa.intersecting_indices(q.lo, q.hi) != obj.intersecting_indices(
                q.lo, q.hi
            ):
                raise AssertionError(f"intersect-all disagrees at n={n}")
            if soa.choose_subtree(q.lo, q.hi) != obj.choose_subtree(q.lo, q.hi):
                raise AssertionError(f"choose-subtree disagrees at n={n}")

        def soa_intersect() -> int:
            scan = soa.intersecting_indices
            for q in queries:
                scan(q.lo, q.hi)
            return len(queries)

        def obj_intersect() -> int:
            scan = obj.intersecting_indices
            for q in queries:
                scan(q.lo, q.hi)
            return len(queries)

        def soa_choose() -> int:
            choose = soa.choose_subtree
            for q in queries:
                choose(q.lo, q.hi)
            return len(queries)

        def obj_choose() -> int:
            choose = obj.choose_subtree
            for q in queries:
                choose(q.lo, q.hi)
            return len(queries)

        entry: Dict[str, object] = {"agree": True}
        for name, soa_fn, obj_fn in (
            ("intersect_all", soa_intersect, obj_intersect),
            ("choose_subtree", soa_choose, obj_choose),
        ):
            soa_s, ops = _best_of(soa_fn, repeat)
            obj_s, _ = _best_of(obj_fn, repeat)
            entry[name] = {
                "soa_ns_per_scan": soa_s / ops * 1e9,
                "object_ns_per_scan": obj_s / ops * 1e9,
                "speedup": obj_s / soa_s if soa_s > 0 else float("inf"),
            }
        out["sizes"][str(n)] = entry
    return out


# -- PR 10: NP_SCAN_MIN crossover sweep ------------------------------------


def run_scan_crossover_sweep(
    sizes: Tuple[int, ...] = (8, 16, 24, 32, 48, 64, 96, 128, 192, 256),
    repeat: int = 7,
    seed: int = 23,
) -> Dict[str, object]:
    """Where does the numpy scan engine overtake the pure-Python loop?

    Times ``node_intersecting_indices`` twice per node size -- once with
    the numpy path forced (``NP_SCAN_MIN`` pinned to 1) and once with the
    scalar loop forced (pinned past every size) -- and reports the
    smallest size where the numpy path wins.  The shipped ``NP_SCAN_MIN``
    should sit at or just above that crossover; DESIGN.md section 12
    records the measured value per host class.
    """
    import repro.core.geometry as geometry

    out: Dict[str, object] = {
        "current_threshold": geometry.NP_SCAN_MIN,
        "numpy_available": geometry._np is not None,
        "repeat": repeat,
        "sizes": {},
        "measured_crossover": None,
    }
    if geometry._np is None:
        return out
    rng = random.Random(seed)
    saved = geometry.NP_SCAN_MIN
    crossover = None
    try:
        for n in sizes:
            from array import array

            los = (array("d"), array("d"))
            his = (array("d"), array("d"))
            for _ in range(n):
                x = rng.uniform(0.0, DOMAIN - 80.0)
                y = rng.uniform(0.0, DOMAIN - 80.0)
                los[0].append(x)
                los[1].append(y)
                his[0].append(x + rng.uniform(1.0, 80.0))
                his[1].append(y + rng.uniform(1.0, 80.0))
            queries = []
            for _ in range(256):
                qx = rng.uniform(0.0, DOMAIN - 120.0)
                qy = rng.uniform(0.0, DOMAIN - 120.0)
                queries.append(
                    (
                        (qx, qy),
                        (qx + rng.uniform(5.0, 120.0), qy + rng.uniform(5.0, 120.0)),
                    )
                )

            def scan_all() -> int:
                scan = geometry.node_intersecting_indices
                for qlo, qhi in queries:
                    scan(los, his, qlo, qhi)
                return len(queries)

            geometry.NP_SCAN_MIN = 1  # force the numpy engine
            np_s, ops = _best_of(scan_all, repeat)
            geometry.NP_SCAN_MIN = max(sizes) + 1  # force the scalar loop
            py_s, _ = _best_of(scan_all, repeat)
            out["sizes"][str(n)] = {
                "numpy_ns_per_scan": np_s / ops * 1e9,
                "python_ns_per_scan": py_s / ops * 1e9,
                "numpy_wins": np_s < py_s,
            }
            if crossover is None and np_s < py_s:
                crossover = n
    finally:
        geometry.NP_SCAN_MIN = saved
    out["measured_crossover"] = crossover
    return out


# -- PR 7: worker dispatch round-trip (thread / pipe / shm) ----------------


def run_dispatch_bench(n_pings: int = 200, warmup: int = 20) -> Dict[str, object]:
    """Per-ping RTT through real shard workers, one per transport.

    Modes that cannot run on the host (no fork, no /dev/shm) record
    ``None`` with a reason instead of failing the bench.
    """
    import multiprocessing as mp
    import statistics

    from repro.engine.registry import IndexOptions
    from repro.parallel.shm import shm_available
    from repro.parallel.workers import ProcessWorker, ThreadWorker

    region = Rect((0.0, 0.0), (DOMAIN, DOMAIN))
    options = IndexOptions(max_entries=20)

    def time_worker(worker) -> Dict[str, float]:
        try:
            ready = worker.result()
            assert ready.get("ok"), ready
            for i in range(warmup):
                worker.submit(("ping", i))
                worker.result()
            samples = []
            for i in range(n_pings):
                t0 = perf_counter()
                worker.submit(("ping", i))
                resp = worker.result()
                samples.append(perf_counter() - t0)
                assert resp["ok"] and resp["pong"] == i
            return {
                "median_us": statistics.median(samples) * 1e6,
                "mean_us": statistics.fmean(samples) * 1e6,
                "p90_us": sorted(samples)[int(len(samples) * 0.9)] * 1e6,
            }
        finally:
            worker.close()

    out: Dict[str, object] = {"n_pings": n_pings, "modes": {}}
    out["modes"]["thread"] = time_worker(
        ThreadWorker("rtree", 0, region, options)
    )
    out["modes"]["process_pipe"] = time_worker(
        ProcessWorker("rtree", 0, region, options, transport="pipe")
    )
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    if shm_available(mp.get_context(method)):
        out["modes"]["process_shm"] = time_worker(
            ProcessWorker("rtree", 0, region, options, transport="shm")
        )
    else:
        out["modes"]["process_shm"] = None
        out["shm_unavailable_reason"] = (
            "needs fork start method and a writable /dev/shm"
        )
    return out


# -- agreement checks (run in the tier-1 suite; timings are not asserted) --


def test_node_scans_agree_with_object_layout() -> None:
    for n in (0, 1, 7, 20, 64, 200):
        soa, obj, queries = _make_node(n, seed=n + 40)
        for q in queries:
            assert soa.intersecting_indices(q.lo, q.hi) == obj.intersecting_indices(
                q.lo, q.hi
            )
            assert soa.choose_subtree(q.lo, q.hi) == obj.choose_subtree(q.lo, q.hi)
            assert soa.containing_point_indices(q.lo) == obj.containing_point_indices(
                q.lo
            )
        assert soa.union_rect() == obj.union_rect()


def test_kernels_agree_with_methods() -> None:
    pairs = make_pairs(512, seed=7)
    for a, b, point in pairs:
        assert rect_intersects(a.lo, a.hi, b.lo, b.hi) == a.intersects(b)
        assert rect_contains_point(a.lo, a.hi, point) == a.contains_point(point)
        assert rect_enlargement(a.lo, a.hi, b.lo, b.hi, a.area) == a.enlargement(b)
        union = a.union(b)
        assert union.lo == tuple(min(x, y) for x, y in zip(a.lo, b.lo))
        assert union.hi == tuple(max(x, y) for x, y in zip(a.hi, b.hi))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=4096)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--pings", type=int, default=200)
    parser.add_argument(
        "--skip-dispatch", action="store_true",
        help="skip the worker round-trip section (spawns processes)",
    )
    parser.add_argument("--out", default=None, metavar="JSON")
    args = parser.parse_args(argv)

    result = run_geometry_bench(args.pairs, args.repeat)
    for name, entry in result["ops"].items():
        parts = ", ".join(f"{k[:-10]} {v:8.1f} ns/op" for k, v in entry.items())
        print(f"  {name:<15} {parts}")

    node_scan = run_node_scan_bench(repeat=args.repeat)
    result["node_scan"] = node_scan
    for n, entry in node_scan["sizes"].items():
        for op in ("intersect_all", "choose_subtree"):
            row = entry[op]
            print(
                f"  node[{n:>3}] {op:<15} soa {row['soa_ns_per_scan']:8.1f} "
                f"object {row['object_ns_per_scan']:8.1f} ns/scan "
                f"({row['speedup']:.2f}x)"
            )

    crossover = run_scan_crossover_sweep(repeat=args.repeat)
    result["scan_crossover"] = crossover
    if crossover["numpy_available"]:
        for n, row in crossover["sizes"].items():
            marker = "np" if row["numpy_wins"] else "py"
            print(
                f"  scan[{n:>3}] numpy {row['numpy_ns_per_scan']:8.1f} "
                f"python {row['python_ns_per_scan']:8.1f} ns/scan  <- {marker}"
            )
        print(
            f"  crossover: numpy wins from n={crossover['measured_crossover']} "
            f"(shipped NP_SCAN_MIN={crossover['current_threshold']})"
        )
    else:
        print("  scan crossover: numpy unavailable, sweep skipped")

    if not args.skip_dispatch:
        dispatch = run_dispatch_bench(n_pings=args.pings)
        result["dispatch"] = dispatch
        for mode, row in dispatch["modes"].items():
            if row is None:
                print(f"  rtt[{mode}] unavailable")
            else:
                print(
                    f"  rtt[{mode:<12}] median {row['median_us']:7.1f} us  "
                    f"p90 {row['p90_us']:7.1f} us"
                )

    if args.out:
        Path(args.out).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
