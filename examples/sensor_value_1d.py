"""Change-tolerant indexing in one dimension (paper Section 6, future work).

A value index over a single scalar -- here, temperature -- under a firehose
of readings. Three structures race:

* a paged **B+-tree**: every reading is a delete + re-insert;
* a **lazy B+-tree**: the paper's Figure-1 hash index transplanted to 1-D;
* a **1-D CT index**: the CT-R-tree itself (the pipeline is
  dimension-agnostic), whose Phase 1 mines quasi-static *intervals* --
  operating ranges -- from each sensor's reading history.

The 1-D case sharpens the paper's density argument: hundreds of sensors
share a few operating regimes, so B+-leaf intervals are razor-thin and even
lazy updates cross separators constantly; the mined intervals tolerate all
the drift.

Run:  python examples/sensor_value_1d.py
"""

import random

from repro import BPlusTree, CTParams, CTRTreeBuilder, LazyBPlusTree, Pager, Rect
from repro.storage import IOCategory

N_SENSORS = 250
N_HISTORY, N_ONLINE = 110, 50
REGIMES = (5.0, 15.0, 25.0, 35.0)
DOMAIN = Rect((-20.0,), (60.0,))


def simulate(seed=1):
    rng = random.Random(seed)
    trails = {}
    for sid in range(N_SENSORS):
        regime = rng.choice(REGIMES)
        value, t, trail = regime, 0.0, []
        for _ in range(N_HISTORY + N_ONLINE):
            t += 20.0
            if rng.random() < 0.01:  # a front moves through
                regime = rng.choice(REGIMES)
                value = regime
            value += rng.gauss(0, 0.05) + 0.05 * (regime - value)
            trail.append(((value,), t))
        trails[sid] = trail
    return trails


def main():
    trails = simulate()
    histories = {sid: trail[:N_HISTORY] for sid, trail in trails.items()}
    current = {sid: trail[N_HISTORY - 1][0] for sid, trail in trails.items()}
    online = sorted(
        (t, sid, point)
        for sid, trail in trails.items()
        for point, t in trail[N_HISTORY:]
    )
    print(f"{N_SENSORS} sensors, {len(online):,} online readings\n")

    rows = []

    for name, make in (("B+-tree", BPlusTree), ("lazy B+-tree", LazyBPlusTree)):
        pager = Pager()
        tree = make(pager)
        values = {}
        with pager.stats.category(IOCategory.BUILD):
            for sid, (value,) in current.items():
                tree.insert(sid, value)
                values[sid] = value
        with pager.stats.category(IOCategory.UPDATE):
            for _t, sid, (value,) in online:
                tree.update(sid, values[sid], value)
                values[sid] = value
        rows.append((name, pager.stats.total(IOCategory.UPDATE),
                     getattr(tree, "lazy_hits", None)))

    pager = Pager()
    params = CTParams(t_dist=2.0, t_rate=0.05, t_time=300.0, t_area=4.0)
    ct, report = CTRTreeBuilder(params, query_rate=0.1).build(
        pager, DOMAIN, histories, current
    )
    positions = dict(current)
    with pager.stats.category(IOCategory.UPDATE):
        for t, sid, point in online:
            ct.update(sid, positions[sid], point, now=t)
            positions[sid] = point
    rows.append(("CT (1-D)", pager.stats.total(IOCategory.UPDATE), ct.lazy_hits))
    print(f"CT pipeline mined {report.phase3_regions} operating intervals "
          f"(from {report.phase1_regions} raw dwells)\n")

    print(f"{'index':<14} {'update I/O':>12} {'in-place %':>11}")
    print("-" * 39)
    for name, ios, lazy in rows:
        pct = f"{100 * lazy / len(online):.0f}%" if lazy is not None else "-"
        print(f"{name:<14} {ios:>12,} {pct:>11}")

    # The structures agree on value queries.
    band = sorted(oid for oid, _ in ct.range_search(Rect((14.0,), (16.0,))))
    print(f"\nsensors currently reading 14-16 degC: {len(band)}")
    assert ct.validate() == []


if __name__ == "__main__":
    main()
