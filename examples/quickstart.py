"""Quickstart: build a CT-R-tree from update history and use it.

The sixty-second tour of the public API:

1. collect per-object location trails (here: a tiny synthetic commuter
   pattern -- home, office, and the road between them);
2. run the CT-R-tree builder, which mines quasi-static regions from the
   trails (paper Figure 3), merges them by resident density and inter-region
   traffic (Figures 4-5, Equation 6), and assembles the index;
3. use the index: constant-I/O in-region updates, range queries, deletes --
   while the I/O ledger shows what each phase cost.

Run:  python examples/quickstart.py
"""

import random

from repro import CTParams, CTRTreeBuilder, Pager, Rect


def commuter_trail(rng, home, office, reports_per_dwell=40, interval=20.0):
    """One object's day: jitter at home, drive to the office, jitter there."""
    trail = []
    t = 0.0
    for leg, (cx, cy) in enumerate((home, office)):
        if leg:  # a fast hop between the dwells, sampled mid-flight
            t += interval
            trail.append((((home[0] + office[0]) / 2, (home[1] + office[1]) / 2), t))
        for _ in range(reports_per_dwell):
            t += interval
            trail.append(((cx + rng.gauss(0, 2), cy + rng.gauss(0, 2)), t))
    return trail


def main():
    rng = random.Random(7)
    domain = Rect((0, 0), (1000, 1000))

    # -- 1. history: 50 commuters between a few homes and offices ----------
    homes = [(150, 150), (150, 850), (850, 150)]
    offices = [(500, 500), (850, 850)]
    histories = {
        oid: commuter_trail(rng, rng.choice(homes), rng.choice(offices))
        for oid in range(50)
    }
    current = {oid: trail[-1][0] for oid, trail in histories.items()}

    # -- 2. build ------------------------------------------------------------
    pager = Pager()  # the paged store; every page touch is counted
    builder = CTRTreeBuilder(CTParams(), query_rate=1.0)
    tree, report = builder.build(pager, domain, histories, current)
    print(f"built: {tree}")
    print(
        f"mining: {report.phase1_regions} raw regions -> "
        f"{report.phase3_regions} qs-regions "
        f"({report.build_ios} build I/Os)"
    )

    # -- 3. use ---------------------------------------------------------------
    # An in-region move costs 3 page I/Os: hash read, page read, page write.
    before = (pager.stats.reads(), pager.stats.writes())
    oid = 0
    x, y = current[oid]
    tree.update(oid, (x, y), (x + 1.0, y + 1.0))
    after = (pager.stats.reads(), pager.stats.writes())
    print(
        f"in-region update: {after[0] - before[0]} reads, "
        f"{after[1] - before[1]} writes (lazy hits so far: {tree.lazy_hits})"
    )

    # A cross-region move relocates the object.
    tree.update(oid, (x + 1.0, y + 1.0), (999.0, 5.0))
    print(f"after a long move: relocations={tree.relocations}")

    # Range queries work like any R-tree.
    near_center = tree.range_search(Rect((450, 450), (550, 550)))
    print(f"objects near the office block: {sorted(o for o, _ in near_center)[:10]}")

    tree.delete(oid)
    print(f"after delete: {len(tree)} objects, index still valid: {tree.validate() == []}")

    print(f"\nI/O ledger: {pager.stats}")


if __name__ == "__main__":
    main()
