"""Adapting to changing traffic patterns (paper Appendix A / Figure 13).

The CT-R-tree's skeleton is mined from history; what happens when the city
changes?  This example demolishes five buildings and erects five new ones,
keeps the old index, and watches Appendix A's machinery react:

* stray objects pile into node overflow buffers (linked lists);
* busy lists convert to alpha-R-trees;
* alpha-R-tree leaves that behave like qs-regions (enough objects, small
  area, stable for T_buf_time) are *promoted* into the structural tree;
* churning qs-regions can be retired.

Two trees replay the same post-change stream: one frozen, one adaptive.

Run:  python examples/adaptive_patterns.py
"""

from repro.citysim import City, CitySimulator
from repro.core.builder import CTRTreeBuilder
from repro.core.params import CTParams, SimulationParams
from repro.storage import Pager
from repro.workload import SimulationDriver, UpdateStream


def main():
    n_objects = 1200
    params = SimulationParams(
        n_objects=n_objects,
        update_rate=n_objects / 20.0,
        n_history=110,
        n_updates=20,
        n_warmup_max=40,
    )

    # -- before: learn the original city ------------------------------------
    city = City.generate(seed=7, n_buildings=71)
    simulator = CitySimulator(city, params, seed=8)
    history_trace = simulator.run(n_samples=params.n_history)
    print(f"learned {city}")

    # -- the change: 5 buildings demolished, 5 erected ----------------------
    new_city = city.with_changes(remove=5, add=5, seed=9)
    simulator.continue_in(new_city)
    online_trace = simulator.run(n_samples=params.n_updates * 6, warm_up=False)
    print("city changed: 5 buildings demolished, 5 new ones erected\n")

    histories = history_trace.histories(params.n_history)
    current = history_trace.current_positions(params.n_history)

    ct_params = CTParams(t_list=1, t_buf_num=10, t_buf_time=300.0, t_remove=0.5)
    for adaptive in (False, True):
        pager = Pager()
        builder = CTRTreeBuilder(ct_params, query_rate=1.0, adaptive=adaptive)
        tree, _report = builder.build(pager, city.bounds, histories)
        driver = SimulationDriver(tree, pager, "adaptive" if adaptive else "frozen")
        driver.load(current)
        result = driver.run(UpdateStream(online_trace, 0), [])
        label = "adaptive (Appendix A on)" if adaptive else "frozen   (no adaptation)"
        print(
            f"{label}: {result.update_ios:>9,} update I/Os | "
            f"regions {tree.region_count:>3} | "
            f"buffered objects {tree.buffered_object_count():>4} | "
            f"promotions {tree.adaptation.promotions}, "
            f"retirements {tree.adaptation.retirements}"
        )
        assert tree.validate() == []

    print(
        "\nThe adaptive tree discovers the new buildings as approximate "
        "qs-regions and pulls their residents out of the overflow buffers; "
        "the frozen tree keeps paying full relocations for every report "
        "they make."
    )


if __name__ == "__main__":
    main()
