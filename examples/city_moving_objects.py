"""Moving-object database over a simulated city (the paper's evaluation).

This is a miniature of Section 4: generate a city (71 buildings, road grid,
a park), simulate thousands of people dwelling and commuting, record their
location reports, then race the four index structures -- traditional R-tree,
lazy-R-tree, alpha-tree, CT-R-tree -- on the same update/query mix and
compare page I/Os.

Run:  python examples/city_moving_objects.py [n_objects]
"""

import sys

from repro.citysim import City, CitySimulator
from repro.core.params import SimulationParams
from repro.storage import Pager
from repro.workload import (
    IndexKind,
    QueryWorkload,
    SimulationDriver,
    UpdateStream,
    make_index,
)


def main(n_objects: int = 1000) -> None:
    # -- the city and its people -------------------------------------------
    city = City.generate(seed=42, n_buildings=71)
    print(city)
    params = SimulationParams(
        n_objects=n_objects,
        update_rate=n_objects / 20.0,  # every object reports every ~20 s
        n_history=110,
        n_updates=20,
        n_warmup_max=60,
    )
    simulator = CitySimulator(city, params, seed=43)
    trace = simulator.run()
    print(f"recorded {trace}: ground-level fraction {simulator.ground_fraction():.2f}")

    # -- the experiment protocol (Section 4.1) ------------------------------
    histories = trace.histories(params.n_history)
    current = trace.current_positions(params.n_history)
    updates = UpdateStream(trace, params.n_history)
    print(
        f"history: {params.n_history - 1} samples/object; "
        f"online: {len(updates)} updates at {updates.rate:.0f}/s"
    )

    # Queries at 1% of the update rate (the paper's baseline ratio of 100).
    query_rate = updates.rate / 100.0
    print(f"queries: Poisson at {query_rate:.2f}/s, each 0.1% of the city area\n")

    header = f"{'index':<12} {'update I/O':>12} {'query I/O':>10} {'total':>10} {'lazy %':>7}"
    print(header)
    print("-" * len(header))
    for kind in IndexKind.ALL:
        pager = Pager()
        index = make_index(
            kind, pager, city.bounds, histories=histories, query_rate=query_rate
        )
        driver = SimulationDriver(index, pager, kind)
        driver.load(current)
        queries = QueryWorkload(
            city.bounds, query_rate, params.query_size_fraction, seed=44
        ).between(*trace.online_span(params.n_history))
        result = driver.run(updates, queries)
        lazy_hits = getattr(index, "lazy_hits", None)
        lazy_pct = (
            f"{100 * lazy_hits / max(result.n_updates, 1):.0f}%" if lazy_hits is not None else "-"
        )
        print(
            f"{IndexKind.LABELS[kind]:<12} {result.update_ios:>12,} "
            f"{result.query_ios:>10,} {result.total_ios:>10,} {lazy_pct:>7}"
        )

    print(
        "\nThe hash-indexed structures absorb most reports as 3-I/O lazy "
        "updates; the traditional R-tree pays a search + delete + re-insert "
        "for every one.  The CT-R-tree trades a little query performance for "
        "update tolerance that survives density (see benchmarks/bench_figure11.py)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
