"""Sensor streams: change-tolerant indexing beyond moving objects.

The paper's introduction motivates qs-regions with sensor data too:
"Consider temperature and pressure sensors ... for most of the time the
variation in these parameters is not rapid.  However, during evenings or
during special events like thunderstorms, they can change rapidly.  They
finally settle around their new values."

Here each "object" is a sensor and its "location" is the point
(temperature, pressure).  Readings drift slowly around a per-site operating
point; occasionally a weather front sweeps a group of sensors to a new
operating point.  The CT-R-tree mines the operating points as qs-regions, so
the firehose of readings becomes mostly 3-I/O in-place updates, while range
queries ("which sensors currently read 20-25 degC and 990-1000 hPa?") still
work.

Run:  python examples/sensor_network.py
"""

import random

from repro import CTParams, CTRTreeBuilder, LazyRTree, Pager, Rect
from repro.storage import IOCategory
from repro.workload import SimulationDriver
from repro.citysim.trace import TraceRecord

#: Domain: temperature -20..60 degC (x), pressure 940..1060 hPa (y).
DOMAIN = Rect((-20.0, 940.0), (60.0, 1060.0))

#: Climate regimes a sensor can settle in: (temp, pressure) operating points.
REGIMES = [(5.0, 1020.0), (15.0, 1005.0), (25.0, 995.0), (35.0, 975.0)]


def simulate_sensor(rng, n_samples, interval=20.0):
    """One sensor's reading history: drift around a regime, rare fronts."""
    regime = rng.choice(REGIMES)
    temp, pressure = regime
    trail = []
    t = 0.0
    for _ in range(n_samples):
        t += interval
        if rng.random() < 0.01:  # a front arrives: jump to a new regime
            regime = rng.choice(REGIMES)
            temp, pressure = regime
        # Slow drift around the regime's operating point.
        temp += rng.gauss(0, 0.15) + 0.05 * (regime[0] - temp)
        pressure += rng.gauss(0, 0.4) + 0.05 * (regime[1] - pressure)
        trail.append(((temp, pressure), t))
    return trail


def main():
    rng = random.Random(99)
    n_sensors = 400
    n_history, n_online = 110, 60

    print(f"simulating {n_sensors} sensors, {n_history + n_online} readings each...")
    trails = {sid: simulate_sensor(rng, n_history + n_online) for sid in range(n_sensors)}
    histories = {sid: trail[:n_history] for sid, trail in trails.items()}
    current = {sid: trail[n_history - 1][0] for sid, trail in trails.items()}

    # Thresholds in sensor units: a qs-region is a few degrees / hPa wide,
    # held for at least five minutes.
    params = CTParams(t_dist=4.0, t_rate=0.2, t_time=300.0, t_area=50.0)

    pager = Pager()
    builder = CTRTreeBuilder(params, query_rate=0.5)
    tree, report = builder.build(pager, DOMAIN, histories, current)
    print(
        f"mined {report.phase3_regions} operating regions "
        f"(from {report.phase1_regions} raw dwell rectangles)"
    )

    # Replay the online readings against CT-R-tree and lazy-R-tree.
    online = []
    for sid, trail in trails.items():
        for point, t in trail[n_history:]:
            online.append(TraceRecord(oid=sid, point=point, t=t))
    online.sort(key=lambda r: r.t)

    driver = SimulationDriver(tree, pager, "ct")
    driver.adopt(current)
    ct_result = driver.run(online, [])

    lazy_pager = Pager()
    lazy = LazyRTree(lazy_pager)
    lazy_driver = SimulationDriver(lazy, lazy_pager, "lazy")
    lazy_driver.load(current)
    lazy_result = lazy_driver.run(online, [])

    print(f"\n{len(online):,} readings ingested:")
    print(
        f"  CT-R-tree  : {ct_result.update_ios:>8,} I/Os "
        f"({100 * tree.lazy_hits / len(online):.0f}% in-place)"
    )
    print(
        f"  lazy-R-tree: {lazy_result.update_ios:>8,} I/Os "
        f"({100 * lazy.lazy_hits / len(online):.0f}% in-place)"
    )

    # A value-range query over the *current* readings.
    with pager.stats.category(IOCategory.QUERY):
        cool_and_high = tree.range_search(Rect((0.0, 1000.0), (18.0, 1060.0)))
    print(
        f"\nsensors currently reading 0-18 degC and >=1000 hPa: "
        f"{len(cool_and_high)} (query cost "
        f"{pager.stats.total(IOCategory.QUERY)} I/Os)"
    )
    assert tree.validate() == []


if __name__ == "__main__":
    main()
