"""Property-based health checks: random op interleavings leave every
registered kind verifying clean, and repair() really repairs.

Also home to the sharded cross-shard exception-safety test (the router
must not lose an object when the destination shard's insert throws).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.geometry import Rect
from repro.engine import IndexKind, ShardedIndex, make_index
from repro.health import repair_index, verify_index
from repro.storage.pager import Pager

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (op, oid, x, y): op 0 = upsert, 1 = delete, 2 = re-update.
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)


def _apply(index, ops, kind=None):
    """Drive a SpatialIndex through an op interleaving; returns the oracle."""
    from repro.engine import delete_object

    positions = {}
    t = 0.0
    for op, oid, x, y in ops:
        t += 1.0
        point = (x, y)
        if op == 1:
            if oid in positions:
                if kind is None:  # sharded router / wrapper: uniform delete
                    index.delete(oid, positions[oid], now=t)
                else:
                    delete_object(
                        kind, index, oid,
                        old_position=positions[oid], now=t,
                    )
                del positions[oid]
        elif oid in positions:
            index.update(oid, positions[oid], point, now=t)
            positions[oid] = point
        else:
            index.insert(oid, point, now=t)
            positions[oid] = point
    return positions


def _histories(seed=1, n=8):
    from .conftest import dwell_trail

    rng = random.Random(seed)
    spots = [(25.0, 25.0), (75.0, 70.0)]
    return {oid: dwell_trail(rng, spots, dwell_reports=8) for oid in range(n)}


@pytest.mark.parametrize("kind", IndexKind.ALL)
@SETTINGS
@given(ops=OPS)
def test_random_interleavings_verify_clean(kind, ops):
    index = make_index(
        kind, Pager(), DOMAIN, histories=_histories(), query_rate=1.0
    )
    positions = _apply(index, ops, kind=kind)
    report = verify_index(index)
    assert report.ok, report.summary() + "\n" + "\n".join(
        str(v) for v in report.violations
    )
    served = dict(index.range_search(DOMAIN))
    assert served == {oid: tuple(p) for oid, p in positions.items()}


@SETTINGS
@given(ops=OPS, n_shards=st.integers(min_value=2, max_value=4))
def test_sharded_interleavings_verify_clean(ops, n_shards):
    index = ShardedIndex("lazy", DOMAIN, n_shards)
    positions = _apply(index, ops)
    report = verify_index(index)
    assert report.ok, report.summary()
    assert len(index) == len(positions)


@SETTINGS
@given(
    ops=OPS,
    corruptions=st.lists(
        st.integers(min_value=0, max_value=15), min_size=1, max_size=5
    ),
)
def test_repair_heals_corrupted_hash_index(ops, corruptions):
    index = make_index("lazy", Pager(), DOMAIN)
    _apply(index, ops, kind="lazy")
    # Poison the secondary hash: repoint live entries at a bogus page and
    # invent an orphan.  Both classes are repairable by design.
    poisoned = False
    for oid in corruptions:
        if index.hash.peek(oid) is not None:
            index.hash.set(oid, 999_999)
            poisoned = True
    index.hash.set(777_777, 5)
    report = verify_index(index)
    assert not report.ok
    if poisoned:
        assert report.by_code("hash-stale")
    assert report.by_code("hash-orphan")
    repair_index(index)
    after = verify_index(index)
    assert after.ok, after.summary()


@SETTINGS
@given(ops=OPS)
def test_self_healing_wrapper_preserves_behaviour(ops):
    from repro.health import HealPolicy, SelfHealingIndex

    plain = make_index("lazy", Pager(), DOMAIN)
    wrapped = SelfHealingIndex(
        make_index("lazy", Pager(), DOMAIN), "lazy", DOMAIN,
        policy=HealPolicy(rebuild_batch=4, cooldown_updates=10_000),
    )
    expected = _apply(plain, ops, kind="lazy")
    got = _apply(wrapped, ops)
    assert got == expected
    assert dict(wrapped.range_search(DOMAIN)) == dict(plain.range_search(DOMAIN))
    assert verify_index(wrapped).ok


# -- satellite: cross-shard move exception safety -----------------------------


class _ExplodingIndex:
    """Delegates to a real lazy R-tree but can be armed to fail inserts."""

    def __init__(self, inner):
        self.inner = inner
        self.explode = False

    def insert(self, obj_id, point, now=None):
        if self.explode:
            raise RuntimeError("disk full")
        return self.inner.insert(obj_id, point, now=now)

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __len__(self):
        return len(self.inner)


def test_cross_shard_move_failure_restores_source_shard():
    index = ShardedIndex("lazy", DOMAIN, 2)
    # Shard 0 owns x < 50, shard 1 owns x >= 50 (static split on x).
    index.insert(1, (10.0, 50.0), now=0.0)
    index.insert(2, (20.0, 50.0), now=1.0)
    target_sid = index.partition.shard_of((90.0, 50.0))
    source_sid = index.partition.shard_of((10.0, 50.0))
    assert target_sid != source_sid
    boom = _ExplodingIndex(index.shards[target_sid].index)
    index.shards[target_sid].index = boom
    boom.explode = True
    with pytest.raises(RuntimeError, match="disk full"):
        index.update(1, (10.0, 50.0), (90.0, 50.0), now=2.0)
    assert index.cross_shard_move_failures == 1
    assert index.cross_shard_moves == 0
    # The object is back on its source shard at its old position; the
    # owner map never moved, so routing still works.
    boom.explode = False
    served = dict(index.range_search(DOMAIN))
    assert served == {1: (10.0, 50.0), 2: (20.0, 50.0)}
    assert verify_index(index).ok
    # And the restored object remains fully updatable.
    index.update(1, (10.0, 50.0), (90.0, 50.0), now=3.0)
    assert index.cross_shard_moves == 1
    assert dict(index.range_search(DOMAIN))[1] == (90.0, 50.0)
    assert index.engine_dict()["cross_shard_move_failures"] == 1


def test_cross_shard_move_failure_counter_in_snapshot_roundtrip(tmp_path):
    from repro.storage.snapshot import load_index, save_index

    index = ShardedIndex("lazy", DOMAIN, 2)
    index.insert(1, (10.0, 50.0), now=0.0)
    path = save_index(index, tmp_path / "sharded.json")
    loaded = load_index(path)
    # The loader builds the instance without __init__; the counter must
    # still exist so engine_dict() and future failures work.
    assert loaded.cross_shard_move_failures == 0
    assert loaded.engine_dict()["cross_shard_move_failures"] == 0
