"""Tests for Appendix A.3: background rebuild of a drifted CT-R-tree."""

import pytest

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.core.rebuild import RebuildPolicy, rebuild_ctrtree
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, dwell_trail, random_query

DOMAIN = Rect((0, 0), (1000, 1000))


class TestRebuildPolicy:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            RebuildPolicy(churn_threshold=0.0)

    def test_no_rebuild_without_churn(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))] * 0)
        policy = RebuildPolicy()
        assert not policy.should_rebuild(tree, initial_regions=100)

    def test_churn_ratio_counts_promotions_and_retirements(self, pager):
        tree = CTRTree(pager, DOMAIN)
        tree.adaptation.promotions = 15
        tree.adaptation.retirements = 10
        policy = RebuildPolicy(churn_threshold=0.2)
        assert policy.churn_ratio(tree, initial_regions=100) == pytest.approx(0.25)
        assert policy.should_rebuild(tree, initial_regions=100)

    def test_tiny_indexes_never_demand_rebuild(self, pager):
        tree = CTRTree(pager, DOMAIN)
        tree.adaptation.promotions = 50
        policy = RebuildPolicy(min_initial_regions=4)
        assert not policy.should_rebuild(tree, initial_regions=2)


class TestRebuild:
    def build_old_tree(self, rng):
        """An index built for spots A/B, while objects have moved to C/D."""
        old_spots = [(150, 150), (800, 200)]
        new_spots = [(200, 800), (700, 700)]
        old_histories = {
            oid: dwell_trail(rng, [old_spots[oid % 2]], dwell_reports=30)
            for oid in range(40)
        }
        pager = Pager()
        from repro.core.builder import CTRTreeBuilder

        tree, _ = CTRTreeBuilder(CTParams(), query_rate=1.0).build(
            pager, DOMAIN, old_histories
        )
        # The population has since migrated: current positions at C/D.
        positions = {}
        for oid in range(40):
            cx, cy = new_spots[oid % 2]
            point = (cx + rng.gauss(0, 2), cy + rng.gauss(0, 2))
            tree.insert(oid, point, now=1000.0 + oid)
            positions[oid] = point
        new_histories = {
            oid: dwell_trail(rng, [new_spots[oid % 2]], dwell_reports=30)
            for oid in range(40)
        }
        return tree, positions, new_histories

    def test_rebuild_transfers_all_objects(self, rng):
        old_tree, positions, new_histories = self.build_old_tree(rng)
        new_tree, report = rebuild_ctrtree(old_tree, new_histories, query_rate=1.0)
        assert len(new_tree) == len(positions)
        assert new_tree.validate() == []
        assert report.object_count == 40
        for _ in range(15):
            query = random_query(rng, span=1000)
            got = sorted(oid for oid, _ in new_tree.range_search(query))
            assert got == brute_force_range(positions, query)

    def test_rebuild_mines_the_new_patterns(self, rng):
        old_tree, _positions, new_histories = self.build_old_tree(rng)
        new_tree, _ = rebuild_ctrtree(old_tree, new_histories, query_rate=1.0)
        # The rebuilt skeleton covers the new spots; objects live in regions.
        assert new_tree.buffered_object_count() < len(new_tree) * 0.2
        # The old skeleton, by contrast, strands the migrated population.
        assert old_tree.buffered_object_count() > len(old_tree) * 0.5

    def test_rebuild_does_not_touch_the_live_index(self, rng):
        old_tree, positions, new_histories = self.build_old_tree(rng)
        before_total = old_tree.pager.stats.total()
        before_pages = old_tree.pager.page_count
        rebuild_ctrtree(old_tree, new_histories, query_rate=1.0)
        assert old_tree.pager.stats.total() == before_total
        assert old_tree.pager.page_count == before_pages
        assert old_tree.validate() == []

    def test_rebuild_inherits_params_and_adaptive_flag(self, rng):
        old_tree, _, new_histories = self.build_old_tree(rng)
        old_tree.adaptive = False
        params = CTParams(t_list=2)
        old_tree.params = params
        new_tree, _ = rebuild_ctrtree(old_tree, new_histories, query_rate=1.0)
        assert new_tree.params.t_list == 2
        assert not new_tree.adaptive

    def test_rebuild_charged_as_build(self, rng):
        old_tree, _, new_histories = self.build_old_tree(rng)
        pager = Pager()
        rebuild_ctrtree(old_tree, new_histories, query_rate=1.0, pager=pager)
        from repro.storage.iostats import IOCategory

        assert pager.stats.total(IOCategory.BUILD) == pager.stats.total()

    def test_rebuild_improves_update_cost_after_migration(self, rng):
        """The point of A.3: the rebuilt index serves the migrated population
        with lazy updates again."""
        old_tree, positions, new_histories = self.build_old_tree(rng)
        new_tree, _ = rebuild_ctrtree(old_tree, new_histories, query_rate=1.0)

        def measure(tree):
            pager = tree.pager
            before = pager.stats.total()
            lazy_before = tree.lazy_hits
            for oid, point in list(positions.items())[:30]:
                tree.update(oid, point, (point[0] + 0.5, point[1] + 0.5), now=5000.0)
                tree.update(oid, (point[0] + 0.5, point[1] + 0.5), point, now=5001.0)
            return pager.stats.total() - before, tree.lazy_hits - lazy_before

        old_cost, _old_lazy = measure(old_tree)
        new_cost, new_lazy = measure(new_tree)
        assert new_lazy == 60  # every jitter update is lazy on the new tree
        assert new_cost < old_cost
