"""Tests for the index and workload diagnostics."""

import pytest

from repro.analysis import (
    ct_tree_stats,
    overlap_factor,
    rtree_stats,
    trail_stats,
)
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.rtree import AlphaTree, LazyRTree, RTree
from repro.storage.pager import Pager
from tests.conftest import dwell_trail, random_points

DOMAIN = Rect((0, 0), (1000, 1000))


class TestOverlapFactor:
    def test_empty_and_singleton(self):
        assert overlap_factor([]) == 0.0
        assert overlap_factor([Rect((0, 0), (1, 1))]) == 0.0

    def test_disjoint(self):
        rects = [Rect((i * 10.0, 0), (i * 10.0 + 5, 5)) for i in range(4)]
        assert overlap_factor(rects) == 0.0

    def test_all_overlapping(self):
        rects = [Rect((0, 0), (10, 10))] * 3
        assert overlap_factor(rects) == pytest.approx(2.0)

    def test_chain_overlap(self):
        rects = [Rect((0, 0), (10, 10)), Rect((5, 0), (15, 10)), Rect((12, 0), (20, 10))]
        # first-second and second-third intersect: 2 pairs * 2 / 3 rects.
        assert overlap_factor(rects) == pytest.approx(4.0 / 3.0)


class TestRTreeStats:
    def test_empty_tree(self, pager):
        stats = rtree_stats(RTree(pager))
        assert stats.object_count == 0
        assert stats.leaf_count == 1

    def test_counts_consistent(self, pager, rng):
        tree = RTree(pager, max_entries=8)
        for oid, point in random_points(rng, 200).items():
            tree.insert(oid, point)
        stats = rtree_stats(tree)
        assert stats.object_count == 200
        assert stats.height == tree.height
        assert stats.node_count == tree.node_count()
        assert 0.0 < stats.avg_leaf_fill <= 1.0
        assert stats.avg_leaf_area > 0

    def test_alpha_tree_has_more_dead_space(self, rng):
        points = random_points(rng, 150)
        moves = [(oid, p, (p[0] + 3, p[1] + 3)) for oid, p in points.items()]

        def build(cls):
            tree = cls(Pager(), max_entries=8)
            for oid, point in points.items():
                tree.insert(oid, point)
            for oid, old, new in moves:
                tree.update(oid, old, new)
            return rtree_stats(tree.tree)

        lazy = build(LazyRTree)
        alpha = build(AlphaTree)
        assert alpha.dead_space_ratio >= lazy.dead_space_ratio

    def test_as_row_keys(self, pager):
        row = rtree_stats(RTree(pager)).as_row()
        assert "overlap" in row and "dead space" in row


class TestCTRTreeStats:
    def make_tree(self, rng):
        regions = [Rect((i * 150.0, 100), (i * 150.0 + 60, 160)) for i in range(5)]
        tree = CTRTree(Pager(), DOMAIN, regions, max_entries=5, ct_params=CTParams(t_list=1))
        for oid in range(60):
            if oid % 3 == 0:
                tree.insert(oid, (rng.uniform(0, 1000), rng.uniform(500, 1000)))
            else:
                region = regions[oid % len(regions)]
                tree.insert(oid, region.center)
        return tree

    def test_counts_consistent(self, rng):
        tree = self.make_tree(rng)
        stats = ct_tree_stats(tree)
        assert stats.object_count == 60
        assert stats.region_count == 5
        assert stats.buffered_objects == tree.buffered_object_count()
        assert stats.buffered_fraction == pytest.approx(stats.buffered_objects / 60)
        assert stats.chain_pages >= 5
        assert stats.avg_chain_length >= 1.0

    def test_empty_regions_counted(self):
        tree = CTRTree(Pager(), DOMAIN, [Rect((0, 0), (10, 10))])
        stats = ct_tree_stats(tree)
        assert stats.empty_regions == 1
        assert stats.object_count == 0

    def test_buffer_kinds_tracked(self, rng):
        tree = self.make_tree(rng)
        stats = ct_tree_stats(tree)
        assert stats.list_buffers + stats.tree_buffers >= 1


class TestTrailStats:
    def test_dwell_heavy_workload_detected(self, rng):
        histories = {
            oid: dwell_trail(rng, [(200, 200), (700, 700)], dwell_reports=40)
            for oid in range(10)
        }
        stats = trail_stats(histories)
        assert stats.object_count == 10
        assert stats.median_step < 10.0
        assert stats.dwell_step_fraction > 0.8
        assert stats.dwell_time_fraction > 0.6
        assert stats.regions_per_object == pytest.approx(2.0)
        assert stats.is_change_tolerant_friendly

    def test_pure_travel_workload_detected(self):
        histories = {
            oid: [((k * 300.0, 0.0), k * 20.0) for k in range(40)] for oid in range(5)
        }
        stats = trail_stats(histories)
        assert stats.dwell_step_fraction == 0.0
        assert stats.regions_per_object == 0.0
        assert not stats.is_change_tolerant_friendly

    def test_empty_histories(self):
        stats = trail_stats({})
        assert stats.object_count == 0
        assert stats.median_step == 0.0

    def test_city_simulator_output_is_friendly(self):
        """The substitute simulator must produce the movement shape the paper
        describes -- this is the validation the substitution rests on."""
        from repro.citysim import City, CitySimulator
        from repro.core.params import SimulationParams

        city = City.generate(seed=2, n_buildings=25)
        params = SimulationParams(
            n_objects=80, update_rate=4.0, n_history=110, n_updates=5, n_warmup_max=20
        )
        trace = CitySimulator(city, params, seed=3).run()
        stats = trail_stats(trace.histories(110))
        assert stats.is_change_tolerant_friendly
