"""Tests for the one-shot markdown report generator."""

import pytest

from repro.experiments.report import ALL_SECTIONS, generate_report, write_report


class TestGenerateReport:
    def test_rejects_unknown_sections(self):
        with pytest.raises(ValueError):
            generate_report(sections=["figure99"])

    def test_table1_only(self):
        text = generate_report("smoke", sections=["table1"])
        assert "# CT-R-tree reproduction report" in text
        assert "## Table 1" in text
        assert "lambda_u" in text
        assert "## Figure 8" not in text

    def test_single_figure_section(self):
        text = generate_report("smoke", sections=["figure11"])
        assert "## Figure 11" in text
        assert "lazy-R-tree" in text
        assert text.count("```") % 2 == 0  # balanced code fences

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "sub" / "report.md", "smoke", sections=["table1"])
        assert path.exists()
        assert path.read_text().startswith("# CT-R-tree reproduction report")

    def test_all_sections_constant_is_complete(self):
        assert set(ALL_SECTIONS) == {
            "table1",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "ablations",
        }


class TestReportCLI:
    def test_cli_report_table1(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "-o", str(out), "--sections", "table1"]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_cli_build_save_snapshot(self, tmp_path):
        from repro.cli import main
        from repro.storage.snapshot import load_ctrtree

        trace = tmp_path / "t.csv"
        main(["simulate", str(trace), "--objects", "40", "--history", "20",
              "--updates", "2", "--buildings", "8", "--seed", "1"])
        snap = tmp_path / "index.json"
        assert main(["build", str(trace), "--history", "20", "--save", str(snap)]) == 0
        tree = load_ctrtree(snap)
        assert len(tree) == 40
        assert tree.validate() == []
