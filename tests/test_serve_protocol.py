"""Unit tests for the serve wire protocol, admission control, and loadgen
math -- everything below the daemon itself."""

import math

import pytest

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.loadgen import latency_summary, percentile, split_ops
from repro.serve.protocol import (
    CODEC_JSON,
    MAX_FRAME,
    PREFIX_SIZE,
    ProtocolError,
    codec_tag,
    codecs_available,
    decode_payload,
    encode_payload,
    pack_frame,
    unpack_prefix,
)

# -- framing ------------------------------------------------------------------


def test_json_frame_round_trips():
    message = {"op": "update", "oid": 7, "point": [1.5, 2.5], "t": 0.25}
    frame = pack_frame(message, "json")
    length, tag = unpack_prefix(frame[:PREFIX_SIZE])
    assert tag == CODEC_JSON
    assert length == len(frame) - PREFIX_SIZE
    assert decode_payload(frame[PREFIX_SIZE:], tag) == message


def test_msgpack_gated_on_availability():
    if "msgpack" in codecs_available():
        message = {"op": "stats"}
        frame = pack_frame(message, "msgpack")
        length, tag = unpack_prefix(frame[:PREFIX_SIZE])
        assert decode_payload(frame[PREFIX_SIZE:], tag) == message
    else:
        with pytest.raises(ProtocolError):
            codec_tag("msgpack")


def test_unknown_codec_rejected():
    with pytest.raises(ProtocolError):
        codec_tag("bson")
    with pytest.raises(ProtocolError):
        encode_payload({}, 0x7F)
    with pytest.raises(ProtocolError):
        decode_payload(b"{}", 0x7F)


def test_oversize_prefix_rejected():
    import struct

    prefix = struct.pack("!IB", MAX_FRAME + 1, CODEC_JSON)
    with pytest.raises(ProtocolError):
        unpack_prefix(prefix)


def test_garbage_and_non_mapping_payloads_rejected():
    with pytest.raises(ProtocolError):
        decode_payload(b"\xff\x00 not json", CODEC_JSON)
    with pytest.raises(ProtocolError):
        decode_payload(b"[1,2,3]", CODEC_JSON)


# -- token bucket / admission -------------------------------------------------


def test_token_bucket_spends_and_refills():
    bucket = TokenBucket(rate=10.0, burst=5.0, now=0.0)
    for _ in range(5):
        assert bucket.try_acquire(1.0, 0.0) == 0.0
    wait = bucket.try_acquire(1.0, 0.0)
    assert wait == pytest.approx(0.1)  # 1 token at 10/s
    # Half a second refills 5 tokens but the burst caps at 5.
    assert bucket.try_acquire(5.0, 0.5) == 0.0
    assert bucket.try_acquire(1.0, 0.5) > 0.0


def test_admission_disabled_admits_everything():
    controller = AdmissionController(rate=0.0)
    for _ in range(100):
        admitted, wait = controller.admit("c1", 1.0)
        assert admitted and wait == 0.0
    assert controller.rejected == 0


def test_admission_per_client_isolation():
    clock = [0.0]
    controller = AdmissionController(rate=5.0, burst=2.0, clock=lambda: clock[0])
    assert controller.admit("a", 2.0) == (True, 0.0)
    admitted, wait = controller.admit("a", 1.0)
    assert not admitted and wait > 0.0
    # Client b has its own bucket: a's exhaustion does not starve it.
    assert controller.admit("b", 2.0) == (True, 0.0)
    clock[0] = 1.0  # 5 tokens refilled, capped at burst 2
    assert controller.admit("a", 2.0) == (True, 0.0)
    controller.forget("a")
    assert controller.to_dict()["clients"] == 1


# -- loadgen math -------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.50) == 50.0
    assert percentile(values, 0.99) == 99.0
    assert percentile(values, 1.0) == 100.0
    assert percentile([7.0], 0.99) == 7.0
    assert math.isnan(percentile([], 0.5))


def test_latency_summary_units_are_milliseconds():
    summary = latency_summary([0.001, 0.002, 0.003])
    assert summary["count"] == 3
    assert summary["p50_ms"] == pytest.approx(2.0)
    assert summary["max_ms"] == pytest.approx(3.0)
    assert latency_summary([]) == {"count": 0}


def test_split_ops_partitions_updates_by_oid():
    ops = [
        ("update", oid, 0.0, 0.0, float(t))
        for t, oid in enumerate([1, 2, 3, 1, 2, 1])
    ] + [("range", 0.0, 0.0, 1.0, 1.0, False)] * 4
    slices = split_ops(ops, 2)
    assert sum(len(s) for s in slices) == len(ops)
    for n, chunk in enumerate(slices):
        for op in chunk:
            if op[0] == "update":
                assert op[1] % 2 == n
    # Per-object order is preserved inside the owning slice.
    times_of_1 = [op[4] for op in slices[1] if op[0] == "update" and op[1] == 1]
    assert times_of_1 == sorted(times_of_1)
    # Queries spread round-robin: both slices got some.
    assert all(any(op[0] == "range" for op in chunk) for chunk in slices)
    with pytest.raises(ValueError):
        split_ops(ops, 0)
