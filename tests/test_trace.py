"""Unit tests for trace recording, slicing, and persistence."""

import pytest

from repro.citysim.trace import Trace


@pytest.fixture
def trace():
    t = Trace()
    for oid in range(3):
        for k in range(10):
            t.add(oid, (float(oid), float(k)), k * 20.0 + oid)
    return t


class TestBasics:
    def test_counts(self, trace):
        assert len(trace) == 30
        assert trace.object_ids == [0, 1, 2]
        assert trace.sample_count(1) == 10
        assert trace.min_samples() == 10

    def test_rejects_time_regression(self):
        t = Trace()
        t.add(0, (0, 0), 10.0)
        with pytest.raises(ValueError):
            t.add(0, (1, 1), 5.0)

    def test_duration(self, trace):
        assert trace.duration() == pytest.approx(9 * 20.0 + 2)

    def test_empty_trace(self):
        t = Trace()
        assert len(t) == 0
        assert t.min_samples() == 0
        assert t.duration() == 0.0
        assert t.online_span(5) == (0.0, 0.0)


class TestPhases:
    def test_histories_take_first_n_minus_one(self, trace):
        histories = trace.histories(5)
        assert all(len(h) == 4 for h in histories.values())

    def test_current_positions_are_nth_sample(self, trace):
        current = trace.current_positions(5)
        assert current[0] == (0.0, 4.0)

    def test_current_clamps_to_available(self, trace):
        current = trace.current_positions(99)
        assert current[0] == (0.0, 9.0)

    def test_online_updates_are_time_ordered_and_correctly_attributed(self, trace):
        records = list(trace.online_updates(5))
        assert len(records) == 15
        times = [r.t for r in records]
        assert times == sorted(times)
        for record in records:
            # y-coordinate encodes the sample index; x encodes the object id.
            assert record.point[0] == float(record.oid)

    def test_online_span(self, trace):
        start, end = trace.online_span(5)
        assert start == pytest.approx(5 * 20.0)  # oid 0 sample 5
        assert end == pytest.approx(9 * 20.0 + 2)


class TestTransforms:
    def test_subsample(self, trace):
        thin = trace.subsample(2)
        assert thin.sample_count(0) == 5
        assert thin.trail(0)[1] == trace.trail(0)[2]

    def test_subsample_rejects_zero(self, trace):
        with pytest.raises(ValueError):
            trace.subsample(0)

    def test_restricted_to(self, trace):
        sub = trace.restricted_to([0, 2])
        assert sub.object_ids == [0, 2]
        assert len(sub) == 20


class TestPersistence:
    def test_save_load_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.object_ids == trace.object_ids
        for oid in trace.object_ids:
            assert loaded.trail(oid) == trace.trail(oid)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,trace\n")
        with pytest.raises(ValueError):
            Trace.load(path)
