"""Tests for the SVG figure renderings."""

import pytest

from repro.citysim.city import City
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.qsregion import QSRegion, identify_qs_regions
from repro.core.params import CTParams
from repro.core.update_graph import UpdateGraph
from repro.storage.pager import Pager
from repro.viz import (
    SVGCanvas,
    draw_city,
    draw_ct_tree,
    draw_structural_tree,
    draw_trails,
    draw_update_graph,
)
from tests.conftest import dwell_trail

WORLD = Rect((0, 0), (1000, 1000))


class TestCanvas:
    def test_rejects_3d_world(self):
        with pytest.raises(ValueError):
            SVGCanvas(Rect((0, 0, 0), (1, 1, 1)))

    def test_rejects_degenerate_world(self):
        with pytest.raises(ValueError):
            SVGCanvas(Rect((0, 0), (0, 10)))

    def test_coordinate_mapping_flips_y(self):
        canvas = SVGCanvas(WORLD, width=800, margin=0)
        assert canvas.x(0) == 0.0
        assert canvas.y(0) == canvas.height  # world bottom -> SVG bottom
        assert canvas.y(1000) == 0.0

    def test_primitives_accumulate(self):
        canvas = SVGCanvas(WORLD)
        base = canvas.element_count
        canvas.rect(Rect((10, 10), (20, 20)))
        canvas.line((0, 0), (5, 5))
        canvas.polyline([(0, 0), (1, 1), (2, 0)])
        canvas.circle((3, 3))
        canvas.text((4, 4), "hi & <bye>")
        assert canvas.element_count == base + 5
        svg = canvas.to_svg()
        assert svg.startswith("<svg")
        assert "&amp;" in svg and "&lt;bye&gt;" in svg

    def test_short_polyline_ignored(self):
        canvas = SVGCanvas(WORLD)
        base = canvas.element_count
        canvas.polyline([(0, 0)])
        assert canvas.element_count == base

    def test_save(self, tmp_path):
        canvas = SVGCanvas(WORLD)
        canvas.rect(Rect((1, 1), (2, 2)))
        path = canvas.save(tmp_path / "nested" / "out.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestFigureDrawings:
    @pytest.fixture(scope="class")
    def city(self):
        return City.generate(seed=3, n_buildings=15)

    def test_draw_city(self, city):
        canvas = draw_city(city)
        svg = canvas.to_svg()
        assert svg.count("<rect") >= len(city.buildings)
        assert "City map" in svg

    def test_draw_trails_with_regions(self, rng):
        trails = {
            oid: dwell_trail(rng, [(100 + 100 * oid, 100), (500, 500)], dwell_reports=25)
            for oid in range(3)
        }
        regions = {
            oid: identify_qs_regions(trail, CTParams(), object_id=oid)
            for oid, trail in trails.items()
        }
        svg = draw_trails(WORLD, trails, regions).to_svg()
        assert svg.count("<polyline") == 3
        assert "stroke-dasharray" in svg  # the dashed qs-region boxes

    def test_draw_trails_caps_objects(self, rng):
        trails = {
            oid: dwell_trail(rng, [(200, 200)], dwell_reports=10) for oid in range(30)
        }
        svg = draw_trails(WORLD, trails, max_objects=5).to_svg()
        assert svg.count("<polyline") == 5

    def test_draw_update_graph(self):
        graph = UpdateGraph()
        a = graph.add_region(QSRegion(rect=Rect((0, 0), (50, 50)), dwell_time=100))
        b = graph.add_region(QSRegion(rect=Rect((200, 200), (250, 250)), dwell_time=100))
        graph.add_edge(a, b, 5.0)
        svg = draw_update_graph(WORLD, graph).to_svg()
        assert svg.count("<rect") >= 2
        assert svg.count("<line") >= 1

    def test_draw_structural_and_ct(self, rng):
        regions = [Rect((i * 200.0, 100), (i * 200.0 + 80, 180)) for i in range(4)]
        tree = CTRTree(Pager(), WORLD, regions, max_entries=5, ct_params=CTParams(t_list=1))
        for oid in range(40):
            tree.insert(oid, (rng.uniform(0, 1000), rng.uniform(0, 1000)))
        structural = draw_structural_tree(tree).to_svg()
        assert "structural R-tree" in structural
        placement = draw_ct_tree(tree).to_svg()
        assert "buffer:" in placement  # some objects are buffered
        assert placement.count("<circle") >= 40
