"""Tests for the alternative mobility models (robustness substrate)."""

import math
import random

import pytest

from repro.citysim import City, CitySimulator
from repro.citysim.mobility import ObjectState
from repro.citysim.models import GaussianMarkovModel, WaypointModel, make_model
from repro.core.params import SimulationParams


@pytest.fixture(scope="module")
def city():
    return City.generate(seed=6, n_buildings=15)


def params(n=40):
    return SimulationParams(
        n_objects=n, update_rate=n / 20.0, n_history=20, n_updates=5, n_warmup_max=5
    )


class TestWaypointModel:
    def test_spawn_within_bounds(self, city):
        model = WaypointModel(city, random.Random(1))
        obj = model.spawn(0, now=0.0)
        assert city.bounds.contains_point(obj.position)
        assert obj.at_ground_level

    def test_pause_then_travel_cycle(self, city):
        model = WaypointModel(city, random.Random(2), pause_mean=100.0)
        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 0.0
        model.step(obj, now=20.0, dt=20.0)
        assert obj.state == ObjectState.TRAVELING
        t = 20.0
        for _ in range(500):
            t += 20.0
            model.step(obj, now=t, dt=20.0)
            if obj.state != ObjectState.TRAVELING:
                break
        assert obj.state == ObjectState.IN_PARK  # arrived and pausing

    def test_positions_stay_in_bounds(self, city):
        model = WaypointModel(city, random.Random(3))
        obj = model.spawn(0, now=0.0)
        t = 0.0
        for _ in range(300):
            t += 20.0
            model.step(obj, now=t, dt=20.0)
            assert city.bounds.contains_point(obj.position)

    def test_rejects_negative_dt(self, city):
        model = WaypointModel(city, random.Random(4))
        obj = model.spawn(0, now=0.0)
        with pytest.raises(ValueError):
            model.step(obj, now=0.0, dt=-1.0)

    def test_runs_under_simulator(self, city):
        model = WaypointModel(city, random.Random(5))
        simulator = CitySimulator(city, params(), seed=5, model=model)
        trace = simulator.run()
        assert trace.min_samples() == 25


class TestGaussianMarkovModel:
    def test_rejects_bad_memory(self, city):
        with pytest.raises(ValueError):
            GaussianMarkovModel(city, random.Random(1), memory=1.0)

    def test_never_dwells(self, city):
        model = GaussianMarkovModel(city, random.Random(2))
        obj = model.spawn(0, now=0.0)
        assert obj.dwell_until == math.inf
        assert obj.state == ObjectState.TRAVELING

    def test_motion_is_velocity_correlated(self, city):
        """Consecutive displacement vectors must correlate positively."""
        model = GaussianMarkovModel(city, random.Random(3), memory=0.95)
        obj = model.spawn(0, now=0.0)
        displacements = []
        previous = obj.position
        t = 0.0
        for _ in range(200):
            t += 5.0
            model.step(obj, now=t, dt=5.0)
            displacements.append(
                (obj.position[0] - previous[0], obj.position[1] - previous[1])
            )
            previous = obj.position
        dots = [
            a[0] * b[0] + a[1] * b[1]
            for a, b in zip(displacements, displacements[1:])
        ]
        positive = sum(1 for d in dots if d > 0)
        assert positive / len(dots) > 0.6

    def test_reflection_keeps_in_bounds(self, city):
        model = GaussianMarkovModel(city, random.Random(4), mean_speed=30.0)
        obj = model.spawn(0, now=0.0)
        t = 0.0
        for _ in range(500):
            t += 20.0
            model.step(obj, now=t, dt=20.0)
            assert city.bounds.contains_point(obj.position)

    def test_runs_under_simulator(self, city):
        model = GaussianMarkovModel(city, random.Random(6))
        simulator = CitySimulator(city, params(), seed=6, model=model)
        trace = simulator.run()
        assert trace.min_samples() == 25

    def test_mines_fewer_regions_than_city_model(self, city):
        """The adversarial model must starve Phase 1 relative to the default."""
        from repro.analysis import trail_stats

        counts = {}
        for name in ("city", "gauss_markov"):
            rng = random.Random(7)
            simulator = CitySimulator(
                city, params(60), seed=7, model=make_model(name, city, rng)
            )
            trace = simulator.run(n_samples=60)
            stats = trail_stats(trace.histories(60))
            counts[name] = stats.regions_per_object
        assert counts["gauss_markov"] < counts["city"]


class TestFactory:
    def test_known_models(self, city):
        rng = random.Random(0)
        from repro.citysim.mobility import MobilityModel

        assert isinstance(make_model("city", city, rng), MobilityModel)
        assert isinstance(make_model("waypoint", city, rng), WaypointModel)
        assert isinstance(make_model("gauss_markov", city, rng), GaussianMarkovModel)

    def test_unknown_model(self, city):
        with pytest.raises(ValueError):
            make_model("teleport", city, random.Random(0))
