"""Unit tests for the LSM-R-tree (repro.lsm): memtable, runs, compaction."""

import os
import tempfile

import pytest

from repro.core.geometry import Rect
from repro.health.verify import verify_index
from repro.lsm import BloomFilter, LSMConfig, LSMRTree
from repro.obs import get_registry, set_enabled
from repro.storage import Pager
from repro.storage.iostats import IOCategory
from repro.storage.snapshot import index_kind_of, load_index, save_index

DOMAIN = Rect((0.0, 0.0), (1000.0, 1000.0))


def small_lsm(**overrides):
    defaults = dict(memtable_size=8, size_ratio=2, max_runs=4)
    defaults.update(overrides)
    pager = Pager()
    return LSMRTree(pager, max_entries=4, config=LSMConfig(**defaults))


def fill(lsm, n, *, start=0):
    for oid in range(start, start + n):
        lsm.insert(oid, (float(oid % 997), float(oid // 997)), now=float(oid))


class TestBloom:
    def test_no_false_negatives(self):
        keys = list(range(0, 5000, 7))
        bloom = BloomFilter.from_keys(keys)
        for key in keys:
            assert key in bloom

    def test_filters_most_absent_keys(self):
        bloom = BloomFilter.from_keys(range(1000))
        misses = sum(1 for key in range(10_000, 20_000) if key in bloom)
        # 10 bits/key targets ~1% false positives; allow generous slack.
        assert misses < 500

    def test_deterministic(self):
        a = BloomFilter.from_keys(range(100))
        b = BloomFilter.from_keys(range(100))
        assert a._bits == b._bits


class TestWritePath:
    def test_updates_stay_in_memtable_until_threshold(self):
        lsm = small_lsm(auto_compact=False)
        for oid in range(7):
            lsm.insert(oid, (float(oid), 0.0), now=float(oid))
        assert lsm.run_count == 0
        assert len(lsm.memtable) == 7
        lsm.insert(7, (7.0, 0.0), now=7.0)  # trips batch_size=8
        assert lsm.run_count == 1
        assert len(lsm.memtable) == 0

    def test_coalescing_one_object_many_updates(self):
        lsm = small_lsm(auto_compact=False)
        for i in range(7):
            lsm.insert(0, (float(i), 0.0), now=float(i))
        # Seven updates to one object coalesce to one pending entry;
        # the size trigger counts distinct objects, so no flush yet.
        assert lsm.run_count == 0
        assert len(lsm.memtable) == 1
        assert len(lsm) == 1
        lsm.flush()
        assert len(lsm.runs[0]) == 1
        assert dict(lsm.range_search(DOMAIN))[0] == (6.0, 0.0)

    def test_buffered_updates_charge_no_io(self):
        lsm = small_lsm()
        with lsm.pager.stats.category(IOCategory.UPDATE):
            for oid in range(7):  # below the flush threshold
                lsm.insert(oid, (float(oid), 0.0), now=float(oid))
        assert lsm.pager.stats.writes(IOCategory.UPDATE) == 0

    def test_flush_charges_under_callers_category(self):
        lsm = small_lsm(auto_compact=False)
        with lsm.pager.stats.category(IOCategory.UPDATE):
            fill(lsm, 8)  # exactly one flush
        assert lsm.pager.stats.writes(IOCategory.UPDATE) > 0

    def test_flush_of_empty_memtable_is_noop(self):
        lsm = small_lsm()
        assert lsm.flush() == 0
        assert lsm.run_count == 0
        assert lsm.flushes == 0


class TestDelete:
    def test_delete_pending_object_dies_in_memory(self):
        lsm = small_lsm()
        lsm.insert(1, (1.0, 1.0), now=0.0)
        assert lsm.delete(1)
        assert len(lsm) == 0
        lsm.flush()
        # Never reached a run, so no tombstone was worth writing.
        assert lsm.run_count == 0
        assert dict(lsm.range_search(DOMAIN)) == {}

    def test_delete_flushed_object_writes_tombstone(self):
        lsm = small_lsm(auto_compact=False)
        fill(lsm, 8)
        assert lsm.run_count == 1
        assert lsm.delete(3)
        lsm.flush()
        assert lsm.run_count == 2
        assert list(lsm.runs[1].tombstones) == [3]
        assert 3 not in dict(lsm.range_search(DOMAIN))
        assert len(lsm) == 7

    def test_delete_missing_object_returns_false(self):
        lsm = small_lsm()
        assert not lsm.delete(99)
        lsm.insert(1, (1.0, 1.0))
        lsm.delete(1)
        assert not lsm.delete(1)

    def test_reinsert_after_delete(self):
        lsm = small_lsm(auto_compact=False)
        fill(lsm, 8)
        lsm.delete(2)
        lsm.flush()
        lsm.insert(2, (500.0, 500.0), now=99.0)
        assert len(lsm) == 8
        assert dict(lsm.range_search(DOMAIN))[2] == (500.0, 500.0)
        assert lsm.validate() == []


class TestQuerySuppression:
    def test_stale_version_moved_out_of_rect_does_not_leak(self):
        """The seen-set trap: oid 0 moved out of the probe rect; its stale
        in-rect version in the older run must still be suppressed."""
        lsm = small_lsm(size_ratio=9, auto_compact=False)
        fill(lsm, 8)  # run 0 holds oid 0 at (0, 0)
        lsm.update(0, (0.0, 0.0), (900.0, 900.0), now=50.0)
        for oid in range(100, 107):
            lsm.insert(oid, (float(oid), 0.0), now=60.0)  # force flush
        assert lsm.run_count == 2
        probe = dict(lsm.range_search(Rect((0.0, 0.0), (10.0, 10.0))))
        assert 0 not in probe

    def test_memtable_version_wins_over_run_version(self):
        lsm = small_lsm(auto_compact=False)
        fill(lsm, 8)
        lsm.update(1, (1.0, 0.0), (400.0, 400.0), now=50.0)
        result = dict(lsm.range_search(DOMAIN))
        assert result[1] == (400.0, 400.0)

    def test_newest_run_version_wins(self):
        lsm = small_lsm(size_ratio=9, auto_compact=False)
        fill(lsm, 8)
        for oid in range(8):
            lsm.update(oid, None, (float(oid) + 100.0, 0.0), now=50.0 + oid)
        assert lsm.run_count == 2
        result = dict(lsm.range_search(DOMAIN))
        assert result[0] == (100.0, 0.0)
        assert len(result) == 8

    def test_nearest_matches_range_derived_answer(self):
        lsm = small_lsm(auto_compact=False)
        fill(lsm, 30)
        lsm.update(5, None, (650.0, 0.0), now=100.0)
        lsm.delete(7)
        import math

        live = dict(lsm.range_search(DOMAIN))
        target = (5.5, 0.0)
        brute = sorted(
            (math.dist(target, pt), oid, pt) for oid, pt in live.items()
        )[:3]
        assert lsm.nearest(target, 3) == brute

    def test_nearest_k_exceeding_population(self):
        lsm = small_lsm()
        fill(lsm, 3)
        assert len(lsm.nearest((0.0, 0.0), 10)) == 3


class TestCompaction:
    def test_size_tier_trigger_merges_equal_runs(self):
        lsm = small_lsm(size_ratio=2, auto_compact=False)
        fill(lsm, 16)  # two runs of 8 in tier 0... wait for trigger check
        assert lsm.run_count == 2
        window = lsm.compaction_needed()
        assert window == (0, 2)
        info = lsm.compact_step()
        assert info is not None and info["runs_merged"] == 2
        assert lsm.run_count == 1
        assert len(lsm.runs[0]) == 16
        assert lsm.validate() == []

    def test_auto_compact_runs_to_quiescence(self):
        lsm = small_lsm(size_ratio=2)
        fill(lsm, 64)
        assert lsm.compaction_needed() is None
        assert dict(lsm.range_search(DOMAIN)) == {
            oid: (float(oid % 997), float(oid // 997)) for oid in range(64)
        }

    def test_max_runs_bound_forces_merge(self):
        # size_ratio=9 never trips a tier at this scale; max_runs must.
        lsm = small_lsm(size_ratio=9, max_runs=2, auto_compact=False)
        fill(lsm, 24)
        assert lsm.run_count == 3
        assert lsm.compaction_needed() is not None
        lsm.maybe_compact()
        assert lsm.run_count <= 2
        assert lsm.validate() == []

    def test_merge_drops_superseded_versions(self):
        lsm = small_lsm(size_ratio=2, auto_compact=False)
        fill(lsm, 8)
        for oid in range(8):  # newer versions of the same oids
            lsm.update(oid, None, (float(oid) + 200.0, 0.0), now=50.0 + oid)
        assert lsm.run_count == 2
        lsm.compact_step()
        assert lsm.run_count == 1
        assert len(lsm.runs[0]) == 8  # old versions gone, not 16
        assert dict(lsm.range_search(DOMAIN))[0] == (200.0, 0.0)

    def test_tombstone_dropped_at_bottom_of_tree(self):
        lsm = small_lsm(size_ratio=2, auto_compact=False)
        fill(lsm, 8)
        lsm.delete(3)
        for oid in range(100, 108):
            lsm.insert(oid, (float(oid), 0.0), now=200.0)
        assert lsm.run_count == 2
        assert list(lsm.runs[1].tombstones) == [3]
        lsm.maybe_compact()
        assert lsm.run_count == 1
        # Nothing older than the merged run exists: the tombstone drops.
        assert list(lsm.runs[0].tombstones) == []
        assert lsm.compaction.tombstones_dropped == 1
        assert 3 not in dict(lsm.range_search(DOMAIN))
        assert lsm.validate() == []

    def test_merge_frees_window_pages(self):
        lsm = small_lsm(size_ratio=2, auto_compact=False)
        fill(lsm, 16)
        before = lsm.pager.freed_count
        lsm.compact_step()
        assert lsm.pager.freed_count > before

    def test_compaction_charges_reads(self):
        lsm = small_lsm(size_ratio=2, auto_compact=False)
        fill(lsm, 16)
        with lsm.pager.stats.category(IOCategory.UPDATE):
            lsm.compact_step()
        assert lsm.pager.stats.reads(IOCategory.UPDATE) > 0


class TestFlatUpdateCost:
    def test_per_update_io_does_not_grow_with_index_size(self):
        """The tentpole property at unit scale: the same update stream costs
        (nearly) the same against a 10x larger index."""
        costs = {}
        for n_seed in (200, 2000):
            pager = Pager()
            lsm = LSMRTree(
                pager,
                max_entries=8,
                config=LSMConfig(memtable_size=32, size_ratio=4, max_runs=12),
            )
            with pager.stats.category(IOCategory.BUILD):
                fill(lsm, n_seed)
                lsm.flush(reason="final")
                lsm.maybe_compact()
                # Warm-up window: absorb the post-seed transient (leftover
                # sub-memtable runs merging with the window's churn) so the
                # measured window sees the steady state.
                for i in range(256):
                    lsm.update(i % 64, None, (float(i % 997), 2.0), now=1e5 + i)
            with pager.stats.category(IOCategory.UPDATE):
                for i in range(256):
                    oid = i % 64
                    lsm.update(oid, None, (float(i % 997), 3.0), now=1e6 + i)
                lsm.flush(reason="final")
            costs[n_seed] = pager.stats.total(IOCategory.UPDATE) / 256
        assert costs[2000] <= costs[200] * 1.15, costs


class TestSnapshot:
    def _populated(self):
        lsm = small_lsm(auto_compact=False)
        fill(lsm, 20)
        lsm.delete(3)
        lsm.update(4, None, (44.0, 44.0), now=500.0)
        return lsm  # leaves a non-empty memtable and a pending tombstone

    def test_kind_tag(self):
        assert index_kind_of(self._populated()) == "lsm"

    def test_roundtrip_preserves_queries_and_config(self):
        lsm = self._populated()
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "lsm.snap")
            save_index(lsm, path)
            loaded = load_index(path)
        assert isinstance(loaded, LSMRTree)
        assert len(loaded) == len(lsm)
        assert loaded.config == lsm.config
        assert loaded.run_count == lsm.run_count
        assert dict(loaded.range_search(DOMAIN)) == dict(lsm.range_search(DOMAIN))
        assert loaded.validate() == []

    def test_save_load_save_is_byte_stable(self):
        lsm = self._populated()
        with tempfile.TemporaryDirectory() as d:
            first = os.path.join(d, "a.snap")
            second = os.path.join(d, "b.snap")
            save_index(lsm, first)
            save_index(load_index(first), second)
            with open(first, "rb") as fa, open(second, "rb") as fb:
                assert fa.read() == fb.read()

    def test_loaded_index_keeps_evolving(self):
        lsm = self._populated()
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "lsm.snap")
            save_index(lsm, path)
            loaded = load_index(path)
        fill(loaded, 40, start=100)
        loaded.flush(reason="final")
        loaded.maybe_compact()
        assert loaded.validate() == []
        assert len(loaded) == 19 + 40


class TestVerify:
    def _populated(self):
        lsm = small_lsm(auto_compact=False)
        fill(lsm, 20)
        lsm.delete(3)
        lsm.flush()
        return lsm

    def test_clean_index_verifies(self):
        report = verify_index(self._populated())
        assert report.ok
        assert report.kind == "lsm"
        assert report.checked_objects > 0

    def test_live_counter_drift_is_flagged(self):
        lsm = self._populated()
        lsm._live += 1
        report = verify_index(lsm)
        assert not report.ok
        assert any(v.code == "size-counter" for v in report.violations)

    def test_side_table_disagreement_is_flagged(self):
        lsm = self._populated()
        del lsm.runs[0].oids[0]
        report = verify_index(lsm)
        assert not report.ok
        assert any(v.code == "lsm-side-table" for v in report.violations)

    def test_useless_tombstone_is_flagged(self):
        lsm = self._populated()
        lsm.runs[-1].tombstones.append(4242)  # suppresses nothing
        report = verify_index(lsm)
        assert not report.ok
        assert any(v.code == "lsm-tombstone" for v in report.violations)


class TestObservability:
    def test_tree_stats_shape(self):
        lsm = small_lsm(size_ratio=2)
        fill(lsm, 40)
        lsm.range_search(DOMAIN)
        stats = lsm.collect_tree_stats()
        assert stats["kind"] == "lsm"
        assert stats["size"] == 40
        assert stats["n_runs"] == len(stats["run_sizes"]) == lsm.run_count
        assert stats["flushes"] == lsm.flushes
        assert stats["compaction"]["compactions"] >= 1
        assert stats["queries"] == 1
        assert stats["read_amplification"] > 0

    def test_metrics_counters(self):
        registry = set_enabled(True)
        registry.reset()
        try:
            lsm = small_lsm(size_ratio=2)
            fill(lsm, 32)
            lsm.range_search(DOMAIN)
            snapshot = get_registry().to_dict()
            counters = snapshot["counters"]
            assert counters["lsm.flush.count"] == lsm.flushes
            assert counters["lsm.flush.entries"] == 32
            assert counters["lsm.compaction.count"] >= 1
            assert counters["lsm.compaction.runs_merged"] >= 2
            assert "lsm.query.read_amplification" in snapshot["values"]
            assert "lsm.flush.time" in snapshot["timers"]
            assert "lsm.compaction.time" in snapshot["timers"]
        finally:
            set_enabled(False)

    def test_read_amplification_bounded_by_run_count(self):
        lsm = small_lsm(size_ratio=2, max_runs=4)
        fill(lsm, 256)
        for _ in range(10):
            lsm.range_search(Rect((0.0, 0.0), (50.0, 50.0)))
        assert lsm.read_amplification <= lsm.config.max_runs


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"memtable_size": 0},
            {"size_ratio": 1},
            {"max_runs": 1},
            {"run_fill": 0.0},
            {"run_fill": 1.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LSMConfig(**kwargs)
