"""Adaptive shard management: partitioners, hot-shard detection, cutover.

Covers the :mod:`repro.engine.rebalance` module end to end: the three
partition policies (grid / density / speed) and their snapshot documents,
the rebalancer's windowed skew detector with hysteresis, the plan
strategies, and the online ``apply_partition`` cutover on both the inline
and the parallel engines -- including atomicity on failure and the
category discipline (migration is BUILD work, never UPDATE/QUERY).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.geometry import Rect
from repro.engine import (
    BoundaryPartition,
    IndexKind,
    RebalancePolicy,
    ShardedIndex,
    ShardRebalancer,
    SpacePartition,
    SpeedPartition,
    density_boundaries,
    make_partition,
    partition_from_dict,
)
from repro.engine.rebalance import object_speeds
from repro.health import verify_index
from repro.parallel import ParallelShardedIndex, WorkerFailure
from repro.storage.iostats import IOCategory
from repro.storage.snapshot import build_document, load_sharded, save_sharded

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def _clustered_positions(n=40, seed=11):
    """Most objects dwell in one narrow slab (a flash crowd)."""
    rng = random.Random(seed)
    positions = {}
    for oid in range(n):
        if oid % 5 == 0:
            positions[oid] = (rng.uniform(0, 100), rng.uniform(0, 100))
        else:
            positions[oid] = (rng.uniform(2, 12), rng.uniform(0, 100))
    return positions


class TestBoundaryPartition:
    def test_rejects_non_increasing_boundaries(self):
        with pytest.raises(ValueError):
            BoundaryPartition(DOMAIN, [50.0, 50.0])
        with pytest.raises(ValueError):
            BoundaryPartition(DOMAIN, [60.0, 40.0])

    def test_rejects_boundaries_outside_domain(self):
        with pytest.raises(ValueError):
            BoundaryPartition(DOMAIN, [0.0, 50.0])  # on the lower edge
        with pytest.raises(ValueError):
            BoundaryPartition(DOMAIN, [50.0, 100.0])  # on the upper edge
        with pytest.raises(ValueError):
            BoundaryPartition(DOMAIN, [-5.0])

    def test_empty_boundaries_is_single_shard(self):
        partition = BoundaryPartition(DOMAIN, [])
        assert partition.n_shards == 1
        assert partition.region(0) == DOMAIN
        assert partition.intersecting(DOMAIN) == [0]

    def test_boundary_value_routes_to_upper_slab(self):
        partition = BoundaryPartition(DOMAIN, [30.0, 60.0], axis=0)
        assert partition.shard_of((29.999, 0.0)) == 0
        assert partition.shard_of((30.0, 0.0)) == 1  # half-open: upper slab
        assert partition.shard_of((60.0, 0.0)) == 2

    def test_regions_tile_the_domain_exactly(self):
        partition = BoundaryPartition(DOMAIN, [10.0, 45.0, 80.0], axis=0)
        regions = [partition.region(sid) for sid in range(partition.n_shards)]
        assert regions[0].lo == DOMAIN.lo
        assert regions[-1].hi == DOMAIN.hi
        for left, right in zip(regions, regions[1:]):
            assert left.hi[0] == right.lo[0]

    def test_intersecting_matches_shard_of_at_boundaries(self):
        import math

        partition = BoundaryPartition(DOMAIN, [30.0, 60.0], axis=0)
        for b in partition.boundaries():
            for x in (b, math.nextafter(b, -math.inf), math.nextafter(b, math.inf)):
                p = (x, 50.0)
                assert partition.intersecting(Rect(p, p)) == [partition.shard_of(p)]

    def test_from_points_balances_counts(self):
        positions = _clustered_positions()
        partition = BoundaryPartition.from_points(
            DOMAIN, 4, positions.values(), axis=0
        )
        counts = [0] * partition.n_shards
        for p in positions.values():
            counts[partition.shard_of(p)] += 1
        # Quantile cuts: no shard should hold more than half the objects,
        # where an equal-width grid would put ~80% in one slab.
        assert max(counts) <= len(positions) // 2
        grid_counts = [0] * 4
        grid = SpacePartition(DOMAIN, 4)
        for p in positions.values():
            grid_counts[grid.shard_of(p)] += 1
        assert max(counts) < max(grid_counts)

    def test_degenerate_mass_yields_valid_partition(self):
        # All objects at one coordinate: quantile cuts collapse; the
        # repaired cut list must still be strictly increasing and inside
        # the open domain interval (fewer shards beat an invalid cut).
        partition = BoundaryPartition.from_points(
            DOMAIN, 4, [(42.0, 1.0)] * 30, axis=0
        )
        bounds = partition.boundaries()
        assert all(0.0 < b < 100.0 for b in bounds)
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_density_boundaries_empty_values_fall_back(self):
        cuts = density_boundaries(DOMAIN, 0, [], 4)
        assert len(cuts) == 3
        assert all(0.0 < c < 100.0 for c in cuts)
        assert all(a < b for a, b in zip(cuts, cuts[1:]))


class TestSpeedPartition:
    def _histories(self):
        # Object 0 hops across the domain every report; 1..5 dwell.
        histories = {
            0: [((30.0 * i % 100.0, 50.0), 1000.0 + i) for i in range(10)]
        }
        for oid in range(1, 6):
            x = 10.0 + 3.0 * oid
            histories[oid] = [((x, 40.0), 1000.0 + i) for i in range(10)]
        return histories

    def test_object_speeds_orders_movers(self):
        speeds = object_speeds(self._histories())
        assert speeds[0] > speeds[1]
        assert all(speeds[oid] == 0.0 for oid in range(1, 6))

    def test_fast_mover_pinned_to_churn_shard(self):
        partition = SpeedPartition.from_histories(DOMAIN, 3, self._histories())
        assert partition.n_shards == 3
        assert partition.churn_sid == 2
        assert 0 in partition.fast_ids
        # Identity routing: object 0 goes to the churn shard wherever it is.
        assert partition.shard_for(0, (1.0, 1.0)) == partition.churn_sid
        assert partition.shard_for(0, (99.0, 99.0)) == partition.churn_sid
        # Dwellers route spatially through the inner partition.
        assert partition.shard_for(1, (13.0, 40.0)) == partition.shard_of(
            (13.0, 40.0)
        )

    def test_churn_shard_joins_every_fanout_last(self):
        partition = SpeedPartition.from_histories(DOMAIN, 4, self._histories())
        sids = partition.intersecting(Rect((0.0, 0.0), (1.0, 1.0)))
        assert sids[-1] == partition.churn_sid
        assert partition.region(partition.churn_sid) == DOMAIN

    def test_needs_two_shards(self):
        with pytest.raises(ValueError):
            SpeedPartition.from_histories(DOMAIN, 1, self._histories())

    def test_zero_threshold_means_no_fast_ids(self):
        partition = SpeedPartition.from_histories(
            DOMAIN, 3, self._histories(), speed_threshold=0.0
        )
        assert partition.fast_ids == frozenset()


class TestPartitionDocuments:
    def test_round_trip_grid(self):
        partition = SpacePartition(DOMAIN, 4)
        doc = partition.to_dict()
        assert doc["version"] == 2
        again = partition_from_dict(doc)
        assert isinstance(again, SpacePartition)
        assert again.to_dict() == doc

    def test_round_trip_density(self):
        partition = BoundaryPartition(DOMAIN, [12.5, 44.0, 80.0], axis=0)
        doc = partition.to_dict()
        again = partition_from_dict(doc)
        assert isinstance(again, BoundaryPartition)
        assert again.to_dict() == doc
        for x in (0.0, 12.5, 30.0, 44.0, 79.9, 80.0, 100.0):
            assert again.shard_of((x, 0.0)) == partition.shard_of((x, 0.0))

    def test_round_trip_speed(self):
        inner = BoundaryPartition(DOMAIN, [50.0], axis=0)
        partition = SpeedPartition(DOMAIN, inner, [3, 7])
        doc = partition.to_dict()
        again = partition_from_dict(doc)
        assert isinstance(again, SpeedPartition)
        assert again.to_dict() == doc
        assert again.fast_ids == frozenset({3, 7})
        assert again.shard_for(3, (1.0, 1.0)) == again.churn_sid

    def test_v1_grid_document_back_compat(self):
        # PR 3..5 snapshots carry only the bare grid triple.
        doc = {
            "n_shards": 3,
            "axis": 0,
            "domain": [[0.0, 0.0], [100.0, 100.0]],
        }
        partition = partition_from_dict(doc)
        assert isinstance(partition, SpacePartition)
        assert partition.n_shards == 3
        assert partition.shard_of((50.0, 0.0)) == 1

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ValueError):
            partition_from_dict(
                {"partitioner": "voronoi", "domain": [[0.0], [1.0]]}
            )
        with pytest.raises(ValueError):
            make_partition("voronoi", DOMAIN, 4)

    def test_factory_builds_all_kinds(self):
        positions = _clustered_positions()
        for name, cls in (
            ("grid", SpacePartition),
            ("density", BoundaryPartition),
            ("speed", SpeedPartition),
        ):
            partition = make_partition(name, DOMAIN, 4, positions=positions)
            assert isinstance(partition, cls)
            assert partition.n_shards == 4


class _FakeResult:
    def __init__(self, total):
        class _C:
            pass

        self.update_io = _C()
        self.update_io.total = total
        self.query_io = _C()
        self.query_io.total = 0


class _FakeEngine:
    """Scripted per-shard ledgers for detector unit tests."""

    def __init__(self, n_shards=4, n_objects=40):
        self.partition = SpacePartition(DOMAIN, n_shards)
        self.domain = DOMAIN
        self.totals = [0] * n_shards
        self._positions = _clustered_positions(n_objects)
        self.applied = []

    def shard_results(self):
        return [_FakeResult(t) for t in self.totals]

    def position_map(self):
        return dict(self._positions)

    def cross_move_counts(self):
        return {}

    def apply_partition(self, partition):
        self.applied.append(partition)
        self.partition = partition


class TestShardRebalancerDetection:
    def test_skew_of(self):
        assert ShardRebalancer.skew_of([10, 10, 10, 10]) == 1.0
        assert ShardRebalancer.skew_of([40, 0, 0, 0]) == 4.0
        assert ShardRebalancer.skew_of([]) == 0.0
        assert ShardRebalancer.skew_of([0, 0]) == 0.0

    def test_quiet_window_never_fires(self):
        rb = ShardRebalancer(RebalancePolicy(min_window_ios=64))
        engine = _FakeEngine()
        engine.totals = [40, 1, 1, 1]  # hot, but under the window floor
        assert not rb.maybe_rebalance(engine)
        assert engine.applied == []

    def test_fires_on_hot_window(self):
        rb = ShardRebalancer(RebalancePolicy(min_window_ios=64, hot_factor=2.0))
        engine = _FakeEngine()
        engine.totals = [400, 10, 10, 10]
        assert rb.maybe_rebalance(engine)
        assert len(engine.applied) == 1
        assert rb.rebalances == 1
        assert rb.events[0]["hot_shard"] == 0

    def test_hysteresis_blocks_refire_until_cooled(self):
        rb = ShardRebalancer(
            RebalancePolicy(min_window_ios=10, hot_factor=2.0, cool_factor=1.25)
        )
        engine = _FakeEngine()
        engine.totals = [400, 10, 10, 10]
        assert rb.maybe_rebalance(engine)
        # Still hot next window, but disarmed: no thrash.
        engine.totals = [800, 20, 20, 20]
        assert not rb.maybe_rebalance(engine)
        assert rb.rebalances == 1
        # A cool window re-arms...
        cool = engine.totals
        engine.totals = [t + 100 for t in cool]
        assert not rb.maybe_rebalance(engine)
        # ...so the next hot window fires again (positions unchanged, so
        # the density plan is identical -- shift the crowd to force a new cut).
        engine._positions = {
            oid: (x + 40.0 if x < 60.0 else x, y)
            for oid, (x, y) in engine._positions.items()
        }
        engine.totals = [engine.totals[0] + 400] + [
            t + 10 for t in engine.totals[1:]
        ]
        assert rb.maybe_rebalance(engine)
        assert rb.rebalances == 2

    def test_window_is_a_delta_not_cumulative(self):
        rb = ShardRebalancer(RebalancePolicy(min_window_ios=64, hot_factor=2.0))
        engine = _FakeEngine()
        engine.totals = [100, 100, 100, 100]
        assert not rb.maybe_rebalance(engine)  # flat: skew 1.0
        # Cumulative totals remain skew-free, but the *delta* is all shard 2.
        engine.totals = [100, 100, 500, 100]
        assert rb.maybe_rebalance(engine)
        assert rb.events[0]["hot_shard"] == 2

    def test_max_rebalances_is_a_hard_cap(self):
        rb = ShardRebalancer(
            RebalancePolicy(min_window_ios=1, hot_factor=2.0, max_rebalances=0)
        )
        engine = _FakeEngine()
        engine.totals = [400, 10, 10, 10]
        assert not rb.maybe_rebalance(engine)
        assert rb.skipped == 1

    def test_tiny_engines_skipped(self):
        rb = ShardRebalancer(RebalancePolicy(min_window_ios=1, min_objects=8))
        engine = _FakeEngine(n_objects=3)
        engine.totals = [400, 10, 10, 10]
        assert not rb.maybe_rebalance(engine)
        assert rb.skipped == 1

    def test_note_op_sweeps_every_check_every(self):
        rb = ShardRebalancer(RebalancePolicy(check_every=8, min_window_ios=1))
        engine = _FakeEngine()
        engine.totals = [400, 10, 10, 10]
        fired = [rb.note_op(engine) for _ in range(8)]
        assert fired == [False] * 7 + [True]

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            ShardRebalancer(RebalancePolicy(strategy="entropy"))


class TestRebalancePlans:
    def test_density_plan_none_when_boundaries_unchanged(self):
        rb = ShardRebalancer(RebalancePolicy(strategy="density"))
        engine = _FakeEngine()
        plan1 = rb.plan(engine, 0)
        assert plan1 is not None
        engine.partition = plan1
        assert rb.plan(engine, 0) is None  # same positions, same cuts

    def test_split_merge_keeps_shard_count(self):
        rb = ShardRebalancer(RebalancePolicy(strategy="split"))
        engine = _FakeEngine()
        plan = rb.plan(engine, 0)
        assert plan is not None
        assert plan.n_shards == engine.partition.n_shards
        # The hot slab's cut went in; some cold boundary went out.
        assert plan.boundaries() != engine.partition.boundaries()

    def test_split_merge_declines_point_mass(self):
        rb = ShardRebalancer(RebalancePolicy(strategy="split"))
        engine = _FakeEngine()
        engine._positions = {oid: (5.0, 50.0) for oid in range(20)}
        assert rb.plan(engine, 0) is None

    def test_speed_plan_promotes_churners(self):
        rb = ShardRebalancer(
            RebalancePolicy(strategy="speed", speed_move_threshold=3)
        )
        engine = _FakeEngine()
        engine.cross_move_counts = lambda: {0: 5, 1: 2, 2: 7}
        plan = rb.plan(engine, 0)
        assert isinstance(plan, SpeedPartition)
        assert plan.fast_ids == frozenset({0, 2})
        assert plan.n_shards == engine.partition.n_shards

    def test_speed_plan_keeps_existing_fast_ids(self):
        rb = ShardRebalancer(
            RebalancePolicy(strategy="speed", speed_move_threshold=3)
        )
        engine = _FakeEngine()
        inner = BoundaryPartition(DOMAIN, [30.0, 60.0], axis=0)
        engine.partition = SpeedPartition(DOMAIN, inner, [9])
        engine.cross_move_counts = lambda: {4: 3}
        plan = rb.plan(engine, 0)
        assert plan.fast_ids == frozenset({4, 9})

    def test_speed_plan_falls_back_to_density_without_churn(self):
        rb = ShardRebalancer(RebalancePolicy(strategy="speed"))
        engine = _FakeEngine()
        plan = rb.plan(engine, 0)
        assert isinstance(plan, BoundaryPartition)  # density re-cut instead


def _populate(index, positions, t0=1000.0):
    for i, (oid, p) in enumerate(sorted(positions.items())):
        index.insert(oid, p, now=t0 + i)


class TestApplyPartitionInline:
    def test_cutover_preserves_objects_and_queries(self):
        positions = _clustered_positions()
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
        _populate(index, positions)
        before = sorted(index.range_search(Rect((0.0, 0.0), (100.0, 100.0))))
        new = BoundaryPartition.from_points(
            DOMAIN, 4, positions.values(), axis=index.partition.axis
        )
        index.apply_partition(new)
        assert index.partition is new
        assert index.rebalances == 1
        assert len(index) == len(positions)
        after = sorted(index.range_search(Rect((0.0, 0.0), (100.0, 100.0))))
        assert after == before
        for oid, p in positions.items():
            assert index.owner_of(oid) == new.shard_for(oid, p)
        report = verify_index(index, kind=IndexKind.LAZY)
        assert report.ok, report.violations

    def test_migration_is_build_io_only(self):
        positions = _clustered_positions()
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
        stats = index.pager.stats
        with stats.category(IOCategory.UPDATE):
            _populate(index, positions)
        update_before = stats.total(IOCategory.UPDATE)
        query_before = stats.total(IOCategory.QUERY)
        build_before = stats.total(IOCategory.BUILD)
        new = BoundaryPartition.from_points(DOMAIN, 4, positions.values())
        index.apply_partition(new)
        assert stats.total(IOCategory.UPDATE) == update_before
        assert stats.total(IOCategory.QUERY) == query_before
        assert stats.total(IOCategory.BUILD) > build_before

    def test_merged_result_cumulative_across_cutover(self):
        positions = _clustered_positions()
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
        _populate(index, positions)
        n_before = index.merged_result().n_updates
        assert n_before == len(positions)
        index.apply_partition(
            BoundaryPartition.from_points(DOMAIN, 4, positions.values())
        )
        assert index.merged_result().n_updates == n_before

    def test_failed_cutover_leaves_old_state_serving(self):
        positions = _clustered_positions()
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
        _populate(index, positions)
        old_partition = index.partition
        old_shards = index.shards

        class _Bomb(BoundaryPartition):
            def shard_for(self, obj_id, point):
                if obj_id == 17:
                    raise RuntimeError("routing bomb")
                return super().shard_for(obj_id, point)

        with pytest.raises(RuntimeError):
            index.apply_partition(_Bomb(DOMAIN, [50.0], axis=0))
        # Atomicity: nothing swapped, the engine keeps serving.
        assert index.partition is old_partition
        assert index.shards is old_shards
        assert index.rebalances == 0
        assert len(index) == len(positions)
        got = sorted(oid for oid, _ in index.range_search(DOMAIN))
        assert got == sorted(positions)

    def test_store_facade_reads_live_shards(self):
        # Regression: ShardedStore snapshotted list(shards) at construction,
        # so after a rebalance the pager facade counted retired shards.
        positions = _clustered_positions()
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
        _populate(index, positions)
        store = index.pager
        index.apply_partition(
            BoundaryPartition.from_points(DOMAIN, 4, positions.values())
        )
        assert store is index.pager  # same facade object...
        live = sum(shard.pager.page_count for shard in index.shards)
        assert store.page_count == live  # ...now viewing the new shards
        sids = {sid for sid, _pid in store.iter_pids()}
        assert sids <= {shard.sid for shard in index.shards}

    def test_speed_cutover_routes_churner_to_churn_shard(self):
        positions = _clustered_positions()
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
        _populate(index, positions)
        inner = BoundaryPartition.from_points(
            DOMAIN, 3, positions.values(), axis=index.partition.axis
        )
        new = SpeedPartition(DOMAIN, inner, [0, 5])
        index.apply_partition(new)
        assert index.owner_of(0) == new.churn_sid
        assert index.owner_of(5) == new.churn_sid
        # Churners now update same-shard no matter how far they hop.
        moves_before = index.cross_shard_moves
        index.update(0, positions[0], (99.0, 99.0), now=2000.0)
        index.update(0, (99.0, 99.0), (1.0, 1.0), now=2001.0)
        assert index.cross_shard_moves == moves_before
        report = verify_index(index, kind=IndexKind.LAZY)
        assert report.ok, report.violations


class TestRebalancerOnEngine:
    def _run_hot_workload(self, index, stats, n_rounds=6):
        rng = random.Random(29)
        positions = _clustered_positions()
        with stats.category(IOCategory.UPDATE):
            _populate(index, positions)
        t = 2000.0
        for _ in range(n_rounds):
            with stats.category(IOCategory.UPDATE):
                for oid in sorted(positions):
                    p = positions[oid]
                    new = (
                        min(100.0, max(0.0, p[0] + rng.uniform(-2, 2))),
                        min(100.0, max(0.0, p[1] + rng.uniform(-2, 2))),
                    )
                    index.update(oid, p, new, now=t)
                    positions[oid] = new
                    t += 1.0
            with stats.category(IOCategory.QUERY):
                index.range_search(Rect((2.0, 0.0), (12.0, 100.0)))
        return positions

    def test_rebalancer_fires_on_skewed_run(self):
        rb = ShardRebalancer(
            RebalancePolicy(check_every=64, min_window_ios=32, hot_factor=1.8)
        )
        index = ShardedIndex(
            IndexKind.LAZY, DOMAIN, 4, max_entries=8, rebalancer=rb
        )
        positions = self._run_hot_workload(index, index.pager.stats)
        assert rb.rebalances >= 1
        assert index.rebalances == rb.rebalances
        assert rb.events[0]["skew"] >= 1.8
        assert len(index) == len(positions)
        report = verify_index(index, kind=IndexKind.LAZY)
        assert report.ok, report.violations
        doc = index.engine_dict()
        assert doc["rebalances"] == rb.rebalances
        assert doc["rebalancer"]["events"] == rb.events

    def test_rebalance_flattens_skew(self):
        # After the density re-cut the crowd slab is subdivided: the same
        # query load spreads over more shards than the grid gave it.
        rb = ShardRebalancer(
            RebalancePolicy(check_every=64, min_window_ios=32, hot_factor=1.8)
        )
        index = ShardedIndex(
            IndexKind.LAZY, DOMAIN, 4, max_entries=8, rebalancer=rb
        )
        self._run_hot_workload(index, index.pager.stats)
        assert rb.rebalances >= 1
        counts = [len(shard.index) for shard in index.shards]
        grid_counts = [0] * 4
        grid = SpacePartition(DOMAIN, 4)
        for _oid, (pos, _t) in index._positions.items():
            grid_counts[grid.shard_of(pos)] += 1
        assert max(counts) < max(grid_counts)


class TestSnapshotRoundTrip:
    def _built(self, partition=None, rebalance=False):
        positions = _clustered_positions()
        index = ShardedIndex(
            IndexKind.LAZY, DOMAIN,
            None if partition is not None else 4,
            max_entries=8, partition=partition,
        )
        _populate(index, positions)
        if rebalance:
            index.apply_partition(
                BoundaryPartition.from_points(DOMAIN, 4, positions.values())
            )
        return index, positions

    def test_density_partition_survives_save_load(self, tmp_path):
        partition = BoundaryPartition(DOMAIN, [15.0, 40.0, 70.0], axis=0)
        index, positions = self._built(partition)
        path = save_sharded(index, tmp_path / "snap.json")
        again = load_sharded(path)
        assert isinstance(again.partition, BoundaryPartition)
        assert again.partition.to_dict() == partition.to_dict()
        assert len(again) == len(index)
        assert sorted(again.range_search(DOMAIN)) == sorted(
            index.range_search(DOMAIN)
        )

    def test_speed_partition_survives_save_load(self, tmp_path):
        inner = BoundaryPartition(DOMAIN, [35.0, 65.0], axis=0)
        partition = SpeedPartition(DOMAIN, inner, [2, 8])
        index, positions = self._built(partition)
        path = save_sharded(index, tmp_path / "snap.json")
        again = load_sharded(path)
        assert isinstance(again.partition, SpeedPartition)
        assert again.partition.fast_ids == frozenset({2, 8})
        assert again.owner_of(2) == again.partition.churn_sid
        assert sorted(again.range_search(DOMAIN)) == sorted(
            index.range_search(DOMAIN)
        )

    def test_rebalance_count_survives_save_load(self, tmp_path):
        index, _ = self._built(rebalance=True)
        again = load_sharded(save_sharded(index, tmp_path / "snap.json"))
        assert again.rebalances == 1

    def test_cutover_then_snapshot_is_byte_identical(self, tmp_path):
        """A loaded engine must be able to replay the same cutover and land
        on the same bytes: positions (with timestamps) round-trip, replay
        order is canonical, and partition documents are exact."""
        index, positions = self._built()
        clone = load_sharded(save_sharded(index, tmp_path / "pre.json"))
        plan = BoundaryPartition.from_points(DOMAIN, 4, positions.values())
        index.apply_partition(plan)
        clone.apply_partition(partition_from_dict(plan.to_dict()))
        doc_a = build_document(index)
        doc_b = build_document(clone)
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(
            doc_b, sort_keys=True
        )


class TestApplyPartitionParallel:
    def test_thread_cutover_matches_inline(self):
        positions = _clustered_positions()
        inline = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
        par = ParallelShardedIndex(
            IndexKind.LAZY, DOMAIN, 4, mode="thread", max_entries=8
        )
        try:
            _populate(inline, positions)
            _populate(par, positions)
            plan = BoundaryPartition.from_points(DOMAIN, 4, positions.values())
            inline.apply_partition(plan)
            par.apply_partition(partition_from_dict(plan.to_dict()))
            assert par.rebalances == 1
            assert len(par) == len(inline)
            rect = Rect((5.0, 10.0), (60.0, 90.0))
            assert par.range_search(rect) == inline.range_search(rect)
            sig = lambda stats: sorted(  # noqa: E731
                (cat, c.reads, c.writes)
                for cat, c in stats.snapshot().items()
            )
            assert sig(par.pager.stats) == sig(inline.pager.stats)
            par_doc = par.engine_dict()
            assert par_doc["rebalances"] == 1
            assert par_doc["partition"] == plan.to_dict()
        finally:
            par.close()

    def test_worker_failure_during_cutover_falls_back(self, monkeypatch):
        positions = _clustered_positions()
        par = ParallelShardedIndex(
            IndexKind.LAZY, DOMAIN, 4, mode="thread", max_entries=8
        )
        try:
            _populate(par, positions)
            plan = BoundaryPartition.from_points(DOMAIN, 4, positions.values())

            def boom(targets):
                raise WorkerFailure("injected rebalance failure")

            monkeypatch.setattr(par, "_dispatch", boom)
            par.apply_partition(plan)
            # The cutover still completed -- inline, under the new partition.
            assert par.engine_dict()["parallel"]["fell_back"] is True
            assert par.partition.to_dict() == plan.to_dict()
            assert par.rebalances == 1
            assert len(par) == len(positions)
            got = sorted(oid for oid, _ in par.range_search(DOMAIN))
            assert got == sorted(positions)
            report = verify_index(par, kind=IndexKind.LAZY)
            assert report.ok, report.violations
        finally:
            par.close()

    def test_rebalancer_attaches_to_parallel_engine(self):
        rb = ShardRebalancer(
            RebalancePolicy(check_every=64, min_window_ios=32, hot_factor=1.8)
        )
        par = ParallelShardedIndex(
            IndexKind.LAZY, DOMAIN, 4, mode="thread", max_entries=8,
            rebalancer=rb,
        )
        try:
            runner = TestRebalancerOnEngine()
            positions = runner._run_hot_workload(par, par.pager.stats)
            assert rb.rebalances >= 1
            assert len(par) == len(positions)
            report = verify_index(par, kind=IndexKind.LAZY)
            assert report.ok, report.violations
        finally:
            par.close()
