"""Driver + DurabilityManager integration: logged replays are recoverable."""

import random

import pytest

from repro.citysim.trace import TraceRecord
from repro.core.geometry import Rect
from repro.durability import DurabilityManager, recover
from repro.engine import FlushPolicy, ShardedIndex, UpdateBuffer
from repro.storage.pager import Pager
from repro.workload.driver import IndexKind, SimulationDriver, make_index
from repro.workload.queries import RangeQuery
from tests.conftest import random_points

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def make_workload(seed=11, n_objects=12, n_updates=36, n_queries=4):
    rng = random.Random(seed)
    positions = random_points(rng, n_objects)
    updates = [
        TraceRecord(
            oid=i % n_objects,
            point=(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            t=float(i + 1),
        )
        for i in range(n_updates)
    ]
    queries = [
        RangeQuery(
            rect=Rect((10.0 * q, 0.0), (10.0 * q + 50.0, 80.0)),
            t=float((q + 1) * n_updates // n_queries) + 0.5,
        )
        for q in range(n_queries)
    ]
    return positions, updates, queries


def range_snapshot(index, rect=DOMAIN):
    return sorted(oid for oid, _ in index.range_search(rect))


class TestDriverDurability:
    @pytest.mark.parametrize("batched", [False, True])
    def test_recovered_index_matches_the_live_one(self, tmp_path, batched):
        positions, updates, queries = make_workload()
        index = make_index(IndexKind.LAZY, Pager(), DOMAIN)
        buffer = (
            UpdateBuffer(FlushPolicy(batch_size=8)) if batched else None
        )
        durability = DurabilityManager(tmp_path, sync="always")
        driver = SimulationDriver(
            index,
            index.pager,
            IndexKind.LAZY,
            update_buffer=buffer,
            durability=durability,
        )
        driver.load(positions, now=0.0)
        assert durability.checkpoints_taken == 1  # the post-load baseline
        result = driver.run(updates, queries)
        assert result.n_updates == len(updates)
        # No closing checkpoint: recovery must replay the whole stream.
        recovered, report = recover(tmp_path)
        assert report.records_replayed == len(updates)
        assert range_snapshot(recovered) == range_snapshot(index)
        for rect in (q.rect for q in queries):
            assert range_snapshot(recovered, rect) == range_snapshot(index, rect)

    def test_checkpoint_cadence_bounds_replay(self, tmp_path):
        positions, updates, _ = make_workload()
        index = make_index(IndexKind.LAZY, Pager(), DOMAIN)
        durability = DurabilityManager(
            tmp_path, sync="group:4", checkpoint_every=10
        )
        driver = SimulationDriver(
            index, index.pager, IndexKind.LAZY, durability=durability
        )
        driver.load(positions, now=0.0)
        driver.run(updates, [])
        durability.close()
        # 36 updates at a 10-update cadence: baseline + 3 automatic.
        assert durability.checkpoints_taken == 4
        recovered, report = recover(tmp_path)
        # Only the 6-update tail past the newest checkpoint replays.
        assert report.records_replayed == 6
        assert range_snapshot(recovered) == range_snapshot(index)

    def test_sharded_driver_gets_per_shard_wals(self, tmp_path):
        positions, updates, queries = make_workload()
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4)
        durability = DurabilityManager(tmp_path, sync="always")
        driver = SimulationDriver(
            index, index.pager, "sharded", durability=durability
        )
        driver.load(positions, now=0.0)
        driver.run(updates, queries)
        shard_dirs = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
        assert shard_dirs == [f"shard-{i:02d}" for i in range(4)]
        recovered, report = recover(tmp_path)
        assert report.kind == "sharded"
        assert report.records_replayed == len(updates)
        assert range_snapshot(recovered) == range_snapshot(index)

    def test_wal_counters_reach_the_metrics_registry(self, tmp_path):
        from repro.obs.metrics import set_enabled

        registry = set_enabled(True)
        registry.reset()
        try:
            positions, updates, _ = make_workload(n_updates=12)
            index = make_index(IndexKind.LAZY, Pager(), DOMAIN)
            durability = DurabilityManager(tmp_path, sync="group:4")
            driver = SimulationDriver(
                index,
                index.pager,
                IndexKind.LAZY,
                metrics=registry,
                durability=durability,
            )
            driver.load(positions, now=0.0)
            driver.run(updates, [])
            durability.close()
        finally:
            set_enabled(False)
        counters = registry.to_dict()["counters"]
        assert counters.get("wal.appends", 0) >= len(updates)
        assert counters.get("wal.fsyncs", 0) >= 1
        assert counters.get("wal.bytes", 0) > 0
        stats = durability.stats
        assert stats.appends >= len(updates)
        assert durability.metrics_dict()["wal"]["appends"] == stats.appends
