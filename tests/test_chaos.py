"""Chaos-layer tests: the fault proxy, and exactly-once across SIGKILL.

The proxy tests run against a local echo server.  The integration tests
spawn the real ``repro serve`` daemon as a subprocess under the real
:class:`~repro.resilience.Supervisor`, SIGKILL it mid-workload, and assert
the tentpole guarantees: every acked write survives the restart, and a
retry of an already-acked write dedups instead of double-applying.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.chaos import ChaosConfig, ChaosSchedule, FaultProxy, run_chaos
from repro.chaos.harness import _daemon_argv, _generate_trace
from repro.resilience import (
    ResilientServeClient,
    RetryPolicy,
    Supervisor,
    SupervisorPolicy,
    file_ready_check,
)
from repro.serve.protocol import ServeClient

# -- seeded schedules ---------------------------------------------------------


def test_chaos_schedule_is_deterministic_per_seed_and_profile():
    for profile in ("kill", "network", "storage", "mixed"):
        a = ChaosSchedule.generate(99, profile)
        b = ChaosSchedule.generate(99, profile)
        assert a.to_dict() == b.to_dict()
        assert a.seed_line() == b.seed_line()
    assert (
        ChaosSchedule.generate(1, "kill").to_dict()
        != ChaosSchedule.generate(2, "kill").to_dict()
    )
    with pytest.raises(ValueError):
        ChaosSchedule.generate(0, "nope")


def test_chaos_profiles_carry_their_fault_mix():
    kill = ChaosSchedule.generate(5, "kill")
    assert kill.kills == 2 and all(e.action == "kill" for e in kill.events)
    storage = ChaosSchedule.generate(5, "storage")
    assert [e.surgery for e in storage.events] == ["torn_tail", "crc_flip"]
    network = ChaosSchedule.generate(5, "network")
    assert kill.kills and not network.kills
    mixed = ChaosSchedule.generate(5, "mixed")
    assert {e.action for e in mixed.events} == {"kill", "reset", "stall"}


# -- the TCP fault proxy ------------------------------------------------------


class _EchoServer:
    """A minimal upstream: echoes every byte back."""

    def __init__(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()[:2]
        self._stop = False
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self) -> None:
        while not self._stop:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            while True:
                data = conn.recv(4096)
                if not data:
                    return
                conn.sendall(data)
        except OSError:
            pass
        finally:
            conn.close()

    def close(self) -> None:
        self._stop = True
        self._listener.close()


def test_fault_proxy_relays_and_resets_live_links():
    echo = _EchoServer()
    try:
        with FaultProxy(lambda: echo.address) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5.0)
            sock.sendall(b"ping")
            assert sock.recv(16) == b"ping"
            assert proxy.live_links == 1
            assert proxy.reset_all() == 1
            # The RST surfaces as a reset/EOF on the next read.
            try:
                data = sock.recv(16)
                assert data == b""
            except ConnectionError:
                pass
            sock.close()
            assert proxy.counters["connections"] == 1
            assert proxy.counters["resets"] == 1
    finally:
        echo.close()


def test_fault_proxy_stall_delays_forwarding():
    echo = _EchoServer()
    try:
        with FaultProxy(lambda: echo.address) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5.0)
            sock.sendall(b"warm")
            assert sock.recv(16) == b"warm"
            proxy.stall(0.4)
            assert proxy.stalled
            t0 = time.monotonic()
            sock.sendall(b"held")
            assert sock.recv(16) == b"held"
            assert time.monotonic() - t0 >= 0.2  # held through the stall
            sock.close()
            assert proxy.counters["stalls"] == 1
    finally:
        echo.close()


def test_fault_proxy_closes_client_when_upstream_is_down():
    def resolver():
        raise ValueError("daemon mid-restart")

    with FaultProxy(resolver) as proxy:
        sock = socket.create_connection(proxy.address, timeout=5.0)
        sock.settimeout(5.0)
        assert sock.recv(16) == b""  # immediate close, not a hang
        sock.close()
        deadline = time.monotonic() + 2.0
        while (
            proxy.counters["upstream_failures"] == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert proxy.counters["upstream_failures"] == 1


# -- exactly-once across a SIGKILL + supervised restart -----------------------


def _read_ready(path: Path):
    doc = json.loads(path.read_text(encoding="utf-8"))
    return str(doc["host"]), int(doc["port"])


def _spawn_env():
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    return env


def test_sigkill_mid_stream_dedups_the_ambiguous_retry(tmp_path):
    """Ack a stamped write, SIGKILL the daemon, restart through recovery,
    re-drive the same stamp: the ack must be a dedup of the original, and
    the object's position must have survived the crash."""
    cfg = ChaosConfig(run_dir=tmp_path, seed=11, objects=12, writers=1)
    trace = _generate_trace(cfg)
    ready = tmp_path / "ready.json"
    wal_dir = tmp_path / "wal"
    argv = _daemon_argv(cfg, trace, ready, wal_dir)
    log = open(tmp_path / "daemon.log", "ab")
    env = _spawn_env()
    supervisor = Supervisor(
        lambda: subprocess.Popen(argv, env=env, stdout=log, stderr=log),
        ready_check=file_ready_check(ready),
        policy=SupervisorPolicy(
            max_restarts=3, backoff_base=0.1, ready_timeout=60.0
        ),
    )
    runner = None
    try:
        supervisor.start()
        runner = threading.Thread(target=supervisor.run, daemon=True)
        runner.start()

        host, port = _read_ready(ready)
        client = ResilientServeClient(
            host, port, client_id="xo", timeout=5.0,
            policy=RetryPolicy(max_attempts=4, deadline_s=10.0),
        )
        acked = client.update(7, (42.0, 43.0), 2000.0, deadline_s=10.0)
        assert acked["ok"] and not acked.get("deduped")
        original_seq = acked["seq"]
        stamp_rid = client.last_rid
        client.close()

        pid = supervisor.child_pid
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if any(e.ready for e in supervisor.events):
                break
            time.sleep(0.05)
        assert any(e.ready for e in supervisor.events), "no supervised restart"
        assert supervisor.child_pid != pid

        host2, port2 = _read_ready(ready)
        with ServeClient(host2, port2, timeout=10.0) as retry:
            response = retry.request(
                "update",
                oid=7,
                point=[42.0, 43.0],
                t=2000.0,
                client="xo",
                rid=stamp_rid,
            )
            assert response["ok"] and response["deduped"]
            assert response["accepted"] == 1  # the original result, re-acked
            # Across a restart the cached ack's seq is the WAL sequence
            # (the write's durable name), not the per-boot ack counter.
            assert isinstance(response.get("seq", original_seq), int)
            stats = retry.stats()
            dedup = stats["service"]["dedup"]
            assert dedup["hits"] >= 1
            # The acked write itself survived the SIGKILL.
            fresh = retry.request(
                "range", rect=[[0.0, 0.0], [1000.0, 1000.0]], fresh=True
            )
            positions = {
                int(oid): tuple(pos) for oid, pos in fresh["matches"]
            }
            assert positions[7] == (42.0, 43.0)
    finally:
        supervisor.stop()
        if runner is not None:
            runner.join(timeout=30.0)
        log.close()


def test_chaos_kill_run_holds_every_invariant(tmp_path):
    """The full harness, kill profile, concurrent writers: zero lost acked
    writes, zero double-applies, clean verify, supervised recovery."""
    report = run_chaos(
        ChaosConfig(
            run_dir=tmp_path,
            seed=21,
            profile="kill",
            writers=2,
            objects=12,
            min_ops=25,
        )
    )
    assert report["ok"], json.dumps(report["invariants"], indent=2)
    invariants = report["invariants"]
    assert invariants["acked_writes_lost"] == 0
    assert invariants["double_applied_stamps"] == 0
    assert invariants["duplicate_objects"] == 0
    assert invariants["verify_ok"] is True
    assert invariants["supervisor_recovered"] is True
    assert report["faults"]["kills"] >= 1
    assert report["supervisor"]["restarts"] >= 1
    assert report["mttr"]["mean_s"] is not None
    assert report["workload"]["ops_acked"] >= 2 * 25
