"""Property-based snapshot tests: any workload, save/load, same answers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.rtree import LazyRTree
from repro.storage.pager import Pager
from repro.storage.snapshot import (
    load_ctrtree,
    load_lazy_rtree,
    save_ctrtree,
    save_lazy_rtree,
)

DOMAIN = Rect((0, 0), (1000, 1000))

coord = st.floats(min_value=0, max_value=1000, allow_nan=False, width=32)
step = st.tuples(
    st.sampled_from(["insert", "move", "delete"]),
    st.integers(0, 15),
    st.tuples(coord, coord),
)

QUERIES = [
    Rect((0, 0), (250, 250)),
    Rect((200, 200), (800, 800)),
    Rect((0, 0), (1000, 1000)),
]


def drive(tree, steps, needs_old):
    oracle = {}
    for op, oid, point in steps:
        if op == "insert" and oid not in oracle:
            tree.insert(oid, point)
            oracle[oid] = point
        elif op == "move" and oid in oracle:
            tree.update(oid, oracle[oid], point)
            oracle[oid] = point
        elif op == "delete" and oid in oracle:
            tree.delete(oid) if not needs_old else tree.delete(oid, oracle[oid])
            oracle.pop(oid)
    return oracle


def answers(tree):
    return [sorted(oid for oid, _ in tree.range_search(q)) for q in QUERIES]


@settings(max_examples=15, deadline=None)
@given(st.lists(step, max_size=80))
def test_lazy_rtree_roundtrip_preserves_answers(tmp_path_factory, steps):
    tree = LazyRTree(Pager(), max_entries=5)
    drive(tree, steps, needs_old=False)
    path = tmp_path_factory.mktemp("snap") / "lazy.json"
    save_lazy_rtree(tree, path)
    loaded = load_lazy_rtree(path)
    assert answers(loaded) == answers(tree)
    assert loaded.validate() == []
    assert len(loaded) == len(tree)


@settings(max_examples=12, deadline=None)
@given(st.lists(step, max_size=80))
def test_ctrtree_roundtrip_preserves_answers(tmp_path_factory, steps):
    tree = CTRTree(
        Pager(), DOMAIN, [Rect((100, 100), (400, 400)), Rect((600, 0), (900, 300))],
        max_entries=5, ct_params=CTParams(t_list=1),
    )
    drive(tree, steps, needs_old=False)
    path = tmp_path_factory.mktemp("snap") / "ct.json"
    save_ctrtree(tree, path)
    loaded = load_ctrtree(path)
    assert answers(loaded) == answers(tree)
    assert loaded.validate() == []
    assert loaded.region_count == tree.region_count


@settings(max_examples=10, deadline=None)
@given(st.lists(step, max_size=60), st.lists(step, max_size=40))
def test_ctrtree_post_reload_workload_equivalence(tmp_path_factory, before, after):
    """Running a workload across a save/load boundary must equal running it
    in one session."""
    def fresh():
        return CTRTree(
            Pager(), DOMAIN, [Rect((100, 100), (500, 500))],
            max_entries=5, ct_params=CTParams(t_list=1),
        )

    continuous = fresh()
    state = drive(continuous, before, needs_old=False)
    replay = {oid: pt for oid, pt in state.items()}

    snapshotted = fresh()
    drive(snapshotted, before, needs_old=False)
    path = tmp_path_factory.mktemp("snap") / "ct.json"
    save_ctrtree(snapshotted, path)
    resumed = load_ctrtree(path)

    # Make `after` applicable to both: seed oracle with the surviving state.
    oracle_a = dict(replay)
    oracle_b = dict(replay)
    for op, oid, point in after:
        for tree, oracle in ((continuous, oracle_a), (resumed, oracle_b)):
            if op == "insert" and oid not in oracle:
                tree.insert(oid, point)
                oracle[oid] = point
            elif op == "move" and oid in oracle:
                tree.update(oid, oracle[oid], point)
                oracle[oid] = point
            elif op == "delete" and oid in oracle:
                tree.delete(oid)
                oracle.pop(oid)
    assert answers(resumed) == answers(continuous)
    assert resumed.validate() == []
