"""Unit tests for the city simulation loop."""

import pytest

from repro.citysim import City, CitySimulator
from repro.core.params import SimulationParams


@pytest.fixture(scope="module")
def city():
    return City.generate(seed=4, n_buildings=25)


def small_params(n=60, **overrides):
    defaults = dict(
        n_objects=n,
        update_rate=n / 20.0,
        n_history=12,
        n_updates=5,
        n_warmup_max=30,
    )
    defaults.update(overrides)
    return SimulationParams(**defaults)


class TestSetup:
    def test_population_spawned(self, city):
        sim = CitySimulator(city, small_params(), seed=1)
        assert len(sim.objects) == 60
        assert all(o.building is not None for o in sim.objects)

    def test_report_interval_derived_from_rate(self, city):
        sim = CitySimulator(city, small_params(), seed=1)
        assert sim.report_interval == pytest.approx(20.0)

    def test_report_interval_override(self, city):
        sim = CitySimulator(city, small_params(), seed=1, report_interval=5.0)
        assert sim.report_interval == 5.0

    def test_rejects_zero_objects(self, city):
        with pytest.raises(ValueError):
            CitySimulator(city, small_params(), n_objects=0, seed=1)


class TestWarmup:
    def test_warmup_bounded_by_n_rmax(self, city):
        params = small_params(t_start=1.01, n_warmup_max=7)  # unreachable target
        # t_start > 1 is invalid per-params? t_start is warm-up threshold only.
        sim = CitySimulator(city, params, seed=1)
        assert sim.warm_up() == 7

    def test_warmup_stops_at_t_start(self, city):
        sim = CitySimulator(city, small_params(), seed=1)
        ticks = sim.warm_up()
        assert ticks <= sim.params.n_warmup_max
        assert sim.ground_fraction() >= sim.params.t_start or ticks == sim.params.n_warmup_max


class TestRun:
    def test_run_records_expected_counts(self, city):
        sim = CitySimulator(city, small_params(), seed=1)
        trace = sim.run()
        assert trace.min_samples() == 12 + 5
        assert len(trace.object_ids) == 60

    def test_trails_time_ordered(self, city):
        sim = CitySimulator(city, small_params(), seed=1)
        trace = sim.run(n_samples=8)
        for oid in trace.object_ids:
            times = [t for _, t in trace.trail(oid)]
            assert times == sorted(times)

    def test_positions_within_or_near_bounds(self, city):
        sim = CitySimulator(city, small_params(), seed=1)
        trace = sim.run(n_samples=10)
        margin = 50.0
        for oid in trace.object_ids:
            for (x, y), _t in trace.trail(oid):
                assert -margin <= x <= 1000 + margin
                assert -margin <= y <= 1000 + margin

    def test_deterministic_given_seed(self, city):
        a = CitySimulator(city, small_params(), seed=7).run(n_samples=6)
        b = CitySimulator(city, small_params(), seed=7).run(n_samples=6)
        assert a.trail(0) == b.trail(0)

    def test_seeds_vary_output(self, city):
        a = CitySimulator(city, small_params(), seed=7).run(n_samples=6)
        b = CitySimulator(city, small_params(), seed=8).run(n_samples=6)
        assert a.trail(0) != b.trail(0)

    def test_rejects_negative_samples(self, city):
        sim = CitySimulator(city, small_params(), seed=1)
        with pytest.raises(ValueError):
            sim.run(n_samples=-1)

    def test_occupancy_controller_reacts(self, city):
        sim = CitySimulator(city, small_params(t_fill=0.98, t_empty=0.99), seed=1)
        sim.run(n_samples=3)
        # Ground fraction can't stay >= 0.98, so the controller must be pushing.
        assert sim.model.ground_bias == 1

    def test_dwell_dominates_travel(self, city):
        """Most reports must come from dwelling objects -- the premise of
        change-tolerant indexing (paper Section 2)."""
        import math

        sim = CitySimulator(city, small_params(n=100), seed=2)
        trace = sim.run(n_samples=30)
        small_moves = 0
        total = 0
        for oid in trace.object_ids:
            trail = trace.trail(oid)
            for (p1, _), (p2, _) in zip(trail, trail[1:]):
                total += 1
                if math.dist(p1, p2) < 15.0:
                    small_moves += 1
        assert small_moves / total > 0.6


class TestChangedPlans:
    def test_continue_in_evicts_demolished_dwellers(self, city):
        sim = CitySimulator(city, small_params(), seed=3)
        sim.run(n_samples=4)
        changed = city.with_changes(remove=10, add=0, seed=5)
        surviving = {b.rect for b in changed.buildings}
        evicted_before = [
            o for o in sim.objects
            if o.building is not None and o.building.rect not in surviving
        ]
        sim.continue_in(changed)
        from repro.citysim.mobility import ObjectState

        for obj in evicted_before:
            assert obj.state == ObjectState.TRAVELING

    def test_future_destinations_come_from_new_plan(self, city):
        sim = CitySimulator(city, small_params(), seed=3)
        sim.run(n_samples=2)
        changed = city.with_changes(remove=5, add=5, seed=6)
        sim.continue_in(changed)
        sim.run(n_samples=40, warm_up=False)
        demolished = {b.rect for b in city.buildings} - {b.rect for b in changed.buildings}
        for obj in sim.objects:
            if obj.building is not None:
                assert obj.building.rect not in demolished
