"""The crash-anywhere invariant suite.

Every test here injects a failure into a logged run -- a crash mid-append,
a torn tail, a crash mid-checkpoint, a checkpoint published but not yet
truncated, bit rot, a lost segment -- and asserts the one property the
durability subsystem promises:

    ``recover(dir)`` yields an index whose range-query results and object
    count match an uncrashed run over the acknowledged prefix.

With ``sync="always"`` the acknowledged prefix *is* the durable prefix:
``log_update`` returning means the record is fsynced, so the harness's
count of acknowledged updates is exactly what recovery must reproduce.

The matrix covers the lazy R-tree, the CT-R-tree, and a 4-shard engine
(per-shard WALs merged back into one ledger by seq).
"""

import random

import pytest

from repro.core.geometry import Rect
from repro.durability import (
    DurabilityManager,
    FaultInjector,
    InjectedCrash,
    corrupt_record,
    drop_segment,
    recover,
    tear_tail,
    write_checkpoint,
)
from repro.engine import IndexKind, ShardedIndex, make_index
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points
from tests.test_engine import small_histories

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))
N_OBJECTS = 16
N_UPDATES = 48
QUERIES = [
    Rect((0.0, 0.0), (50.0, 50.0)),
    Rect((25.0, 25.0), (100.0, 100.0)),
    Rect((10.0, 40.0), (90.0, 70.0)),
    DOMAIN,
]

#: The acceptance matrix: a lazy R-tree, a CT-R-tree, a 4-shard engine.
KINDS = [IndexKind.LAZY, IndexKind.CT, "sharded4"]


def build_index(kind):
    if kind == "sharded4":
        return ShardedIndex(IndexKind.LAZY, DOMAIN, 4)
    rng = random.Random(99)
    if kind == IndexKind.CT:
        return make_index(
            IndexKind.CT, Pager(), DOMAIN, histories=small_histories(rng)
        )
    return make_index(kind, Pager(), DOMAIN)


def make_stream(seed=7):
    """Deterministic workload: initial positions + an update stream."""
    rng = random.Random(seed)
    positions = random_points(rng, N_OBJECTS)
    updates = []
    for i in range(N_UPDATES):
        updates.append(
            (
                i % N_OBJECTS,
                (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
                float(i + 1),
            )
        )
    return positions, updates


def logged_run(
    kind,
    directory,
    *,
    fault=None,
    checkpoint_at=None,
    segment_bytes=1 << 20,
):
    """Run the workload under a WAL until it completes or the fault fires.

    Mirrors the driver's unbuffered path: log (acknowledge) first, apply
    second.  Returns ``(index, acked, manager)`` where ``acked`` is the
    number of updates whose ``log_update`` returned -- the durable prefix
    under ``sync="always"``.
    """
    positions, updates = make_stream()
    index = build_index(kind)
    manager = DurabilityManager(
        directory, sync="always", fault=fault, segment_bytes=segment_bytes
    )
    manager.attach(index)
    ledger = {}
    for oid, point in positions.items():
        index.insert(oid, point, now=0.0)
        ledger[oid] = point
    manager.checkpoint()  # the baseline covering the (unlogged) bulk load
    acked = 0
    try:
        for step, (oid, new, t) in enumerate(updates):
            old = ledger[oid]
            manager.log_update(oid, old, new, t)
            acked += 1
            index.update(oid, old, new, now=t)
            manager.note_applied(1)
            ledger[oid] = new
            if checkpoint_at is not None and step + 1 == checkpoint_at:
                manager.checkpoint()
    except InjectedCrash:
        pass
    return index, acked, manager


def expected_positions(n_applied):
    """The oracle: load positions overlaid with the first ``n_applied``
    updates -- what an uncrashed run over the durable prefix would hold."""
    positions, updates = make_stream()
    state = dict(positions)
    for oid, new, _t in updates[:n_applied]:
        state[oid] = new
    return state


def assert_matches_prefix(index, n_applied):
    state = expected_positions(n_applied)
    assert len(index) == N_OBJECTS
    for rect in QUERIES:
        got = sorted(oid for oid, _ in index.range_search(rect))
        assert got == brute_force_range(state, rect), rect


class TestCrashPoints:
    """Live crashes injected at a physical event, per index family."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("crash_on_append,torn_bytes", [(12, 0), (30, 4)])
    def test_crash_mid_append(self, tmp_path, kind, crash_on_append, torn_bytes):
        fault = FaultInjector(
            crash_on_append=crash_on_append, torn_bytes=torn_bytes
        )
        _, acked, _ = logged_run(kind, tmp_path, fault=fault)
        assert acked < N_UPDATES  # the crash really happened
        recovered, report = recover(tmp_path)
        assert report.records_replayed == acked
        assert_matches_prefix(recovered, acked)

    @pytest.mark.parametrize("kind", KINDS)
    def test_mid_stream_checkpoint_bounds_replay(self, tmp_path, kind):
        # A checkpoint taken mid-stream moves the replay floor: recovery
        # starts from it and replays only the tail logged afterwards.
        fault = FaultInjector(crash_on_append=45, torn_bytes=2)
        _, acked, _ = logged_run(kind, tmp_path, fault=fault, checkpoint_at=24)
        assert 24 < acked < N_UPDATES
        recovered, report = recover(tmp_path)
        assert report.checkpoint_ordinal == 2
        assert report.records_replayed == acked - 24
        assert_matches_prefix(recovered, acked)

    @pytest.mark.parametrize("kind", KINDS)
    def test_crash_mid_checkpoint_falls_back(self, tmp_path, kind):
        # The baseline checkpoint succeeds (the injector starts unarmed);
        # the end-of-run checkpoint then dies after its tmp file is fully
        # written but before the atomic rename publishes it.
        fault = FaultInjector()
        _, acked, manager = logged_run(kind, tmp_path, fault=fault)
        assert acked == N_UPDATES
        fault.crash_on_checkpoint_replace = True
        with pytest.raises(InjectedCrash):
            manager.checkpoint()
        # The tmp file exists; the published set still ends at the baseline.
        assert any(p.name.endswith(".tmp") for p in tmp_path.iterdir())
        recovered, report = recover(tmp_path)
        assert report.checkpoint_ordinal == 1  # fell back to the baseline
        assert report.records_replayed == N_UPDATES
        assert report.tmp_files_removed >= 1
        assert_matches_prefix(recovered, N_UPDATES)

    @pytest.mark.parametrize("kind", KINDS)
    def test_crash_post_checkpoint_pre_truncate(self, tmp_path, kind):
        # A checkpoint is published but the process dies before the WAL
        # truncation pass: every record is covered, none may be replayed
        # twice, and repair retires the now-redundant segments.
        index, acked, manager = logged_run(kind, tmp_path)
        assert acked == N_UPDATES
        write_checkpoint(index, tmp_path, covered_seq=manager.last_seq)
        recovered, report = recover(tmp_path)
        assert report.records_replayed == 0
        assert report.records_skipped > 0  # the covered tail was read
        assert report.segments_truncated >= 1  # ...and retired by repair
        assert_matches_prefix(recovered, N_UPDATES)

    @pytest.mark.parametrize("kind", KINDS)
    def test_recovery_is_idempotent_after_repair(self, tmp_path, kind):
        fault = FaultInjector(crash_on_append=20, torn_bytes=3)
        _, acked, _ = logged_run(kind, tmp_path, fault=fault)
        _, report1 = recover(tmp_path)
        second, report2 = recover(tmp_path)
        assert report2.records_replayed == report1.records_replayed
        assert not report2.torn_tail  # repair trimmed the debris
        assert_matches_prefix(second, acked)


class TestPostMortemDamage:
    """File surgery on a completed (uncrashed, uncheckpointed-tail) run."""

    def _complete_run(self, tmp_path, kind=IndexKind.LAZY):
        _, acked, manager = logged_run(kind, tmp_path)
        manager.close()
        assert acked == N_UPDATES
        return acked

    def test_torn_tail_loses_only_the_last_record(self, tmp_path):
        self._complete_run(tmp_path)
        tear_tail(tmp_path, nbytes=3)
        recovered, report = recover(tmp_path)
        assert report.torn_tail
        assert report.records_replayed == N_UPDATES - 1
        assert_matches_prefix(recovered, N_UPDATES - 1)

    def test_corrupt_record_truncates_history_there(self, tmp_path):
        self._complete_run(tmp_path)
        # Record 0 in the segment is the baseline CHECKPOINT marker, so
        # corrupting record 10 leaves 9 replayable updates.
        corrupt_record(tmp_path, 10)
        recovered, report = recover(tmp_path)
        assert report.corrupt_segments == 1
        assert report.records_replayed == 9
        # Records past the CRC failure never even enter the ledger (the
        # scan stops there); the report flags the damage as a gap instead.
        assert report.gap_at_seq == 11
        assert_matches_prefix(recovered, 9)

    def test_missing_shard_segment_stops_at_the_gap(self, tmp_path):
        # Small segments force rotation so a *middle* segment can go
        # missing -- a numbering gap the directory scan reports directly.
        _, _acked, manager = logged_run("sharded4", tmp_path, segment_bytes=256)
        manager.close()
        shard_dirs = sorted(p for p in tmp_path.iterdir() if p.is_dir())
        assert len(shard_dirs) == 4
        from repro.durability import list_segments

        numbers = [n for n, _ in list_segments(shard_dirs[1])]
        assert len(numbers) >= 3
        drop_segment(shard_dirs[1], numbers[1])
        recovered, report = recover(tmp_path)
        assert report.missing_segments == [numbers[1]]
        assert report.gap_at_seq > 0
        assert 0 < report.records_replayed < N_UPDATES
        # Whatever prefix survived must still be consistent.
        assert_matches_prefix(recovered, report.records_replayed)

    def test_wal_only_recovery_needs_a_factory(self, tmp_path):
        from repro.durability import RecoveryError

        self._complete_run(tmp_path)
        for path in tmp_path.iterdir():
            if path.name.startswith("checkpoint-"):
                path.unlink()
        with pytest.raises(RecoveryError):
            recover(tmp_path)
        recovered, report = recover(
            tmp_path, index_factory=lambda: build_index(IndexKind.LAZY)
        )
        # No checkpoint means the bulk load is gone too, but every object
        # is updated during the stream, so the upsert replay materializes
        # all of them at their final oracle positions.
        assert report.checkpoint_ordinal == 0
        assert report.records_replayed == N_UPDATES
        assert_matches_prefix(recovered, N_UPDATES)
