"""Worker-failure injection: a dead shard worker degrades the parallel
engine to inline execution without losing acknowledged state.

The ``("crash",)`` fault hook makes a worker die without responding --
exactly the signature of a killed process.  After the fallback the engine
must hold the same objects at the same positions as an uninterrupted run,
pass the structural verifier, and tag the obs counters.
"""

from __future__ import annotations

import random

import pytest

from repro.core.geometry import Rect
from repro.engine import IndexKind
from repro.engine.buffer import PendingUpdate
from repro.health import verify_index
from repro.obs import get_registry, set_enabled
from repro.parallel import ParallelShardedIndex

from .conftest import brute_force_range

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))
N_SHARDS = 4
MODES = ["thread", "process"]


def _populate(par, n=60, seed=3):
    rng = random.Random(seed)
    positions = {}
    for oid in range(n):
        p = (rng.uniform(0, 100), rng.uniform(0, 100))
        par.insert(oid, p, now=1000.0 + oid)
        positions[oid] = p
    return positions, rng


def _crash(par, sid):
    par._workers[sid].submit(("crash",))


def _assert_degraded_and_consistent(par, positions):
    assert par.worker_failures == 1
    assert par.fallbacks == 1
    assert par.engine_dict()["parallel"]["fell_back"] is True
    assert len(par) == len(positions)
    rect = Rect((0.0, 0.0), (100.0, 100.0))
    assert sorted(oid for oid, _ in par.range_search(rect)) == sorted(positions)
    for oid, point in positions.items():
        hits = par.range_search(
            Rect((point[0] - 0.25, point[1] - 0.25),
                 (point[0] + 0.25, point[1] + 0.25))
        )
        assert oid in {h for h, _ in hits}
    report = verify_index(par)
    assert report.ok, report.summary()


@pytest.mark.parametrize("mode", MODES)
def test_crash_during_single_op_falls_back(mode):
    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        positions, rng = _populate(par)
        _crash(par, 0)
        # The next op that touches the dead worker triggers the fallback;
        # the op itself must still be applied (inline).
        victim = next(oid for oid, sid in par._owners.items() if sid == 0)
        new_point = (rng.uniform(0, 100), rng.uniform(0, 100))
        par.update(victim, positions[victim], new_point, now=2000.0)
        positions[victim] = new_point
        _assert_degraded_and_consistent(par, positions)


@pytest.mark.parametrize("mode", MODES)
def test_crash_mid_batch_applies_full_batch(mode):
    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        positions, rng = _populate(par)
        _crash(par, 1)
        batch = []
        for seq, oid in enumerate(sorted(positions)):
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            batch.append(
                PendingUpdate(oid, positions[oid], p, 3000.0 + seq, seq=seq)
            )
            positions[oid] = p
        applied = par.apply_batch(batch)
        # The returned count covers the full batch: acked on workers before
        # the death was detected, plus the remainder re-applied inline.
        assert applied == len(batch)
        _assert_degraded_and_consistent(par, positions)


@pytest.mark.parametrize("mode", MODES)
def test_crash_during_query_falls_back(mode):
    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        positions, _ = _populate(par)
        _crash(par, 2)
        rect = Rect((10.0, 10.0), (90.0, 90.0))
        hits = sorted(oid for oid, _ in par.range_search(rect))
        assert hits == brute_force_range(positions, rect)
        _assert_degraded_and_consistent(par, positions)


@pytest.mark.parametrize("mode", MODES)
def test_failure_counters_are_tagged(mode):
    registry = set_enabled(True)
    registry.reset()
    try:
        with ParallelShardedIndex(
            IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
        ) as par:
            positions, _ = _populate(par, n=20)
            _crash(par, 0)
            par.range_search(Rect((0.0, 0.0), (100.0, 100.0)))
            assert get_registry().counter_value("parallel.worker_failures") == 1
            assert get_registry().counter_value("parallel.fallback") == 1
    finally:
        registry.reset()
        set_enabled(False)


@pytest.mark.parametrize("mode", MODES)
def test_only_one_fallback_ever(mode):
    """Repeated trouble after the cutover must not stack fallbacks."""
    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        positions, rng = _populate(par, n=24)
        _crash(par, 0)
        par.range_search(Rect((0.0, 0.0), (100.0, 100.0)))
        assert par.fallbacks == 1
        for oid in list(positions)[:6]:
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            par.update(oid, positions[oid], p, now=4000.0 + oid)
            positions[oid] = p
        assert par.fallbacks == 1
        assert par.worker_failures == 1
        _assert_degraded_and_consistent(par, positions)
        par.close()
        par.close()  # idempotent
