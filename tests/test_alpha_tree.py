"""Unit tests for the alpha-tree (loose MBRs, Section 2.2)."""

import pytest

from repro.rtree import AlphaTree, LazyRTree
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points, random_query


@pytest.fixture
def tree(pager):
    return AlphaTree(pager, max_entries=8)


class TestConstruction:
    def test_default_alpha_is_papers(self, tree):
        assert tree.alpha == 0.1

    def test_rejects_zero_alpha(self, pager):
        with pytest.raises(ValueError):
            AlphaTree(pager, alpha=0.0)


class TestLooseMBRs:
    def test_expansion_overshoots_minimum(self, pager):
        tree = AlphaTree(pager, max_entries=8, alpha=0.5)
        tree.insert(0, (0.0, 0.0))
        tree.insert(1, (10.0, 10.0))  # forces an expansion
        (leaf,) = list(tree.tree.iter_leaves())
        tight = leaf.tight_mbr()
        assert leaf.mbr.contains_rect(tight)
        assert leaf.mbr.area > tight.area

    def test_more_tolerant_than_lazy(self, rng):
        """The whole point: alpha buys extra lazy hits on the same workload."""
        points = random_points(rng, 150)
        moves = []
        state = dict(points)
        for _ in range(1500):
            oid = rng.randrange(150)
            new = (
                min(max(state[oid][0] + rng.gauss(0, 2), 0), 100),
                min(max(state[oid][1] + rng.gauss(0, 2), 0), 100),
            )
            moves.append((oid, state[oid], new))
            state[oid] = new

        def run(cls):
            tree = cls(Pager(), max_entries=8)
            for oid, point in points.items():
                tree.insert(oid, point)
            for oid, old, new in moves:
                tree.update(oid, old, new)
            return tree

        lazy = run(LazyRTree)
        alpha = run(AlphaTree)
        assert alpha.lazy_hits > lazy.lazy_hits

    def test_queries_correct_despite_loose_mbrs(self, tree, rng):
        points = random_points(rng, 150)
        for oid, point in points.items():
            tree.insert(oid, point)
        for _ in range(600):
            oid = rng.randrange(150)
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
        for _ in range(25):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)

    def test_split_retightens_mbrs(self, pager):
        tree = AlphaTree(pager, max_entries=4, alpha=1.0)
        for i in range(40):
            tree.insert(i, (float(i), float(i)))
        # After splits the invariant still holds: entries within node MBRs.
        assert tree.validate() == []


class TestLifecycle:
    def test_full_mixed_workload(self, tree, rng):
        points = random_points(rng, 100)
        for oid, point in points.items():
            tree.insert(oid, point)
        for oid in list(points)[::4]:
            assert tree.delete(oid)
            del points[oid]
        for _ in range(300):
            oid = rng.choice(list(points))
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
        got = sorted(oid for oid, _ in tree.tree.iter_objects())
        assert got == sorted(points)
