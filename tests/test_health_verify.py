"""The structural verifier: clean indexes pass, corruption is found,
repairable corruption is actually repaired."""

from __future__ import annotations

import random

import pytest

from repro.btree.lazy import LazyBPlusTree
from repro.core.geometry import Rect
from repro.engine import IndexKind, ShardedIndex, make_index
from repro.health import repair_index, verify_index
from repro.storage.pager import Pager

from .conftest import dwell_trail

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def _histories(rng: random.Random, n: int = 12):
    spots = [(20.0, 20.0), (80.0, 30.0), (50.0, 80.0)]
    return {oid: dwell_trail(rng, spots, dwell_reports=10) for oid in range(n)}


def _populated(kind: str, rng: random.Random, n: int = 40):
    pager = Pager()
    index = make_index(
        kind, pager, DOMAIN, histories=_histories(rng), query_rate=1.0
    )
    positions = {}
    for oid in range(n):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        index.insert(oid, point, now=600.0 + oid)
        positions[oid] = point
    for oid in range(0, n, 3):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        index.update(oid, positions[oid], point, now=700.0 + oid)
        positions[oid] = point
    return index, positions


@pytest.mark.parametrize("kind", IndexKind.ALL)
def test_clean_index_verifies(kind, rng):
    index, _ = _populated(kind, rng)
    report = verify_index(index)
    assert report.ok, report.summary()
    assert report.kind == kind
    assert report.checked_objects > 0
    assert report.to_dict()["ok"] is True


def test_sharded_index_verifies(rng):
    index = ShardedIndex("lazy", DOMAIN, 4)
    positions = {}
    for oid in range(60):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        index.insert(oid, point, now=float(oid))
        positions[oid] = point
    for oid in range(0, 60, 2):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        index.update(oid, positions[oid], point, now=100.0 + oid)
        positions[oid] = point
    report = verify_index(index)
    assert report.ok, report.summary()
    assert report.kind == "sharded"


def test_lazy_bptree_verifies(pager, rng):
    tree = LazyBPlusTree(pager)
    for oid in range(50):
        tree.insert(oid, rng.uniform(0, 1000))
    report = verify_index(tree)
    assert report.ok, report.summary()


def _first_leaf(tree):
    pager = tree.pager
    node = pager.inspect(tree.root_pid)
    while not node.is_leaf:
        node = pager.inspect(node.entries[0].child)
    return node


def test_detects_and_repairs_escaped_mbr(rng):
    index, _ = _populated("lazy", rng)
    # Teleport one stored point far outside its leaf's (and ancestors')
    # MBR -- the shape of a lost in-place update.
    leaf = _first_leaf(index.tree)
    entry = leaf.entries[0]
    entry.rect = Rect((999.0, 999.0), (999.0, 999.0))
    index.pager.write(leaf)
    report = verify_index(index)
    assert not report.ok
    assert report.by_code("mbr-containment")
    assert all(v.repairable for v in report.by_code("mbr-containment"))
    fixed = repair_index(index)
    assert fixed.mbrs_widened > 0
    assert verify_index(index).ok


def test_detects_and_repairs_stale_hash_entry(rng):
    index, _ = _populated("lazy", rng)
    leaf = _first_leaf(index.tree)
    victim = leaf.entries[0].child
    # Point the secondary hash at a bogus page: a stale entry, exactly
    # what a torn leaf split would leave behind.
    wrong = _first_leaf(index.tree).pid + 10_000
    index.hash.set(victim, wrong)
    report = verify_index(index)
    assert not report.ok
    stale = report.by_code("hash-stale")
    assert stale and all(v.repairable for v in stale)
    fixed = repair_index(index)
    assert fixed.hash_repointed >= 1
    after = verify_index(index)
    assert after.ok, after.summary()
    assert index.hash.peek(victim) == leaf.pid


def test_detects_and_repairs_orphan_hash_entry(rng):
    index, _ = _populated("lazy", rng)
    index.hash.set(999_999, _first_leaf(index.tree).pid)
    report = verify_index(index)
    assert not report.ok
    assert report.by_code("hash-orphan")
    fixed = repair_index(index)
    assert fixed.hash_orphans_removed == 1
    assert verify_index(index).ok
    assert index.hash.peek(999_999) is None


def test_detects_ct_stale_fill_and_repairs(rng):
    index, _ = _populated("ct", rng)
    # Find a qs-entry with a chain and lie about its fill counter.
    corrupted = False
    for _node, qs in index.iter_qs_entries():
        if qs.chain:
            qs.fills[0] = qs.fills[0] + 7
            corrupted = True
            break
    if not corrupted:
        pytest.skip("trace mined no chained qs-regions at this seed")
    report = verify_index(index)
    assert not report.ok
    assert report.by_code("stale-fill")
    fixed = repair_index(index)
    assert fixed.fills_recomputed >= 1
    assert verify_index(index).ok


def test_detects_sharded_router_staleness(rng):
    index = ShardedIndex("lazy", DOMAIN, 4)
    for oid in range(40):
        index.insert(oid, (rng.uniform(0, 100), rng.uniform(0, 100)))
    # Corrupt the owner map: claim an object lives on the wrong shard.
    victim = next(iter(index._owner))
    index._owner[victim] = (index._owner[victim] + 1) % 4
    report = verify_index(index)
    assert not report.ok
    assert report.by_code("router-stale") or report.by_code("router-range")
    repair_index(index)
    assert verify_index(index).ok


def test_wrapper_is_unwrapped(rng):
    from repro.health import SelfHealingIndex

    inner, _ = _populated("lazy", rng)
    wrapper = SelfHealingIndex(inner, "lazy", DOMAIN)
    report = verify_index(wrapper)
    assert report.ok
    assert report.kind == "lazy"


def test_registry_verifier_capability():
    from repro.engine import get_spec, register_index, unregister_index
    from repro.engine.registry import IndexSpec

    class Fake:
        pager = None

        def __len__(self):
            return 0

    spec = get_spec("lazy")
    fake_spec = IndexSpec(
        kind="fake-verified",
        label="fake",
        factory=lambda pager, domain, options: Fake(),
        delete=spec.delete,
        verifier=lambda index: ["synthetic violation"],
    )
    register_index(fake_spec)
    try:
        report = verify_index(Fake(), kind="fake-verified")
        assert not report.ok
        assert "synthetic violation" in report.violations[0].message
    finally:
        unregister_index("fake-verified")


def test_violation_summary_and_str(rng):
    index, _ = _populated("lazy", rng)
    index.hash.set(999_999, 1)
    report = verify_index(index)
    text = report.summary()
    assert "lazy" in text and "1" in text
    assert "hash-orphan" in str(report.violations[0])
