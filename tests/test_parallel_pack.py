"""Columnar apply-batch framing (repro.parallel.pack): parity tests.

The bulk coordinate columns of ``("apply", category, ops)`` sub-batches
travel as one flat binary frame instead of a pickle; these tests pin that
the frame round-trips to the exact tuple list, that unsupported shapes
fall back to pickle, and that a real worker -- over shared memory when the
host supports it and over the forced pipe either way -- applies packed
batches with results identical to the historical framing.
"""

import multiprocessing as mp
import pickle

import pytest

from repro.core.geometry import Rect
from repro.engine.registry import IndexKind, IndexOptions
from repro.parallel.pack import MAGIC, is_packed, pack_ops, unpack_ops
from repro.parallel.shm import decode_frames, shm_available
from repro.parallel.workers import ProcessWorker, encode_cmd

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))

OPS = [
    ("insert", 7, (1.0, 2.0), 0.5),
    ("update", 7, (1.0, 2.0), (3.0, 4.0), 1.0),
    ("update", 9, None, (5.0, 6.0), 1.5),
    ("insert", 2**40, (99.5, 0.25), 2.0),
]


class TestFrame:
    def test_round_trip_exact(self):
        frame = pack_ops(OPS)
        assert frame is not None
        assert is_packed(frame)
        assert unpack_ops(frame) == OPS

    def test_round_trip_matches_pickle_semantics(self):
        frame = pack_ops(OPS)
        assert unpack_ops(frame) == pickle.loads(pickle.dumps(OPS))

    @pytest.mark.parametrize(
        "ops",
        [
            [],  # nothing to pack
            [("delete", 1, (0.0, 0.0), 0.5)],  # deletes are not modelled
            [("insert", 1, (0.0, 0.0, 0.0), 0.5)],  # 3-D
            [("insert", 1, (0, 0.0), 0.5)],  # int coordinate
            [("insert", 1.5, (0.0, 0.0), 0.5)],  # non-int oid
            [("insert", 1, (0.0, 0.0), 1)],  # int timestamp
            [("update", 1, (0.0, 0.0, 0.0), (1.0, 1.0), 0.5)],  # 3-D old
            [("ping",)],
        ],
    )
    def test_unsupported_shapes_fall_back(self, ops):
        assert pack_ops(ops) is None

    def test_mixed_batch_with_one_bad_op_falls_back(self):
        assert pack_ops(OPS + [("delete", 1, (0.0, 0.0), 9.0)]) is None

    def test_magic_is_not_a_pickle_prefix(self):
        assert not MAGIC.startswith(b"\x80")


class TestEncodeDecode:
    def test_encode_cmd_emits_frame_for_hot_shapes(self):
        data = encode_cmd(("apply", "update", OPS))
        assert MAGIC in data
        assert decode_frames(data) == ("apply", "update", OPS)

    def test_encode_cmd_pickles_unsupported_batches(self):
        ops = [("delete", 3, (1.0, 1.0), 0.5)]
        data = encode_cmd(("apply", "update", ops))
        assert MAGIC not in data
        assert decode_frames(data) == ("apply", "update", ops)

    def test_frame_and_pickle_paths_decode_identically(self):
        packed = decode_frames(encode_cmd(("apply", "update", OPS)))
        header = pickle.dumps(("apply", "update"), protocol=pickle.HIGHEST_PROTOCOL)
        pickled = decode_frames(
            header + pickle.dumps(OPS, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert packed == pickled


def _exercise_worker(transport: str) -> None:
    worker = ProcessWorker(
        IndexKind.LAZY,
        0,
        DOMAIN,
        IndexOptions(max_entries=5),
        transport=transport,
    )
    try:
        assert worker.result().get("ready")
        worker.submit(
            (
                "apply",
                "update",
                [
                    ("insert", 1, (10.0, 10.0), 0.0),
                    ("insert", 2, (20.0, 20.0), 0.5),
                    ("update", 1, (10.0, 10.0), (30.0, 30.0), 1.0),
                ],
            )
        )
        resp = worker.result()
        assert resp["ok"] and resp["applied"] == 3
        # A delete falls back to the pickle body on the same connection.
        worker.submit(("apply", "update", [("delete", 2, (20.0, 20.0), 2.0)]))
        resp = worker.result()
        assert resp["ok"] and resp["removed"]
        worker.submit(("query", "query", (0.0, 0.0), (100.0, 100.0)))
        resp = worker.result()
        assert sorted(oid for oid, _ in resp["matches"]) == [1]
    finally:
        worker.close()


def test_pipe_worker_applies_packed_batches():
    _exercise_worker("pipe")


@pytest.mark.skipif(
    not shm_available(mp.get_context("fork"))
    if "fork" in mp.get_all_start_methods()
    else True,
    reason="shared-memory transport unavailable",
)
def test_shm_worker_applies_packed_batches():
    _exercise_worker("shm")
