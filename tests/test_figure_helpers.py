"""Tests for small figure-module helpers that the smoke runs don't hit."""

import pytest

from repro.experiments.figure8 import DEFAULT_RATIOS, crossover_ratio
from repro.experiments.harness import ExperimentResult
from repro.workload.driver import IndexKind


def fake_figure8(ct_series, alpha_series, ratios=(1.0, 10.0, 100.0)):
    result = ExperimentResult(
        title="fake",
        columns=["ratio", IndexKind.LABELS[IndexKind.CT], IndexKind.LABELS[IndexKind.ALPHA]],
    )
    for ratio, ct, alpha in zip(ratios, ct_series, alpha_series):
        result.add(
            **{
                "ratio": ratio,
                IndexKind.LABELS[IndexKind.CT]: ct,
                IndexKind.LABELS[IndexKind.ALPHA]: alpha,
            }
        )
    return result


class TestCrossoverRatio:
    def test_finds_first_win(self):
        result = fake_figure8(ct_series=(100, 90, 50), alpha_series=(80, 95, 100))
        assert crossover_ratio(result, IndexKind.CT, IndexKind.ALPHA) == 10.0

    def test_none_when_never_wins(self):
        result = fake_figure8(ct_series=(100, 100, 100), alpha_series=(50, 50, 50))
        assert crossover_ratio(result, IndexKind.CT, IndexKind.ALPHA) is None

    def test_immediate_win(self):
        result = fake_figure8(ct_series=(10, 10, 10), alpha_series=(50, 50, 50))
        assert crossover_ratio(result, IndexKind.CT, IndexKind.ALPHA) == 1.0


class TestModuleConstants:
    def test_figure8_ratio_span_matches_paper(self):
        assert min(DEFAULT_RATIOS) <= 0.01
        assert max(DEFAULT_RATIOS) >= 1000.0

    def test_figure9_sizes_match_paper(self):
        from repro.experiments.figure9 import DEFAULT_SIZES_PCT

        assert DEFAULT_SIZES_PCT[0] == 0.1
        assert DEFAULT_SIZES_PCT[-1] == 2.0

    def test_figure10_uses_table1_baseline_ratio(self):
        from repro.experiments.figure10 import DEFAULT_RATIO

        assert DEFAULT_RATIO == 100.0  # lambda_u / lambda_q from Table 1

    def test_figure12_sweeps_all_four_thresholds(self):
        from repro.experiments.figure12 import DEFAULT_SWEEPS

        assert set(DEFAULT_SWEEPS) == {"t_rate", "t_time", "t_dist", "t_area"}
        for values in DEFAULT_SWEEPS.values():
            assert len(values) == 5

    def test_index_kind_labels_complete(self):
        assert set(IndexKind.LABELS) == set(IndexKind.ALL)
