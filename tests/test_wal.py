"""Tests for the write-ahead log: framing, sync policies, rotation, scans."""

import os
import zlib

import pytest

from repro.durability import (
    FaultInjector,
    InjectedCrash,
    SyncPolicy,
    WalOp,
    WalRecord,
    WriteAheadLog,
    corrupt_record,
    drop_segment,
    list_segments,
    scan_directory,
    scan_segment,
    tear_tail,
)
from repro.durability.wal import _HEADER, segment_path


class TestRecordFraming:
    def test_payload_round_trip(self):
        record = WalRecord(
            op=WalOp.UPDATE, seq=42, t=3.5, oid=7,
            point=(1.25, 2.5), old_point=(0.5, 0.75),
        )
        assert WalRecord.from_payload(record.to_payload()) == record

    def test_markers_omit_optional_fields(self):
        record = WalRecord(op=WalOp.FLUSH, seq=3)
        decoded = WalRecord.from_payload(record.to_payload())
        assert decoded.oid is None
        assert decoded.point is None
        assert decoded.t is None

    def test_frame_is_length_prefixed_and_crc_checked(self):
        record = WalRecord(op=WalOp.INSERT, seq=1, oid=1, point=(1.0, 2.0), t=0.0)
        frame = record.to_frame()
        length, crc = _HEADER.unpack_from(frame, 0)
        payload = frame[_HEADER.size:]
        assert length == len(payload)
        assert crc == zlib.crc32(payload)

    def test_undecodable_payload_raises(self):
        from repro.durability.wal import WalError

        with pytest.raises(WalError):
            WalRecord.from_payload(b"not json at all")


class TestSyncPolicy:
    def test_parse_forms(self):
        assert SyncPolicy.parse("always").mode == SyncPolicy.ALWAYS
        assert SyncPolicy.parse("onflush").mode == SyncPolicy.ON_FLUSH
        group = SyncPolicy.parse("group:16")
        assert (group.mode, group.every) == (SyncPolicy.GROUP, 16)
        assert SyncPolicy.parse("group").every == 8

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            SyncPolicy.parse("sometimes")
        with pytest.raises(ValueError):
            SyncPolicy(mode="group", every=0)

    def test_spec_round_trips(self):
        for spec in ("always", "group:4", "onflush"):
            assert SyncPolicy.parse(spec).spec() == spec

    def test_always_fsyncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync="always")
        for i in range(5):
            wal.append(WalOp.INSERT, oid=i, point=(0.0, 0.0), t=float(i))
        assert wal.stats.fsyncs == 5
        wal.close()

    def test_group_commit_amortizes_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync="group:4")
        for i in range(8):
            wal.append(WalOp.INSERT, oid=i, point=(0.0, 0.0), t=float(i))
        assert wal.stats.fsyncs == 2
        wal.append(WalOp.INSERT, oid=9, point=(0.0, 0.0), t=9.0)
        wal.close()  # close drains the partial group
        assert wal.stats.fsyncs == 3

    def test_onflush_syncs_only_at_markers(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync="onflush")
        for i in range(6):
            wal.append(WalOp.INSERT, oid=i, point=(0.0, 0.0), t=float(i))
        assert wal.stats.fsyncs == 0
        wal.append(WalOp.FLUSH)
        assert wal.stats.fsyncs == 1
        wal.close()


class TestWriteAheadLog:
    def test_appends_assign_monotone_seqs(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            seqs = [
                wal.append(WalOp.INSERT, oid=i, point=(0.0, 0.0), t=0.0)
                for i in range(5)
            ]
        assert seqs == [1, 2, 3, 4, 5]

    def test_scan_returns_records_in_order(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(4):
                wal.append(WalOp.UPDATE, oid=i, point=(float(i), 0.0),
                           old_point=(0.0, 0.0), t=float(i))
        scan = scan_directory(tmp_path)
        assert [r.seq for r in scan.records] == [1, 2, 3, 4]
        assert [r.oid for r in scan.records] == [0, 1, 2, 3]
        assert not scan.torn_tail and scan.corrupt_segments == 0

    def test_rotation_splits_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=128)
        for i in range(20):
            wal.append(WalOp.INSERT, oid=i, point=(1.0, 2.0), t=float(i))
        wal.close()
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        assert wal.stats.rotations == len(segments) - 1
        # All records survive across segment boundaries, in order.
        scan = scan_directory(tmp_path)
        assert [r.seq for r in scan.records] == list(range(1, 21))

    def test_reopen_starts_fresh_segment_and_continues_seq(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(WalOp.INSERT, oid=1, point=(0.0, 0.0), t=0.0)
            first_segment = wal.segment
        with WriteAheadLog(tmp_path) as wal2:
            assert wal2.segment == first_segment + 1
            assert wal2.append(WalOp.INSERT, oid=2, point=(0.0, 0.0), t=1.0) == 2

    def test_append_after_close_raises(self, tmp_path):
        from repro.durability.wal import WalError

        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(WalError):
            wal.append(WalOp.FLUSH)

    def test_truncate_covered_drops_only_closed_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=128, sync="always")
        for i in range(20):
            wal.append(WalOp.INSERT, oid=i, point=(1.0, 2.0), t=float(i))
        segments_before = len(list_segments(tmp_path))
        assert segments_before > 2
        removed = wal.truncate_covered(10)
        assert removed >= 1
        # Every surviving record past seq 10 is still there.
        scan = scan_directory(tmp_path)
        assert [r.seq for r in scan.records if r.seq > 10] == list(range(11, 21))
        wal.close()

    def test_stats_count_bytes_and_appends(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(WalOp.INSERT, oid=1, point=(0.0, 0.0), t=0.0)
            wal.append(WalOp.FLUSH)
        assert wal.stats.appends == 2
        total = sum(p.stat().st_size for _, p in list_segments(tmp_path))
        assert wal.stats.bytes_written == total


class TestDamageScans:
    def _filled(self, tmp_path, n=6):
        with WriteAheadLog(tmp_path, sync="always") as wal:
            for i in range(n):
                wal.append(WalOp.INSERT, oid=i, point=(1.0, 2.0), t=float(i))
        return tmp_path

    def test_torn_tail_detected_and_prefix_kept(self, tmp_path):
        directory = self._filled(tmp_path)
        tear_tail(directory, nbytes=5)
        scan = scan_directory(directory)
        assert scan.torn_tail
        assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5]

    def test_corrupt_crc_stops_the_segment(self, tmp_path):
        directory = self._filled(tmp_path)
        corrupt_record(directory, 3)
        scan = scan_directory(directory)
        assert scan.corrupt_segments == 1
        assert [r.seq for r in scan.records] == [1, 2, 3]

    def test_missing_segment_reported(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=128)
        for i in range(20):
            wal.append(WalOp.INSERT, oid=i, point=(1.0, 2.0), t=float(i))
        wal.close()
        numbers = [n for n, _ in list_segments(tmp_path)]
        assert len(numbers) >= 3
        drop_segment(tmp_path, numbers[1])  # a *middle* segment
        scan = scan_directory(tmp_path)
        assert scan.missing_segments == [numbers[1]]

    def test_partial_header_at_eof_is_torn(self, tmp_path):
        directory = self._filled(tmp_path, n=2)
        path = list_segments(directory)[-1][1]
        with open(path, "ab") as fh:
            fh.write(b"\x05\x00")  # half a header
        scan = scan_segment(path)
        assert scan.torn_tail
        assert len(scan.records) == 2


class TestFaultInjector:
    def test_crash_on_nth_append_leaves_torn_prefix(self, tmp_path):
        fault = FaultInjector(crash_on_append=3, torn_bytes=4)
        wal = WriteAheadLog(tmp_path, sync="always", fault=fault)
        wal.append(WalOp.INSERT, oid=1, point=(0.0, 0.0), t=0.0)
        wal.append(WalOp.INSERT, oid=2, point=(0.0, 0.0), t=1.0)
        with pytest.raises(InjectedCrash):
            wal.append(WalOp.INSERT, oid=3, point=(0.0, 0.0), t=2.0)
        scan = scan_segment(segment_path(tmp_path, wal.segment))
        assert [r.oid for r in scan.records] == [1, 2]
        assert scan.torn_tail

    def test_crash_on_sync(self, tmp_path):
        fault = FaultInjector(crash_on_sync=1)
        wal = WriteAheadLog(tmp_path, sync="always", fault=fault)
        with pytest.raises(InjectedCrash):
            wal.append(WalOp.INSERT, oid=1, point=(0.0, 0.0), t=0.0)

    def test_surgery_helpers_require_segments(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            tear_tail(tmp_path)
        os.makedirs(tmp_path / "empty", exist_ok=True)
        with pytest.raises(FileNotFoundError):
            drop_segment(tmp_path / "empty")
