"""Unit tests for the node split policies."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.rtree.node import Entry
from repro.rtree.splits import (
    SPLIT_POLICIES,
    linear_split,
    quadratic_split,
    rstar_split,
)

ALL_POLICIES = list(SPLIT_POLICIES.values())


def point_entries(points):
    return [Entry.for_point(p, i) for i, p in enumerate(points)]


def grid_entries(n):
    rng = random.Random(42)
    return point_entries([(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)])


class TestValidation:
    @pytest.mark.parametrize("split", ALL_POLICIES)
    def test_rejects_single_entry(self, split):
        with pytest.raises(ValueError):
            split(point_entries([(0, 0)]), 1)

    @pytest.mark.parametrize("split", ALL_POLICIES)
    def test_rejects_unsatisfiable_min(self, split):
        with pytest.raises(ValueError):
            split(point_entries([(0, 0), (1, 1), (2, 2)]), 2)

    @pytest.mark.parametrize("split", ALL_POLICIES)
    def test_rejects_zero_min(self, split):
        with pytest.raises(ValueError):
            split(point_entries([(0, 0), (1, 1)]), 0)


class TestPartitioning:
    @pytest.mark.parametrize("split", ALL_POLICIES)
    @pytest.mark.parametrize("n,m", [(4, 2), (10, 4), (21, 8), (21, 2)])
    def test_partition_is_complete_and_respects_min(self, split, n, m):
        entries = grid_entries(n)
        a, b = split(entries, m)
        assert len(a) + len(b) == n
        assert len(a) >= m and len(b) >= m
        assert {id(e) for e in a} | {id(e) for e in b} == {id(e) for e in entries}
        assert {id(e) for e in a} & {id(e) for e in b} == set()

    @pytest.mark.parametrize("split", ALL_POLICIES)
    def test_identical_points_still_split(self, split):
        entries = point_entries([(5, 5)] * 10)
        a, b = split(entries, 4)
        assert len(a) >= 4 and len(b) >= 4

    @pytest.mark.parametrize("split", ALL_POLICIES)
    def test_handles_rect_entries(self, split):
        rng = random.Random(7)
        entries = [
            Entry(
                Rect(
                    (rng.uniform(0, 50), rng.uniform(0, 50)),
                    (rng.uniform(50, 100), rng.uniform(50, 100)),
                ),
                i,
            )
            for i in range(12)
        ]
        a, b = split(entries, 4)
        assert len(a) + len(b) == 12


class TestQuality:
    def test_quadratic_separates_two_clusters(self):
        left = point_entries([(x, y) for x in (0, 1, 2) for y in (0, 1, 2)])
        right = [
            Entry.for_point((x + 100.0, y), 100 + i)
            for i, (x, y) in enumerate((x, y) for x in (0, 1, 2) for y in (0, 1, 2))
        ]
        a, b = quadratic_split(left + right, 4)
        sides = [{e.child < 100 for e in group} for group in (a, b)]
        assert sides[0] in ({True}, {False})
        assert sides[1] in ({True}, {False})
        assert sides[0] != sides[1]

    def test_linear_separates_two_clusters(self):
        entries = point_entries([(0, 0), (1, 0), (0, 1), (1, 1)]) + [
            Entry.for_point((x, y), 10 + i)
            for i, (x, y) in enumerate([(100, 0), (101, 0), (100, 1), (101, 1)])
        ]
        a, b = linear_split(entries, 2)
        xs_a = {e.point[0] < 50 for e in a}
        xs_b = {e.point[0] < 50 for e in b}
        assert len(xs_a) == 1 and len(xs_b) == 1 and xs_a != xs_b

    def test_rstar_minimizes_overlap_on_stripes(self):
        # Two horizontal stripes: the best split separates by y with zero overlap.
        bottom = point_entries([(x, 0.0) for x in range(10)])
        top = [Entry.for_point((float(x), 100.0), 100 + x) for x in range(10)]
        a, b = rstar_split(bottom + top, 4)
        mbr_a = Rect.union_all(e.rect for e in a)
        mbr_b = Rect.union_all(e.rect for e in b)
        assert mbr_a.overlap_area(mbr_b) == 0.0


coords = st.floats(min_value=0, max_value=1000, allow_nan=False)


class TestPropertyBased:
    @given(
        st.lists(st.tuples(coords, coords), min_size=8, max_size=30),
        st.sampled_from(sorted(SPLIT_POLICIES)),
    )
    def test_split_never_loses_entries(self, points, policy_name):
        entries = point_entries(points)
        a, b = SPLIT_POLICIES[policy_name](entries, 2)
        assert sorted(e.child for e in a + b) == sorted(e.child for e in entries)

    @given(
        st.lists(st.tuples(coords, coords), min_size=8, max_size=30),
        st.sampled_from(sorted(SPLIT_POLICIES)),
    )
    def test_groups_cover_originals(self, points, policy_name):
        entries = point_entries(points)
        a, b = SPLIT_POLICIES[policy_name](entries, 2)
        for group in (a, b):
            mbr = Rect.union_all(e.rect for e in group)
            for entry in group:
                assert mbr.contains_rect(entry.rect)
