"""Unit tests for Phase 2: the update graph and density merging (Figure 4)."""

import random

import pytest

from repro.core.geometry import Rect
from repro.core.qsregion import QSRegion
from repro.core.update_graph import (
    UpdateGraph,
    build_update_graph,
    chain_graph,
    merge_by_density,
    union_graphs,
)


def region(x0, y0, x1, y1, tau, oid=None, order=0):
    return QSRegion(
        rect=Rect((x0, y0), (x1, y1)), dwell_time=tau, object_id=oid, order=order
    )


class TestGraphBasics:
    def test_add_region_and_edges(self):
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 1, 1, 10))
        b = g.add_region(region(2, 2, 3, 3, 10))
        g.add_edge(a, b)
        assert g.edge_weight(a, b) == 1.0
        assert g.edge_weight(b, a) == 1.0
        assert g.region_count == 2
        assert g.edge_count() == 1

    def test_edge_weights_accumulate(self):
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 1, 1, 10))
        b = g.add_region(region(2, 2, 3, 3, 10))
        g.add_edge(a, b)
        g.add_edge(a, b, 2.5)
        assert g.edge_weight(a, b) == 3.5

    def test_self_edge_ignored(self):
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 1, 1, 10))
        g.add_edge(a, a)
        assert g.edge_count() == 0

    def test_edge_to_unknown_region_raises(self):
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 1, 1, 10))
        with pytest.raises(KeyError):
            g.add_edge(a, 99)

    def test_scale_edges(self):
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 1, 1, 10))
        b = g.add_region(region(2, 2, 3, 3, 10))
        g.add_edge(a, b, 10.0)
        g.scale_edges(0.1)
        assert g.edge_weight(a, b) == pytest.approx(1.0)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            UpdateGraph().scale_edges(-1.0)


class TestMergeSemantics:
    def test_merge_unions_rect_and_sums_dwell(self):
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 2, 2, 10, oid=1))
        b = g.add_region(region(1, 1, 3, 3, 5, oid=2))
        g.merge(a, b)
        merged = g.region(a)
        assert merged.rect == Rect((0, 0), (3, 3))
        assert merged.dwell_time == 15
        assert merged.sources == [1, 2]
        assert merged.object_id is None  # mixed owners
        assert g.region_count == 1

    def test_merge_collapses_common_links(self):
        """Figure 4 step (b): links to the same third region become one link
        of summed weight."""
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 1, 1, 10))
        b = g.add_region(region(1, 1, 2, 2, 10))
        c = g.add_region(region(5, 5, 6, 6, 10))
        g.add_edge(a, c, 2.0)
        g.add_edge(b, c, 3.0)
        g.add_edge(a, b, 7.0)
        g.merge(a, b)
        assert g.edge_weight(a, c) == 5.0
        assert g.edge_count() == 1  # the a-b link became internal

    def test_merge_self_rejected(self):
        g = UpdateGraph()
        a = g.add_region(region(0, 0, 1, 1, 10))
        with pytest.raises(ValueError):
            g.merge(a, a)


class TestChainGraph:
    def test_chain_edges_follow_time_order(self):
        regions = [region(i, 0, i + 1, 1, 10, order=i) for i in range(4)]
        g = chain_graph(regions)
        assert g.region_count == 4
        assert g.edge_count() == 3
        rids = g.region_ids
        for a, b in zip(rids, rids[1:]):
            assert g.edge_weight(a, b) == 1.0

    def test_empty_and_singleton_chains(self):
        assert chain_graph([]).region_count == 0
        assert chain_graph([region(0, 0, 1, 1, 5)]).edge_count() == 0


class TestUnionGraphs:
    def test_union_relabels_disjointly(self):
        g1 = chain_graph([region(0, 0, 1, 1, 10), region(2, 0, 3, 1, 10)])
        g2 = chain_graph([region(5, 5, 6, 6, 10)])
        unified = union_graphs([g1, g2])
        assert unified.region_count == 3
        assert unified.edge_count() == 1


class TestDensityMerging:
    def test_coincident_regions_merge(self):
        g = UpdateGraph()
        g.add_region(region(0, 0, 10, 10, 100))
        g.add_region(region(0, 0, 10, 10, 100))
        merges = merge_by_density(g, t_area=22500)
        assert merges == 1
        assert g.region_count == 1
        assert g.region(g.region_ids[0]).dwell_time == 200

    def test_disjoint_far_regions_do_not_merge(self):
        g = UpdateGraph()
        g.add_region(region(0, 0, 10, 10, 100))
        g.add_region(region(500, 500, 510, 510, 100))
        assert merge_by_density(g, t_area=22500) == 0
        assert g.region_count == 2

    def test_area_cap_blocks_merge(self):
        g = UpdateGraph()
        g.add_region(region(0, 0, 10, 10, 1000))
        g.add_region(region(5, 5, 15, 15, 1000))
        assert merge_by_density(g, t_area=150.0) == 0

    def test_density_condition_is_strict(self):
        # Union density must beat BOTH constituents; side-by-side rects with
        # equal density produce an equal union density -> no merge.
        g = UpdateGraph()
        g.add_region(region(0, 0, 10, 10, 100))
        g.add_region(region(10, 0, 20, 10, 100))
        assert merge_by_density(g, t_area=22500) == 0

    def test_heavily_overlapping_merge_cascades(self):
        g = UpdateGraph()
        for i in range(5):
            g.add_region(region(i * 0.5, 0, i * 0.5 + 10, 10, 100))
        merge_by_density(g, t_area=22500)
        assert g.region_count == 1

    def test_grid_reaches_a_true_fixpoint(self):
        """Figure 4 merges "in arbitrary order, until none satisfies", so
        different orders may reach different (equally valid) fixpoints.  The
        grid-pruned pass must (a) leave no mergeable pair behind -- an
        exhaustive pass afterwards finds nothing -- and (b) land near the
        exhaustive pass's region count on realistic clustered input."""
        rng = random.Random(5)

        def make_graph(seed):
            r = random.Random(seed)
            g = UpdateGraph()
            for _ in range(120):
                cx, cy = r.choice(clusters)
                x = cx + r.uniform(-8, 8)
                y = cy + r.uniform(-8, 8)
                g.add_region(region(x, y, x + 15, y + 15, r.uniform(300, 900)))
            return g

        clusters = [(rng.uniform(50, 950), rng.uniform(50, 950)) for _ in range(8)]
        g_exhaustive = make_graph(6)
        g_grid = make_graph(6)
        merge_by_density(g_exhaustive, t_area=22500, exhaustive=True)
        merge_by_density(g_grid, t_area=22500, exhaustive=False)
        assert merge_by_density(g_grid, t_area=22500, exhaustive=True) == 0
        assert (
            abs(g_grid.region_count - g_exhaustive.region_count)
            <= 0.5 * g_exhaustive.region_count
        )

    def test_merged_dwell_time_is_conserved(self):
        g = UpdateGraph()
        total = 0.0
        for i in range(10):
            tau = 100.0 + i
            total += tau
            g.add_region(region(0, 0, 10 + i * 0.1, 10, tau))
        merge_by_density(g, t_area=22500)
        assert g.total_dwell_time() == pytest.approx(total)


class TestBuildUpdateGraph:
    def test_full_phase2(self):
        per_object = [
            [region(0, 0, 10, 10, 400, oid=1, order=0), region(100, 100, 110, 110, 400, oid=1, order=1)],
            [region(1, 1, 11, 11, 400, oid=2, order=0), region(100, 100, 110, 110, 400, oid=2, order=1)],
        ]
        graph = build_update_graph(per_object, t_area=22500, t_max=1000.0)
        # Coincident home/work regions merge across objects.
        assert graph.region_count == 2
        (edge,) = list(graph.edges())
        # Two transitions, scaled by t_max.
        assert edge[2] == pytest.approx(2.0 / 1000.0)

    def test_zero_t_max_skips_scaling(self):
        per_object = [[region(0, 0, 1, 1, 400, order=0), region(5, 5, 6, 6, 400, order=1)]]
        graph = build_update_graph(per_object, t_area=22500, t_max=0.0)
        (edge,) = list(graph.edges())
        assert edge[2] == 1.0

    def test_no_regions(self):
        graph = build_update_graph([[], []], t_area=22500, t_max=100.0)
        assert graph.region_count == 0
