"""Unit tests for Appendix A adaptation: discovery and retirement."""

import pytest

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.storage.pager import Pager

DOMAIN = Rect((0, 0), (1000, 1000))


def promo_params(**overrides):
    defaults = dict(t_list=1, t_buf_num=5, t_buf_time=100.0, t_remove=1e9)
    defaults.update(overrides)
    return CTParams(**defaults)


def fill_cluster(tree, center, count, start_id=0, t0=0.0, dt=10.0, spread=3.0):
    """Insert ``count`` objects clustered at ``center`` with rising timestamps."""
    cx, cy = center
    t = t0
    for i in range(count):
        t += dt
        offset = (i % 7) * spread / 7.0
        tree.insert(start_id + i, (cx + offset, cy + offset / 2.0), now=t)
    return t


class TestDiscovery:
    def test_stable_buffer_leaf_promoted(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params())
        regions_before = tree.region_count
        # A new gathering spot far outside any region: objects stream in.
        fill_cluster(tree, (600.0, 600.0), 30, t0=0.0, dt=20.0)
        assert tree.adaptation.promotions >= 1
        assert tree.region_count > regions_before
        assert tree.validate() == []

    def test_promoted_region_overlaps_the_cluster(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params())
        fill_cluster(tree, (600.0, 600.0), 30, t0=0.0, dt=20.0)
        cluster_box = Rect((599.0, 599.0), (604.0, 602.0))
        promoted = [
            qs
            for _, qs in tree.iter_qs_entries()
            if qs.rect.intersects(cluster_box) and qs.object_count() > 0
        ]
        assert promoted

    def test_promotion_enables_lazy_updates(self, pager):
        from repro.core.overflow import DataPage

        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params())
        end = fill_cluster(tree, (600.0, 600.0), 30, t0=0.0, dt=20.0)
        # Pick an object that ended up in a promoted region's chain and move
        # it within that region's rectangle: must take the 3-I/O lazy path.
        page = pager.inspect(tree.hash.peek(3))
        assert isinstance(page, DataPage) and page.tolerance is not None
        inside = page.tolerance.center
        lazy_before = tree.lazy_hits
        tree.update(3, (0.0, 0.0), inside, now=end + 10)
        assert tree.lazy_hits == lazy_before + 1

    def test_promotion_updates_hash_pointers(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params())
        fill_cluster(tree, (600.0, 600.0), 30, t0=0.0, dt=20.0)
        assert tree.validate() == []  # hash exactness included

    def test_no_promotion_when_adaptive_disabled(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params(), adaptive=False)
        fill_cluster(tree, (600.0, 600.0), 30, t0=0.0, dt=20.0)
        assert tree.adaptation.promotions == 0
        assert tree.region_count == 1

    def test_no_promotion_below_population_threshold(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params(t_buf_num=50))
        fill_cluster(tree, (600.0, 600.0), 30, t0=0.0, dt=20.0)
        assert tree.adaptation.promotions == 0

    def test_no_promotion_before_stability_window(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params(t_buf_time=1e12))
        fill_cluster(tree, (600.0, 600.0), 30, t0=0.0, dt=20.0)
        assert tree.adaptation.promotions == 0
        assert tree.adaptation.candidate_count >= 0  # candidate may be pending

    def test_scattered_objects_not_promoted(self, pager):
        """A leaf spanning a huge area fails the T_area condition."""
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params(t_area=100.0))
        t = 0.0
        for i in range(30):
            t += 20.0
            tree.insert(100 + i, (600.0 + i * 30.0, 600.0), now=t)
        assert tree.adaptation.promotions == 0


class TestRetirement:
    def make_churning_tree(self, pager, t_remove):
        params = CTParams(t_list=8, t_remove=t_remove, t_time=50.0)
        region = Rect((100, 100), (160, 160))
        tree = CTRTree(pager, DOMAIN, [region, Rect((800, 800), (860, 860))],
                       max_entries=8, ct_params=params)
        # Objects constantly pass through the region: enter then leave.
        t = 0.0
        for i in range(60):
            t += 5.0
            tree.insert(i, (130.0, 130.0), now=t)
        for i in range(60):
            t += 5.0
            tree.update(i, (130.0, 130.0), (500.0, 500.0), now=t)  # leave
        return tree

    def test_churning_region_retired(self, pager):
        tree = self.make_churning_tree(pager, t_remove=0.05)
        assert tree.adaptation.retirements >= 1
        assert tree.validate() == []

    def test_high_threshold_keeps_region(self, pager):
        tree = self.make_churning_tree(pager, t_remove=1e9)
        assert tree.adaptation.retirements == 0
        assert tree.region_count == 2

    def test_retired_objects_remain_searchable(self, pager):
        params = CTParams(t_list=8, t_remove=0.05, t_time=50.0)
        region = Rect((100, 100), (160, 160))
        tree = CTRTree(pager, DOMAIN, [region], max_entries=8, ct_params=params)
        t = 0.0
        for i in range(40):
            t += 5.0
            tree.insert(i, (130.0 + (i % 5), 130.0), now=t)
        # Half the population churns out, triggering retirement.
        for i in range(20):
            t += 5.0
            tree.update(i, (130.0 + (i % 5), 130.0), (500.0, 500.0), now=t)
        # Every object must still be findable wherever it ended up.
        found = sorted(oid for oid, _ in tree.range_search(Rect((0, 0), (1000, 1000))))
        assert found == list(range(40))
        assert tree.validate() == []

    def test_retirement_disabled_without_adaptive(self, pager):
        params = CTParams(t_list=8, t_remove=0.0001, t_time=50.0)
        tree = CTRTree(pager, DOMAIN, [Rect((100, 100), (160, 160))],
                       max_entries=8, ct_params=params, adaptive=False)
        t = 0.0
        for i in range(30):
            t += 5.0
            tree.insert(i, (130.0, 130.0), now=t)
        for i in range(30):
            t += 5.0
            tree.delete(i, now=t)
        assert tree.adaptation.retirements == 0
        assert tree.region_count == 1


class TestInteraction:
    def test_promote_then_structural_split_stays_consistent(self, pager):
        """Promotions insert new qs-regions; enough of them split structural
        nodes, which must re-home any buffered objects correctly."""
        params = promo_params(t_buf_num=3, t_buf_time=50.0)
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (30, 30))], max_entries=4,
                       ct_params=params)
        t = 0.0
        centers = [(200, 200), (400, 400), (600, 600), (800, 800), (200, 800)]
        for k, center in enumerate(centers):
            t = fill_cluster(tree, center, 12, start_id=100 * k, t0=t, dt=15.0)
        assert tree.adaptation.promotions >= 2
        assert tree.validate() == []
        got = sorted(oid for oid, _ in tree.range_search(Rect((0, 0), (1000, 1000))))
        assert len(got) == 60

    def test_counters_reported(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))], max_entries=8,
                       ct_params=promo_params())
        fill_cluster(tree, (600.0, 600.0), 30)
        text = repr(tree.adaptation)
        assert "promotions=" in text
