"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.obs import MetricsRegistry, Summary, get_registry, set_enabled, tree_stats
from repro.rtree import LazyRTree, RTree
from repro.storage.pager import Pager

DOMAIN = Rect((0, 0), (1000, 1000))


class TestSummary:
    def test_streams_count_total_min_max(self):
        s = Summary()
        for v in (3.0, 1.0, 2.0):
            s.observe(v)
        assert s.count == 3
        assert s.total == 6.0
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.mean == 2.0

    def test_empty_summary_renders_zeros(self):
        d = Summary().to_dict()
        assert d == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter_value("a") == 5
        assert reg.counter_value("missing") == 0

    def test_observe_builds_summary(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        reg.observe("lat", 1.5)
        assert reg.value_summary("lat").mean == 1.0

    def test_timer_records_positive_duration(self):
        reg = MetricsRegistry()
        with reg.timer("span"):
            sum(range(100))
        summary = reg.timer_summary("span")
        assert summary.count == 1
        assert summary.total >= 0.0

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.observe("v", 1.0)
        with reg.timer("t"):
            pass
        reg.record_duration("t", 1.0)
        d = reg.to_dict()
        assert d["counters"] == {}
        assert d["values"] == {}
        assert d["timers"] == {}

    def test_disabled_timer_is_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.timer("a") is reg.timer("b")

    def test_to_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("v", 3.25)
        with reg.timer("t"):
            pass
        payload = json.loads(json.dumps(reg.to_dict()))
        assert payload["counters"]["c"] == 2
        assert payload["values"]["v"]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("v", 1.0)
        reg.reset()
        assert reg.counter_value("c") == 0
        assert reg.value_summary("v") is None

    def test_global_registry_default_off(self):
        reg = get_registry()
        assert reg.enabled is False

    def test_set_enabled_round_trip(self):
        try:
            assert set_enabled(True).enabled is True
        finally:
            set_enabled(False)


def grid_rtree(max_entries=4, n=16):
    """A deterministic little tree: a 4x4 grid inserted in fixed order."""
    tree = RTree(Pager(), max_entries=max_entries)
    for i in range(n):
        tree.insert(i, (float(i % 4) * 10, float(i // 4) * 10))
    return tree


class TestTreeStats:
    def test_golden_grid_tree(self):
        """Shape of the fixed 4x4-grid tree, pinned exactly."""
        stats = tree_stats(grid_rtree())
        assert stats["size"] == 16
        assert stats["height"] == 3
        assert stats["node_count"] == 8
        assert stats["leaf_count"] == 5
        assert stats["internal_count"] == 3
        # Every object sits in exactly one leaf entry; each non-root node
        # appears in exactly one parent entry.
        assert stats["entry_count"] == 16 + (8 - 1)
        assert stats["fanout"] == {"min": 2, "max": 4, "mean": 2.875}
        assert stats["fanout_hist"] == {"2": 2, "3": 5, "4": 1}
        assert stats["mbr_dead_space_ratio"] == pytest.approx(0.5)
        assert sum(stats["fanout_hist"].values()) == stats["node_count"]
        assert 0.0 <= stats["mbr_dead_space_ratio"] <= 1.0
        assert stats["avg_fill"] == pytest.approx(
            stats["entry_count"] / (stats["node_count"] * 4)
        )

    def test_matches_index_introspection(self):
        tree = grid_rtree(max_entries=5, n=30)
        stats = tree_stats(tree)
        assert stats["node_count"] == tree.node_count()
        assert stats["height"] == tree.height
        assert stats["size"] == len(tree)

    def test_lazy_tree_unwraps_and_reports_tallies(self):
        pager = Pager()
        lazy = LazyRTree(pager, max_entries=4)
        for i in range(10):
            lazy.insert(i, (float(i), float(i)))
        lazy.update(0, (0.0, 0.0), (0.5, 0.5))
        stats = tree_stats(lazy)
        assert stats["size"] == 10
        assert stats["lazy_hits"] + stats["relocations"] == 1

    def test_ct_tree_reports_region_inventory(self):
        regions = [Rect((0, 0), (100, 100)), Rect((200, 200), (300, 300))]
        tree = CTRTree(Pager(), DOMAIN, regions, max_entries=4)
        tree.insert(1, (50.0, 50.0))       # inside region 0
        tree.insert(2, (250.0, 250.0))     # inside region 1
        tree.insert(3, (150.0, 150.0))     # outside: overflow buffer
        stats = tree_stats(tree)
        assert stats["qs_region_count"] == 2
        assert stats["chain_pages"] == 2   # one data page per occupied region
        assert stats["buffered_objects"] == 1
        assert stats["size"] == 3

    def test_stats_are_uncharged(self):
        tree = grid_rtree()
        before = tree.pager.stats.total()
        tree_stats(tree)
        assert tree.pager.stats.total() == before


class TestBuilderPhaseTimings:
    def test_build_report_carries_phase_timings(self, rng):
        from repro.core.builder import CTRTreeBuilder
        from tests.conftest import dwell_trail

        histories = {0: dwell_trail(rng, [(100, 100)], dwell_reports=30)}
        builder = CTRTreeBuilder()
        _tree, report = builder.build(Pager(), DOMAIN, histories)
        assert set(report.phase_timings) == {
            "phase1_qs_mining",
            "phase2_graph",
            "phase3_traffic_merge",
            "phase4_tree_load",
        }
        assert all(t >= 0.0 for t in report.phase_timings.values())
        assert report.to_dict()["phase_timings"] == report.phase_timings

    def test_build_records_timers_when_enabled(self, rng):
        from repro.core.builder import CTRTreeBuilder
        from tests.conftest import dwell_trail

        registry = set_enabled(True)
        registry.reset()
        try:
            histories = {0: dwell_trail(rng, [(100, 100)], dwell_reports=30)}
            CTRTreeBuilder().build(Pager(), DOMAIN, histories)
            assert registry.timer_summary("build.phase1_qs_mining_s").count == 1
            assert registry.timer_summary("build.phase4_tree_load_s").count == 1
        finally:
            set_enabled(False)
            registry.reset()
