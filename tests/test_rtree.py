"""Unit and invariant tests for the traditional R-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.rtree import RTree
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points, random_query


@pytest.fixture
def tree(pager):
    return RTree(pager, max_entries=8)


class TestConstruction:
    def test_empty_tree(self, tree):
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_search(Rect((0, 0), (100, 100))) == []

    def test_rejects_small_fanout(self, pager):
        with pytest.raises(ValueError):
            RTree(pager, max_entries=3)

    def test_rejects_bad_min_fill(self, pager):
        with pytest.raises(ValueError):
            RTree(pager, min_fill=0.9)

    def test_rejects_unknown_split(self, pager):
        with pytest.raises(ValueError):
            RTree(pager, split="zigzag")

    def test_rejects_negative_alpha(self, pager):
        with pytest.raises(ValueError):
            RTree(pager, alpha=-0.1)

    def test_min_entries_derived_from_fill(self, pager):
        assert RTree(pager, max_entries=20, min_fill=0.4).min_entries == 8


class TestInsertSearch:
    def test_single_insert_found(self, tree):
        tree.insert(1, (5.0, 5.0))
        assert tree.search_point((5.0, 5.0)) == [1]
        assert len(tree) == 1

    def test_insert_returns_holding_leaf(self, tree, pager):
        pid = tree.insert(1, (5.0, 5.0))
        leaf = pager.inspect(pid)
        assert leaf.find_entry(1) is not None

    def test_duplicate_points_different_ids(self, tree):
        tree.insert(1, (5, 5))
        tree.insert(2, (5, 5))
        assert sorted(tree.search_point((5, 5))) == [1, 2]

    def test_growth_splits_maintain_invariants(self, tree, rng):
        points = random_points(rng, 200)
        for oid, point in points.items():
            tree.insert(oid, point)
        assert tree.validate() == []
        assert tree.height >= 3

    def test_range_search_matches_brute_force(self, tree, rng):
        points = random_points(rng, 150)
        for oid, point in points.items():
            tree.insert(oid, point)
        for _ in range(40):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)

    def test_insert_identical_points_beyond_fanout(self, tree):
        for i in range(30):
            tree.insert(i, (1.0, 1.0))
        assert sorted(tree.search_point((1.0, 1.0))) == list(range(30))
        assert tree.validate() == []

    def test_collinear_points(self, tree):
        for i in range(50):
            tree.insert(i, (float(i), 0.0))
        assert tree.validate() == []
        got = sorted(oid for oid, _ in tree.range_search(Rect((10, -1), (20, 1))))
        assert got == list(range(10, 21))


class TestDelete:
    def test_delete_existing(self, tree):
        tree.insert(1, (5, 5))
        assert tree.delete(1, (5, 5))
        assert len(tree) == 0
        assert tree.search_point((5, 5)) == []

    def test_delete_missing_returns_false(self, tree):
        tree.insert(1, (5, 5))
        assert not tree.delete(2, (5, 5))
        assert not tree.delete(1, (6, 6))

    def test_delete_all_and_reuse(self, tree, rng):
        points = random_points(rng, 60)
        for oid, point in points.items():
            tree.insert(oid, point)
        for oid, point in points.items():
            assert tree.delete(oid, point)
        assert len(tree) == 0
        assert tree.validate() == []
        tree.insert(99, (1, 1))
        assert tree.search_point((1, 1)) == [99]

    def test_condense_preserves_results(self, tree, rng):
        points = random_points(rng, 120)
        for oid, point in points.items():
            tree.insert(oid, point)
        victims = list(points)[::3]
        for oid in victims:
            assert tree.delete(oid, points.pop(oid))
        assert tree.validate() == []
        for _ in range(25):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)

    def test_root_collapse_reduces_height(self, tree, rng):
        points = random_points(rng, 200)
        for oid, point in points.items():
            tree.insert(oid, point)
        tall = tree.height
        for oid, point in list(points.items())[:195]:
            tree.delete(oid, point)
        assert tree.height < tall
        assert tree.validate() == []


class TestDeleteAt:
    def test_delete_at_returns_point(self, tree):
        pid = tree.insert(1, (5, 5))
        assert tree.delete_at(1, pid) == (5.0, 5.0)
        assert len(tree) == 0

    def test_delete_at_wrong_page(self, tree):
        tree.insert(1, (5, 5))
        missing = tree.delete_at(1, 999_999)
        assert missing is None

    def test_delete_at_unlinks_empty_leaves(self, pager):
        tree = RTree(pager, max_entries=4, shrink_on_delete=False)
        pids = {}
        for i in range(40):
            pids[i] = tree.insert(i, (float(i), float(i)))
        # delete_at moves objects out leaf by leaf; structure must stay valid
        for i in range(40):
            pid = tree.pager.inspect(tree.root_pid)  # noqa: F841 (root survives)
            current = tree_find(tree, i)
            assert tree.delete_at(i, current) is not None
        assert len(tree) == 0

    def test_update_via_delete_insert(self, tree):
        tree.insert(1, (5, 5))
        tree.update(1, (5, 5), (50, 50))
        assert tree.search_point((50, 50)) == [1]
        assert tree.search_point((5, 5)) == []

    def test_update_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree.update(1, (0, 0), (1, 1))


def tree_find(tree, oid):
    """Locate the leaf pid currently holding oid (test helper, uncharged)."""
    for leaf in tree.iter_leaves():
        if leaf.find_entry(oid) is not None:
            return leaf.pid
    raise AssertionError(f"object {oid} not found")


class TestCharging:
    def test_search_charges_only_reads(self, tree, rng, pager):
        for oid, point in random_points(rng, 100).items():
            tree.insert(oid, point)
        reads, writes = pager.stats.reads(), pager.stats.writes()
        tree.range_search(Rect((0, 0), (50, 50)))
        assert pager.stats.reads() > reads
        assert pager.stats.writes() == writes

    def test_insert_charges_path_reads_and_leaf_write(self, tree, pager):
        tree.insert(1, (1, 1))  # root is a leaf: 1 read + 1 write
        reads, writes = pager.stats.reads(), pager.stats.writes()
        tree.insert(2, (1.5, 1.5))
        assert pager.stats.reads() == reads + 1
        assert pager.stats.writes() == writes + 1

    def test_iteration_is_uncharged(self, tree, rng, pager):
        for oid, point in random_points(rng, 50).items():
            tree.insert(oid, point)
        total = pager.stats.total()
        list(tree.iter_objects())
        tree.validate()
        tree.node_count()
        assert pager.stats.total() == total


class TestSplitPolicies:
    @pytest.mark.parametrize("split", ["linear", "quadratic", "rstar"])
    def test_full_lifecycle_per_policy(self, split, rng):
        pager = Pager()
        tree = RTree(pager, max_entries=6, split=split)
        points = random_points(rng, 150)
        for oid, point in points.items():
            tree.insert(oid, point)
        for _ in range(300):
            oid = rng.choice(list(points))
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
        for _ in range(20):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_property_insert_then_validate(points):
    pager = Pager()
    tree = RTree(pager, max_entries=5)
    for oid, point in enumerate(points):
        tree.insert(oid, point)
    assert tree.validate() == []
    assert sorted(oid for oid, _ in tree.iter_objects()) == list(range(len(points)))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=2,
        max_size=80,
    ),
    st.randoms(use_true_random=False),
)
def test_property_mixed_workload(points, rnd):
    pager = Pager()
    tree = RTree(pager, max_entries=5)
    alive = {}
    for oid, point in enumerate(points):
        tree.insert(oid, point)
        alive[oid] = point
    for oid in list(alive):
        action = rnd.random()
        if action < 0.4:
            assert tree.delete(oid, alive.pop(oid))
        elif action < 0.7:
            new = (rnd.uniform(0, 100), rnd.uniform(0, 100))
            tree.update(oid, alive[oid], new)
            alive[oid] = new
    assert tree.validate() == []
    query = Rect((0, 0), (100, 100))
    assert sorted(o for o, _ in tree.range_search(query)) == sorted(alive)
