"""Unit tests for STR bulk loading."""

import pytest

from repro.core.geometry import Rect
from repro.rtree import RTree, str_pack
from repro.rtree.bulk import str_pack_rects
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points, random_query


@pytest.fixture
def tree(pager):
    return RTree(pager, max_entries=8)


class TestStrPack:
    def test_empty_input_is_noop(self, tree):
        str_pack(tree, [])
        assert len(tree) == 0

    def test_requires_empty_tree(self, tree):
        tree.insert(1, (0, 0))
        with pytest.raises(ValueError):
            str_pack(tree, [(2, (1, 1))])

    def test_rejects_bad_fill(self, tree):
        with pytest.raises(ValueError):
            str_pack(tree, [(1, (0, 0))], fill=0.0)

    def test_single_item(self, tree):
        str_pack(tree, [(7, (3.0, 4.0))])
        assert tree.search_point((3.0, 4.0)) == [7]
        assert tree.height == 1

    def test_all_items_retrievable(self, tree, rng):
        points = random_points(rng, 300)
        str_pack(tree, list(points.items()))
        assert len(tree) == 300
        for _ in range(30):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)

    def test_structure_is_valid_except_min_fill(self, tree, rng):
        # STR packs to the target fill; trailing tiles may dip below the
        # dynamic-insert minimum, which is legal for bulk-loaded trees.
        points = random_points(rng, 157)
        str_pack(tree, list(points.items()))
        problems = [p for p in tree.validate() if "fill" not in p]
        assert problems == []

    def test_packs_tighter_than_repeated_insertion(self, rng):
        points = random_points(rng, 400)
        packed = RTree(Pager(), max_entries=8)
        str_pack(packed, list(points.items()), fill=0.9)
        inserted = RTree(Pager(), max_entries=8)
        for oid, point in points.items():
            inserted.insert(oid, point)
        assert packed.node_count() < inserted.node_count()

    def test_fill_controls_leaf_count(self, rng):
        points = list(random_points(rng, 200).items())
        tight = RTree(Pager(), max_entries=8)
        str_pack(tight, points, fill=1.0)
        loose = RTree(Pager(), max_entries=8)
        str_pack(loose, points, fill=0.5)
        tight_leaves = sum(1 for _ in tight.iter_leaves())
        loose_leaves = sum(1 for _ in loose.iter_leaves())
        assert tight_leaves < loose_leaves

    def test_parent_pointers_consistent(self, tree, rng):
        points = random_points(rng, 220)
        str_pack(tree, list(points.items()))
        problems = [p for p in tree.validate() if "parent" in p]
        assert problems == []

    def test_dynamic_operations_after_pack(self, tree, rng):
        points = random_points(rng, 120)
        str_pack(tree, list(points.items()))
        tree.insert(999, (50, 50))
        assert 999 in tree.search_point((50, 50))
        assert tree.delete(0, points[0])
        got = sorted(oid for oid, _ in tree.range_search(Rect((0, 0), (100, 100))))
        expected = sorted((set(points) - {0}) | {999})
        assert got == expected


class TestStrPackRects:
    def test_pack_rectangles(self, tree, rng):
        rects = []
        for i in range(80):
            x, y = rng.uniform(0, 90), rng.uniform(0, 90)
            rects.append((Rect((x, y), (x + 5, y + 5)), i))
        str_pack_rects(tree, rects)
        assert len(tree) == 80
        problems = [p for p in tree.validate() if "fill" not in p]
        assert problems == []

    def test_requires_empty_tree(self, tree):
        tree.insert(1, (0, 0))
        with pytest.raises(ValueError):
            str_pack_rects(tree, [(Rect((0, 0), (1, 1)), 5)])

    def test_empty_is_noop(self, tree):
        str_pack_rects(tree, [])
        assert len(tree) == 0
