"""Unit tests for the simulation driver and index factory."""

import pytest

from repro.citysim.trace import TraceRecord
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.rtree import AlphaTree, LazyRTree, RTree
from repro.storage.iostats import IOCategory
from repro.storage.pager import Pager
from repro.workload.driver import IndexKind, SimulationDriver, make_index
from repro.workload.queries import RangeQuery
from tests.conftest import dwell_trail

DOMAIN = Rect((0, 0), (1000, 1000))


class TestMakeIndex:
    def test_kinds_map_to_types(self, rng):
        histories = {0: dwell_trail(rng, [(100, 100)], dwell_reports=30)}
        expected = {
            IndexKind.RTREE: RTree,
            IndexKind.LAZY: LazyRTree,
            IndexKind.ALPHA: AlphaTree,
            IndexKind.CT: CTRTree,
        }
        for kind, cls in expected.items():
            index = make_index(kind, Pager(), DOMAIN, histories=histories)
            assert isinstance(index, cls)

    def test_ct_requires_histories(self):
        with pytest.raises(ValueError):
            make_index(IndexKind.CT, Pager(), DOMAIN)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_index("btree", Pager(), DOMAIN)

    def test_alpha_uses_param_alpha(self):
        from repro.core.params import CTParams

        index = make_index(
            IndexKind.ALPHA, Pager(), DOMAIN, ct_params=CTParams(alpha=0.3)
        )
        assert index.alpha == 0.3


class TestDriver:
    def make_driver(self, kind=IndexKind.LAZY):
        pager = Pager()
        index = make_index(kind, pager, DOMAIN)
        return SimulationDriver(index, pager, kind), pager

    def test_load_charges_build(self):
        driver, pager = self.make_driver()
        driver.load({0: (1.0, 1.0), 1: (2.0, 2.0)})
        assert pager.stats.total(IOCategory.BUILD) > 0
        assert pager.stats.total(IOCategory.UPDATE) == 0
        assert driver.positions[0] == (1.0, 1.0)

    def test_run_counts_and_categorizes(self):
        driver, pager = self.make_driver()
        driver.load({0: (1.0, 1.0)})
        updates = [TraceRecord(oid=0, point=(2.0, 2.0), t=10.0)]
        queries = [RangeQuery(rect=Rect((0, 0), (5, 5)), t=15.0)]
        result = driver.run(updates, queries)
        assert result.n_updates == 1
        assert result.n_queries == 1
        assert result.result_count == 1
        assert result.update_ios > 0
        assert result.query_ios > 0
        assert result.total_ios == result.update_ios + result.query_ios

    def test_unseen_object_is_inserted(self):
        driver, _pager = self.make_driver()
        result = driver.run([TraceRecord(oid=9, point=(3.0, 3.0), t=1.0)], [])
        assert result.n_updates == 1
        assert driver.index.search_point((3.0, 3.0)) == [9]

    def test_events_interleaved_by_time(self):
        """A query between two updates must observe the first but not the second."""
        driver, _pager = self.make_driver()
        driver.load({0: (1.0, 1.0)})
        updates = [
            TraceRecord(oid=0, point=(50.0, 50.0), t=10.0),
            TraceRecord(oid=0, point=(200.0, 200.0), t=30.0),
        ]
        queries = [RangeQuery(rect=Rect((49, 49), (51, 51)), t=20.0)]
        result = driver.run(updates, queries)
        assert result.result_count == 1

    def test_equal_timestamp_update_applies_before_query(self):
        """On a timestamp tie the update wins: the query sees the new state."""
        driver, _pager = self.make_driver()
        driver.load({0: (1.0, 1.0)})
        updates = [TraceRecord(oid=0, point=(50.0, 50.0), t=10.0)]
        at_new = [RangeQuery(rect=Rect((49, 49), (51, 51)), t=10.0)]
        result = driver.run(updates, at_new)
        assert result.result_count == 1  # found at the updated location

        driver2, _ = self.make_driver()
        driver2.load({0: (1.0, 1.0)})
        at_old = [RangeQuery(rect=Rect((0, 0), (2, 2)), t=10.0)]
        result2 = driver2.run(updates, at_old)
        assert result2.result_count == 0  # old location already vacated

    def test_load_passes_timestamp_to_index(self, rng):
        """load(now=...) must not fast-forward the CT-R-tree's clock."""
        histories = {
            oid: dwell_trail(rng, [(100 + 10 * oid, 100)], dwell_reports=25)
            for oid in range(5)
        }
        pager = Pager()
        index = make_index(IndexKind.CT, pager, DOMAIN, histories=histories)
        driver = SimulationDriver(index, pager, IndexKind.CT)
        driver.load({oid: (100.0 + 10 * oid, 100.0) for oid in range(5)}, now=42.0)
        assert index._clock == 42.0  # not 5.0 (one untimed tick per object)

    def test_run_normalizes_positions_like_load(self):
        """Both ingestion paths must store hashable, comparable tuples."""
        driver, _pager = self.make_driver()
        driver.load({0: [1.0, 1.0]})  # list input
        assert driver.positions[0] == (1.0, 1.0)
        driver.run([TraceRecord(oid=0, point=[2.0, 2.0], t=1.0)], [])
        assert driver.positions[0] == (2.0, 2.0)
        assert isinstance(driver.positions[0], tuple)
        # A second update keyed off the stored old position must succeed.
        result = driver.run([TraceRecord(oid=0, point=[3.0, 3.0], t=2.0)], [])
        assert result.n_updates == 1
        assert driver.index.search_point((3.0, 3.0)) == [0]

    def test_run_records_metrics_when_enabled(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        pager = Pager()
        index = make_index(IndexKind.LAZY, pager, DOMAIN)
        driver = SimulationDriver(index, pager, IndexKind.LAZY, metrics=registry)
        driver.load({0: (1.0, 1.0)})
        driver.run(
            [TraceRecord(oid=0, point=(2.0, 2.0), t=1.0)],
            [RangeQuery(rect=Rect((0, 0), (5, 5)), t=2.0)],
        )
        assert registry.counter_value("driver.lazy.updates") == 1
        assert registry.counter_value("driver.lazy.queries") == 1
        assert registry.value_summary("driver.update.ios").count == 1
        assert registry.value_summary("driver.update.ios").total > 0
        assert registry.value_summary("driver.query.latency_s").count == 1
        assert registry.timer_summary("driver.lazy.run_s").count == 1

    def test_run_reports_wall_clock(self):
        driver, _pager = self.make_driver()
        driver.load({0: (1.0, 1.0)})
        result = driver.run([TraceRecord(oid=0, point=(2.0, 2.0), t=1.0)], [])
        assert result.wall_clock_s > 0.0
        assert result.to_dict()["wall_clock_s"] == result.wall_clock_s

    def test_consecutive_runs_accumulate_separately(self):
        driver, _pager = self.make_driver()
        driver.load({0: (1.0, 1.0)})
        first = driver.run([TraceRecord(oid=0, point=(2.0, 2.0), t=1.0)], [])
        second = driver.run([TraceRecord(oid=0, point=(3.0, 3.0), t=2.0)], [])
        assert first.n_updates == 1
        assert second.n_updates == 1
        assert second.update_ios > 0

    def test_adopt_registers_without_io(self):
        driver, pager = self.make_driver()
        before = pager.stats.total()
        driver.adopt({5: (9.0, 9.0)})
        assert pager.stats.total() == before
        assert driver.positions[5] == (9.0, 9.0)

    def test_per_op_averages(self):
        driver, _pager = self.make_driver()
        driver.load({0: (1.0, 1.0)})
        result = driver.run([TraceRecord(oid=0, point=(2.0, 2.0), t=1.0)], [])
        assert result.ios_per_update == result.update_ios
        assert result.ios_per_query == 0.0

    @pytest.mark.parametrize("kind", IndexKind.ALL)
    def test_all_kinds_run_the_same_workload(self, kind, rng):
        pager = Pager()
        histories = {
            oid: dwell_trail(rng, [(100 + 50 * oid, 100)], dwell_reports=25)
            for oid in range(5)
        }
        index = make_index(kind, pager, DOMAIN, histories=histories)
        driver = SimulationDriver(index, pager, kind)
        driver.load({oid: (100.0 + 50 * oid, 100.0) for oid in range(5)})
        updates = [
            TraceRecord(oid=oid, point=(100.0 + 50 * oid, 101.0), t=float(oid))
            for oid in range(5)
        ]
        queries = [RangeQuery(rect=Rect((0, 0), (1000, 1000)), t=10.0)]
        result = driver.run(updates, queries)
        assert result.n_updates == 5
        assert result.result_count == 5
