"""Unit tests for the online update stream."""

import pytest

from repro.citysim.trace import Trace
from repro.workload.updates import UpdateStream


@pytest.fixture
def trace():
    t = Trace()
    for oid in range(4):
        for k in range(20):
            t.add(oid, (float(k), float(oid)), k * 10.0 + oid * 0.1)
    return t


class TestStream:
    def test_starts_after_history(self, trace):
        stream = UpdateStream(trace, n_history=15)
        assert len(stream) == 4 * 5
        assert min(r.t for r in stream) >= 15 * 10.0

    def test_time_ordered(self, trace):
        stream = UpdateStream(trace, n_history=10)
        times = [r.t for r in stream]
        assert times == sorted(times)

    def test_skip_thins_stream(self, trace):
        full = UpdateStream(trace, n_history=10)
        thinned = UpdateStream(trace, n_history=10, skip=4)
        assert len(thinned) == len(full) // 4
        assert thinned.records[0] == full.records[0]

    def test_skip_rejects_zero(self, trace):
        with pytest.raises(ValueError):
            UpdateStream(trace, n_history=10, skip=0)

    def test_object_restriction(self, trace):
        stream = UpdateStream(trace, n_history=10, object_ids=[1, 3])
        assert {r.oid for r in stream} == {1, 3}

    def test_rate_and_duration(self, trace):
        stream = UpdateStream(trace, n_history=10)
        assert stream.duration > 0
        assert stream.rate == pytest.approx(len(stream) / stream.duration)

    def test_empty_stream(self, trace):
        stream = UpdateStream(trace, n_history=99)
        assert len(stream) == 0
        assert stream.duration == 0.0
        assert stream.rate == 0.0
        assert stream.time_span() == (0.0, 0.0)

    def test_records_cached(self, trace):
        stream = UpdateStream(trace, n_history=10)
        assert stream.records is stream.records
