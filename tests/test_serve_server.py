"""Integration tests for the serving daemon: disconnects, backpressure,
replica staleness, crash recovery, graceful shutdown.

Each test boots a real daemon (``ServerThread`` on a background event loop,
ephemeral port) and talks to it over TCP with the blocking client.
"""

import struct
import threading
import time

import pytest

from repro.core.geometry import Rect
from repro.durability import DurabilityManager, recover
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.health import verify_index
from repro.serve import EngineService, ServeClient, ServeConfig, ServerThread
from repro.serve.protocol import CODEC_JSON
from repro.storage import Pager
from repro.workload import IndexKind, make_index

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def _positions(n=20):
    return {oid: (float(oid * 4 % 97), float(oid * 7 % 89)) for oid in range(n)}


def _service(durability=None, kind=IndexKind.LAZY, positions=None):
    pager = Pager()
    index = make_index(kind, pager, DOMAIN)
    service = EngineService(index, pager, kind, DOMAIN, durability=durability)
    service.load(positions if positions is not None else _positions(), now=0.0)
    return service


def _boot(service, **config):
    daemon = ServerThread(service, ServeConfig(**config))
    host, port = daemon.start()
    return daemon, host, port


def _full_sweep(client):
    matches = client.range((0.0, 0.0), (100.0, 100.0), fresh=True)["matches"]
    return {int(oid): (pos[0], pos[1]) for oid, pos in matches}


# -- happy path + graceful shutdown ------------------------------------------


def test_updates_queries_and_graceful_shutdown():
    service = _service()
    daemon, host, port = _boot(service, refresh_interval=0.05)
    ledger = dict(_positions())
    try:
        with ServeClient(host, port) as client:
            response = client.update(3, (50.0, 50.0), 1.0)
            assert response["ok"] and response["seq"] == 1
            ledger[3] = (50.0, 50.0)
            response = client.batch_update(
                [(100, 10.0, 10.0, 1.1), (3, 51.0, 51.0, 1.2)]
            )
            assert response["accepted"] == 2 and response["seq"] == 3
            ledger[100] = (10.0, 10.0)
            ledger[3] = (51.0, 51.0)
            # Fresh read = read-your-writes: the drain happens first.
            assert _full_sweep(client) == ledger
            neighbors = client.knn((51.0, 51.0), k=1, fresh=True)["neighbors"]
            assert neighbors[0][1] == 3
            stats = client.stats()
            assert stats["service"]["acked"] == 3
            assert client.shutdown()["acked"] == 3
        daemon.join()
        assert daemon.error is None
        assert service.applied == 3
        assert verify_index(service.index, kind=service.kind).ok
    finally:
        daemon.shutdown()


def test_bad_requests_do_not_kill_the_daemon():
    service = _service()
    daemon, host, port = _boot(service)
    try:
        with ServeClient(host, port) as client:
            assert client.request("update", oid=1)["code"] == "BAD_REQUEST"
            assert client.request("batch_update")["code"] == "BAD_REQUEST"
            assert (
                client.request("range", rect=[[5, 5], [1, 1]])["code"]
                == "BAD_REQUEST"
            )
            assert client.request("knn", point=[1, 1], k=0)["code"] == "BAD_REQUEST"
            assert client.request("frobnicate")["code"] == "UNSUPPORTED"
            # Without --wal-dir there is nothing to checkpoint.
            assert client.request("checkpoint")["code"] == "UNSUPPORTED"
            assert client.update(1, (2.0, 2.0), 0.5)["ok"]
        assert daemon.error is None
    finally:
        daemon.shutdown()


# -- client disconnect mid-frame ---------------------------------------------


def test_client_disconnect_mid_batch_leaves_daemon_serving():
    service = _service()
    daemon, host, port = _boot(service)
    try:
        victim = ServeClient(host, port)
        # A frame whose prefix promises 4096 bytes but delivers 10, then the
        # client dies.  Nothing was acked for it.
        victim.send_raw(struct.pack("!IB", 4096, CODEC_JSON) + b'{"op":"upd')
        victim.close()
        with ServeClient(host, port) as client:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = client.stats()
                if stats["metrics"]["counters"].get("serve.conn.broken"):
                    break
                time.sleep(0.02)
            assert stats["metrics"]["counters"]["serve.conn.broken"] >= 1
            assert stats["service"]["acked"] == 0  # the torn frame acked nothing
            assert client.update(1, (9.0, 9.0), 0.5)["ok"]
            assert _full_sweep(client)[1] == (9.0, 9.0)
        assert daemon.error is None
    finally:
        daemon.shutdown()


# -- slow-consumer backpressure ----------------------------------------------


def test_backpressure_sheds_writes_but_replica_reads_proceed():
    service = _service()
    slow_apply = service.apply

    def throttled(batch):
        time.sleep(0.1 * len(batch))
        return slow_apply(batch)

    service.apply = throttled
    daemon, host, port = _boot(
        service, queue_depth=4, write_batch=1, replicas=1, refresh_interval=5.0
    )
    try:
        with ServeClient(host, port) as client:
            rejects = []
            for i in range(8):
                response = client.update(i, (1.0 + i, 1.0), 0.5)
                if not response.get("ok"):
                    rejects.append(response)
            # The bounded queue, not the client, absorbs the overload.
            assert rejects, "queue bound never pushed back"
            for response in rejects:
                assert response["code"] == "RETRY_AFTER"
                assert response["retry_after"] > 0.0
            # A replica read returns while the writer is still backlogged:
            # reads never wait on the writer past the queue bound.
            t0 = time.monotonic()
            response = client.range((0.0, 0.0), (100.0, 100.0))
            elapsed = time.monotonic() - t0
            assert response["ok"] and response["staleness"] is not None
            assert elapsed < 0.4, f"replica read waited on the writer: {elapsed}"
            # Fresh read drains: every accepted write lands.
            sweep = _full_sweep(client)
            accepted = 8 - len(rejects)
            landed = sum(
                1 for oid in range(8) if sweep[oid] == (1.0 + oid, 1.0)
            )
            assert landed == accepted
        assert daemon.error is None
    finally:
        daemon.shutdown()


# -- replica staleness --------------------------------------------------------


def test_replica_staleness_bounded_by_refresh_interval():
    service = _service()
    refresh = 0.1
    daemon, host, port = _boot(service, replicas=2, refresh_interval=refresh)
    try:
        with ServeClient(host, port) as client:
            for i in range(5):
                assert client.update(i, (42.0 + i, 42.0), 1.0 + i)["ok"]
            deadline = time.monotonic() + 5.0
            staleness = None
            while time.monotonic() < deadline:
                staleness = client.range((0.0, 0.0), (100.0, 100.0))["staleness"]
                if staleness["lag_ops"] == 0:
                    break
                time.sleep(refresh / 2)
            # Once the stream quiesces the replicas converge within one
            # refresh interval: no lag, and the snapshot age stays bounded.
            assert staleness is not None and staleness["lag_ops"] == 0
            assert staleness["seq"] == 5
            fresh_age = client.range((0.0, 0.0), (100.0, 100.0))["staleness"]["age_s"]
            assert fresh_age < refresh * 10 + 1.0
            # And the replica actually serves the updated positions.
            matches = client.range((41.5, 41.5), (47.5, 42.5))["matches"]
            assert {int(m[0]) for m in matches} == set(range(5))
    finally:
        daemon.shutdown()


# -- crash recovery -----------------------------------------------------------


def test_injected_crash_recovers_exactly_the_acked_prefix(tmp_path):
    wal_dir = str(tmp_path / "wal")
    durability = DurabilityManager(
        wal_dir, sync="always", fault=FaultInjector(crash_on_append=3)
    )
    positions = _positions(6)
    service = _service(durability=durability, positions=positions)
    daemon, host, port = _boot(service)
    acked = dict(positions)
    crashed = False
    try:
        with ServeClient(host, port) as client:
            for i in range(6):
                point = (60.0 + i, 60.0)
                try:
                    response = client.update(i, point, 2.0 + i)
                except Exception:
                    crashed = True  # daemon died mid-request: no ack, no entry
                    break
                if response.get("ok"):
                    acked[i] = point
                else:
                    crashed = True
                    break
        daemon.join()
        assert crashed, "fault injector never fired"
        assert isinstance(daemon.error, InjectedCrash)
        assert len(acked) - len(positions) < 6 or any(
            acked[i] != positions[i] for i in positions
        )
    finally:
        daemon.shutdown()
    # Restart from the WAL: the recovered index holds exactly what was
    # acked -- the baseline checkpoint plus every acked update, nothing of
    # the op that crashed.
    recovered, report = recover(wal_dir, repair=True, verify=True)
    assert report.verify_ok
    got = {
        int(oid): (pos[0], pos[1])
        for oid, pos in recovered.range_search(DOMAIN)
    }
    assert got == acked
    assert verify_index(recovered).ok


def test_graceful_shutdown_checkpoint_makes_wal_replay_empty(tmp_path):
    wal_dir = str(tmp_path / "wal")
    service = _service(durability=DurabilityManager(wal_dir, sync="always"))
    daemon, host, port = _boot(service)
    ledger = dict(_positions())
    try:
        with ServeClient(host, port) as client:
            for i in range(4):
                assert client.update(i, (70.0 + i, 70.0), 3.0 + i)["ok"]
                ledger[i] = (70.0 + i, 70.0)
            info = client.checkpoint()
            assert info["covered_acked"] == 4
            client.shutdown()
        daemon.join()
        assert daemon.error is None
    finally:
        daemon.shutdown()
    recovered, report = recover(wal_dir, verify=True)
    assert report.verify_ok
    # The final checkpoint covers everything: replay has nothing to redo.
    assert report.records_replayed == 0
    got = {
        int(oid): (pos[0], pos[1])
        for oid, pos in recovered.range_search(DOMAIN)
    }
    assert got == ledger


def test_checkpoint_waits_for_acked_equals_applied_under_write_load(tmp_path):
    """The checkpoint op must only run once acked == applied: a racing
    handler in the ready-queue gap after queue.join() must not get an
    acked-but-unapplied record covered (and truncated) by the checkpoint."""
    wal_dir = str(tmp_path / "wal")
    service = _service(durability=DurabilityManager(wal_dir, sync="always"))
    slow_apply = service.apply

    def throttled(batch):
        time.sleep(0.005)
        return slow_apply(batch)

    service.apply = throttled
    real_checkpoint = service.checkpoint
    seen = []

    def observing_checkpoint():
        seen.append((service.acked, service.applied))
        return real_checkpoint()

    service.checkpoint = observing_checkpoint
    daemon, host, port = _boot(service, write_batch=2)
    stop = threading.Event()

    def hammer(base):
        with ServeClient(host, port) as c:
            i = 0
            while not stop.is_set():
                c.update(base + i % 10, (1.0 + i % 50, 2.0), 1.0 + i)
                i += 1

    writers = [
        threading.Thread(target=hammer, args=(base,), daemon=True)
        for base in (0, 100)
    ]
    for w in writers:
        w.start()
    try:
        with ServeClient(host, port) as client:
            for _ in range(5):
                info = client.checkpoint()
                assert info["ok"]
        stop.set()
        for w in writers:
            w.join(10.0)
        assert daemon.error is None
        # The forced checkpoints (the load()-time baseline bypasses the op)
        # all ran at a provable quiescent point.
        assert seen, "checkpoint op never reached the service"
        for acked, applied in seen:
            assert acked == applied
    finally:
        stop.set()
        daemon.shutdown()


def test_oversize_batch_is_rejected_not_livelocked():
    service = _service()
    daemon, host, port = _boot(service, queue_depth=4)
    try:
        with ServeClient(host, port) as client:
            updates = [(i, 1.0 + i, 1.0, 0.5) for i in range(5)]
            # Larger than the queue bound could ever hold: a RETRY_AFTER
            # here would make a compliant client retry forever.
            response = client.batch_update(updates)
            assert response["code"] == "BAD_REQUEST"
            assert client.batch_update(updates[:4])["accepted"] == 4
        assert daemon.error is None
    finally:
        daemon.shutdown()


def test_unknown_ops_do_not_grow_the_metrics_registry():
    service = _service()
    daemon, host, port = _boot(service)
    try:
        with ServeClient(host, port) as client:
            for i in range(5):
                assert client.request(f"frobnicate_{i}")["code"] == "UNSUPPORTED"
            values = client.stats()["metrics"]["values"]
        op_metrics = [k for k in values if k.startswith("serve.op.")]
        assert "serve.op.unknown.latency_s" in op_metrics
        assert not any("frobnicate" in k for k in op_metrics)
    finally:
        daemon.shutdown()


# -- batch-path teardown (lifecycle) ------------------------------------------


class _FakeDurability:
    attached = True

    def __init__(self):
        self.checkpoints = 0
        self.closed = False

    def checkpoint(self):
        self.checkpoints += 1

    def close(self):
        self.closed = True


def test_teardown_skips_checkpoint_when_flush_fails():
    from repro.serve.lifecycle import teardown_run

    class BadBuffer:
        def __len__(self):
            return 3

        def flush(self, index, reason):
            raise RuntimeError("disk gone")

    durability = _FakeDurability()
    actions = teardown_run(
        index=object(), buffer=BadBuffer(), durability=durability
    )
    # The buffered records were WAL-logged/acked but never applied: a
    # checkpoint would cover+truncate them out of existence.  The tail
    # must survive for recovery; closing the segments is still fine.
    assert durability.checkpoints == 0
    assert durability.closed
    assert any("flush failed" in a for a in actions)


def test_teardown_checkpoints_after_successful_flush():
    from repro.serve.lifecycle import teardown_run

    class GoodBuffer:
        def __len__(self):
            return 2

        def flush(self, index, reason):
            pass

    durability = _FakeDurability()
    actions = teardown_run(
        index=object(), buffer=GoodBuffer(), durability=durability
    )
    assert durability.checkpoints == 1
    assert "flushed buffer" in actions and "checkpointed" in actions


# -- admission control over the wire -----------------------------------------


def test_admission_rate_limits_over_the_wire():
    service = _service()
    daemon, host, port = _boot(service, rate=5.0, burst=3.0)
    try:
        with ServeClient(host, port) as client:
            outcomes = [
                client.update(i, (5.0, 5.0 + i), 0.5) for i in range(10)
            ]
        admitted = [r for r in outcomes if r.get("ok")]
        rejected = [r for r in outcomes if r.get("code") == "RETRY_AFTER"]
        assert len(admitted) >= 3  # the burst
        assert rejected, "token bucket never shed load"
        for response in rejected:
            assert response["retry_after"] > 0.0
        assert daemon.error is None
    finally:
        daemon.shutdown()


def test_shutting_down_daemon_rejects_new_writes():
    service = _service()
    daemon, host, port = _boot(service)
    try:
        with ServeClient(host, port) as c1, ServeClient(host, port) as c2:
            assert c1.update(1, (8.0, 8.0), 0.5)["ok"]
            c1.shutdown()
            # The drain has begun: a racing writer gets a clean refusal,
            # not a hang or a half-acked write.
            response = None
            try:
                response = c2.request(
                    "update", oid=2, point=[9.0, 9.0], t=0.6
                )
            except Exception:
                pass  # connection already torn down: equally acceptable
            if response is not None and not response.get("ok"):
                assert response["code"] in ("SHUTTING_DOWN", "RETRY_AFTER")
        daemon.join()
        assert daemon.error is None
    finally:
        daemon.shutdown()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
