"""Tests for k-nearest-neighbour search on the R-tree family and CT-R-tree."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.rtree import AlphaTree, LazyRTree, RTree
from repro.storage.pager import Pager
from tests.conftest import random_points

DOMAIN = Rect((0, 0), (1000, 1000))


def brute_knn(points, target, k):
    ranked = sorted(
        (math.dist(target, p), oid) for oid, p in points.items()
    )
    return [oid for _, oid in ranked[:k]]


class TestRectMinDistance:
    def test_inside_is_zero(self):
        assert Rect((0, 0), (10, 10)).min_distance((5, 5)) == 0.0

    def test_boundary_is_zero(self):
        assert Rect((0, 0), (10, 10)).min_distance((10, 5)) == 0.0

    def test_axis_aligned_outside(self):
        assert Rect((0, 0), (10, 10)).min_distance((15, 5)) == 5.0

    def test_corner_distance(self):
        assert Rect((0, 0), (10, 10)).min_distance((13, 14)) == 5.0

    @given(
        st.floats(-100, 100), st.floats(-100, 100),
        st.floats(-100, 100), st.floats(-100, 100),
    )
    def test_lower_bounds_contained_points(self, x, y, px, py):
        rect = Rect((min(x, px) - 1, min(y, py) - 1), (max(x, px) + 1, max(y, py) + 1))
        assert rect.min_distance((x, y)) == 0.0


class TestRTreeNearest:
    def test_rejects_bad_k(self, pager):
        tree = RTree(pager)
        with pytest.raises(ValueError):
            tree.nearest((0, 0), k=0)

    def test_empty_tree(self, pager):
        tree = RTree(pager)
        assert tree.nearest((0, 0), k=3) == []

    def test_single_object(self, pager):
        tree = RTree(pager)
        tree.insert(1, (3.0, 4.0))
        ((dist, oid, point),) = tree.nearest((0.0, 0.0))
        assert (dist, oid, point) == (5.0, 1, (3.0, 4.0))

    def test_k_larger_than_population(self, pager):
        tree = RTree(pager)
        tree.insert(1, (1, 1))
        tree.insert(2, (2, 2))
        assert len(tree.nearest((0, 0), k=10)) == 2

    @pytest.mark.parametrize("cls", [RTree, LazyRTree, AlphaTree])
    def test_matches_brute_force(self, cls, rng):
        tree = cls(Pager(), max_entries=6)
        points = random_points(rng, 200)
        for oid, point in points.items():
            tree.insert(oid, point)
        inner = tree.tree if hasattr(tree, "tree") else tree
        for _ in range(25):
            target = (rng.uniform(0, 100), rng.uniform(0, 100))
            k = rng.randint(1, 10)
            got = [oid for _, oid, _ in inner.nearest(target, k)]
            assert got == brute_knn(points, target, k)

    def test_results_sorted_by_distance(self, pager, rng):
        tree = RTree(pager, max_entries=6)
        points = random_points(rng, 100)
        for oid, point in points.items():
            tree.insert(oid, point)
        distances = [d for d, _, _ in tree.nearest((50, 50), k=20)]
        assert distances == sorted(distances)

    def test_prunes_far_subtrees(self, pager, rng):
        """Best-first must not read the whole tree for k=1."""
        tree = RTree(pager, max_entries=6)
        for oid, point in random_points(rng, 300).items():
            tree.insert(oid, point)
        reads_before = pager.stats.reads()
        tree.nearest((50.0, 50.0), k=1)
        reads = pager.stats.reads() - reads_before
        assert reads < tree.node_count() / 2


class TestCTRTreeNearest:
    def make_tree(self, rng, n=150, with_buffers=True):
        regions = [
            Rect((i * 220.0, j * 220.0), (i * 220.0 + 100, j * 220.0 + 100))
            for i in range(4)
            for j in range(4)
        ]
        tree = CTRTree(
            Pager(), DOMAIN, regions, max_entries=6, ct_params=CTParams(t_list=2)
        )
        points = {}
        for oid in range(n):
            if with_buffers and oid % 4 == 0:
                point = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            else:
                region = regions[oid % len(regions)]
                point = (
                    rng.uniform(region.lo[0], region.hi[0]),
                    rng.uniform(region.lo[1], region.hi[1]),
                )
            tree.insert(oid, point)
            points[oid] = point
        return tree, points

    def test_rejects_bad_k(self, rng):
        tree, _ = self.make_tree(rng, n=5)
        with pytest.raises(ValueError):
            tree.nearest((0, 0), k=0)

    def test_matches_brute_force(self, rng):
        tree, points = self.make_tree(rng)
        for _ in range(25):
            target = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            k = rng.randint(1, 12)
            got = [oid for _, oid, _ in tree.nearest(target, k)]
            assert got == brute_knn(points, target, k)

    def test_finds_buffer_residents(self, rng):
        tree, points = self.make_tree(rng)
        assert tree.buffered_object_count() > 0
        # The nearest object to every buffered object's own location is itself.
        from repro.core.overflow import DataPage, OWNER_LIST

        for oid, point in points.items():
            page = tree.pager.inspect(tree.hash.peek(oid))
            if isinstance(page, DataPage) and page.owner[0] == OWNER_LIST:
                (_, found, _), *_rest = tree.nearest(point, k=1)
                assert math.dist(points[found], point) <= 1e-9
                break

    def test_empty_tree(self):
        tree = CTRTree(Pager(), DOMAIN)
        assert tree.nearest((5, 5), k=2) == []

    def test_after_updates(self, rng):
        tree, points = self.make_tree(rng, n=80)
        for _ in range(200):
            oid = rng.randrange(80)
            new = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.update(oid, points[oid], new)
            points[oid] = new
        for _ in range(10):
            target = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            got = [oid for _, oid, _ in tree.nearest(target, k=5)]
            assert got == brute_knn(points, target, 5)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 1000, allow_nan=False), st.floats(0, 1000, allow_nan=False)),
        min_size=1,
        max_size=80,
    ),
    st.integers(1, 8),
    st.integers(0, 2**16),
)
def test_property_ct_knn_matches_rtree_knn(coords, k, seed):
    rng = random.Random(seed)
    regions = [Rect((200, 200), (500, 500)), Rect((600, 100), (800, 400))]
    ct = CTRTree(Pager(), DOMAIN, regions, max_entries=5)
    rt = RTree(Pager(), max_entries=5)
    points = {}
    for oid, point in enumerate(coords):
        ct.insert(oid, point)
        rt.insert(oid, point)
        points[oid] = point
    target = (rng.uniform(0, 1000), rng.uniform(0, 1000))
    ct_dists = [round(d, 9) for d, _, _ in ct.nearest(target, k)]
    rt_dists = [round(d, 9) for d, _, _ in rt.nearest(target, k)]
    assert ct_dists == rt_dists
