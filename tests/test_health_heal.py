"""The self-healing wrapper: rebuild lifecycle, fallback, driver wiring,
and the end-to-end drift -> rebuild -> cutover acceptance run."""

from __future__ import annotations

import random

from repro.citysim.trace import TraceRecord
from repro.core.geometry import Rect
from repro.engine import FlushPolicy, UpdateBuffer, make_index
from repro.health import (
    DriftMonitor,
    DriftThresholds,
    HealPolicy,
    HealthState,
    RebuildPhase,
    SelfHealingIndex,
    verify_index,
)
from repro.health.verify import VerifyReport
from repro.storage.pager import Pager
from repro.workload import SimulationDriver

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def _wrapper(kind="lazy", **policy_kw):
    pager = Pager()
    inner = make_index(kind, pager, DOMAIN)
    policy = HealPolicy(rebuild_batch=8, cooldown_updates=0, **policy_kw)
    return SelfHealingIndex(inner, kind, DOMAIN, policy=policy), pager


def _drive_to_idle(wrapper, positions, rng, t0=1000.0):
    """Keep applying live updates until the rebuild machine finishes."""
    t = t0
    steps = 0
    while wrapper.phase != RebuildPhase.IDLE:
        oid = rng.choice(list(positions))
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.update(oid, positions[oid], point, now=t)
        positions[oid] = point
        t += 1.0
        steps += 1
        assert steps < 10_000, "rebuild never converged"
    return t


def test_wrapper_delegates_spatial_surface(rng):
    wrapper, pager = _wrapper()
    assert wrapper.pager is pager
    assert wrapper.snapshot_target is wrapper.inner
    wrapper.insert(1, (10.0, 10.0), now=0.0)
    wrapper.insert(2, (20.0, 20.0), now=1.0)
    assert len(wrapper) == 2
    assert {oid for oid, _ in wrapper.range_search(DOMAIN)} == {1, 2}
    wrapper.update(1, (10.0, 10.0), (15.0, 15.0), now=2.0)
    assert wrapper.delete(2) is True
    assert wrapper.delete(2) is False
    assert len(wrapper) == 1
    assert wrapper.validate() == []
    assert wrapper.health_state == HealthState.HEALTHY


def test_manual_rebuild_runs_all_phases_and_cuts_over(rng):
    wrapper, _ = _wrapper()
    positions = {}
    for oid in range(40):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        positions[oid] = point
    old_inner = wrapper.inner
    assert wrapper.request_rebuild() is True
    assert wrapper.request_rebuild() is False  # one at a time
    _drive_to_idle(wrapper, positions, rng)
    assert wrapper.cutovers == 1 and wrapper.rebuilds_failed == 0
    assert wrapper.inner is not old_inner
    assert len(wrapper) == len(positions)
    # No acknowledged update lost: the cutover index serves every object
    # at its latest acknowledged position.
    served = dict(wrapper.range_search(DOMAIN))
    assert served == {oid: tuple(p) for oid, p in positions.items()}
    assert verify_index(wrapper).ok


def test_rebuild_to_ct_kind_re_mines_trails(rng):
    wrapper, _ = _wrapper(trail_window=8)
    positions = {}
    for oid in range(30):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        positions[oid] = point
    t = 50.0
    for _ in range(3):  # give every trail >= 2 samples
        for oid in range(30):
            point = (rng.uniform(0, 100), rng.uniform(0, 100))
            wrapper.update(oid, positions[oid], point, now=t)
            positions[oid] = point
            t += 0.25
    assert wrapper.request_rebuild("ct") is True
    _drive_to_idle(wrapper, positions, rng, t0=t)
    assert wrapper.cutovers == 1
    assert wrapper.kind == "ct"
    assert wrapper.base_kind == "lazy"  # automatic rebuilds still target it
    assert verify_index(wrapper).ok


def test_verify_failure_falls_back_to_lazy(rng, monkeypatch):
    real_verify = verify_index

    def failing_for_ct(index, *, kind=None):
        if kind == "ct":
            report = VerifyReport(kind="ct")
            report.add("structure", "ct", "synthetic failure")
            return report
        return real_verify(index, kind=kind)

    monkeypatch.setattr("repro.health.heal.verify_index", failing_for_ct)
    wrapper, _ = _wrapper()
    positions = {}
    for oid in range(20):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        positions[oid] = point
    assert wrapper.request_rebuild("ct") is True
    _drive_to_idle(wrapper, positions, rng)
    assert wrapper.rebuilds_failed == 1
    assert wrapper.fallbacks == 1
    assert wrapper.cutovers == 1
    assert wrapper.kind == "lazy"
    assert "shadow failed verification" in wrapper.last_error
    served = dict(wrapper.range_search(DOMAIN))
    assert served == {oid: tuple(p) for oid, p in positions.items()}


def test_failed_rebuild_respects_cooldown(rng, monkeypatch):
    def always_failing(index, *, kind=None):
        report = VerifyReport(kind=kind or "?")
        report.add("structure", "x", "always bad")
        return report

    monkeypatch.setattr("repro.health.heal.verify_index", always_failing)
    pager = Pager()
    inner = make_index("lazy", pager, DOMAIN)
    wrapper = SelfHealingIndex(
        inner, "lazy", DOMAIN,
        policy=HealPolicy(
            rebuild_batch=64, cooldown_updates=50, fallback_kind=None
        ),
        monitor=DriftMonitor(
            window=5, thresholds=DriftThresholds(confirm_windows=1),
            ewma_alpha=1.0,
        ),
    )
    positions = {}
    for oid in range(10):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        positions[oid] = point
    # Teleporting updates are never lazy -> the monitor degrades fast and
    # keeps trying; the cooldown must bound the number of attempts.
    t = 100.0
    for _ in range(200):
        oid = rng.choice(list(positions))
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.update(oid, positions[oid], point, now=t)
        positions[oid] = point
        t += 1.0
    assert wrapper.rebuilds_failed >= 1
    # 200 updates at a 50-update cooldown: a handful of attempts, not one
    # per update.
    assert wrapper.rebuilds_started <= 6


def test_deletes_during_rebuild_are_honoured(rng):
    wrapper, _ = _wrapper()
    positions = {}
    for oid in range(40):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        positions[oid] = point
    assert wrapper.request_rebuild() is True
    t = 100.0
    doomed = list(range(0, 40, 5))
    for oid in doomed:
        wrapper.delete(oid, now=t)
        del positions[oid]
        t += 1.0
    _drive_to_idle(wrapper, positions, rng, t0=t)
    assert wrapper.cutovers == 1
    served = dict(wrapper.range_search(DOMAIN))
    assert served == {oid: tuple(p) for oid, p in positions.items()}


def test_cutover_flags_durability_checkpoint(tmp_path, rng):
    from repro.durability import DurabilityManager, recover

    pager = Pager()
    inner = make_index("lazy", pager, DOMAIN)
    manager = DurabilityManager(tmp_path, sync="always")
    wrapper = SelfHealingIndex(
        inner, "lazy", DOMAIN,
        policy=HealPolicy(rebuild_batch=8, cooldown_updates=0),
        durability=manager,
    )
    manager.attach(wrapper)
    positions = {}
    for oid in range(25):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        positions[oid] = point
    manager.checkpoint()  # baseline
    assert wrapper.checkpoint_due is False
    assert wrapper.request_rebuild("ct") is True
    _drive_to_idle(wrapper, positions, rng)
    assert wrapper.cutovers == 1
    assert wrapper.checkpoint_due is True
    assert wrapper.checkpoint_if_due() is True
    assert wrapper.checkpoint_due is False
    assert wrapper.checkpoint_if_due() is False  # one-shot
    manager.close()
    # The checkpoint captured the *serving* structure (snapshot_target),
    # so recovery comes back as the post-cutover kind and verifies.
    recovered, report = recover(tmp_path)
    assert report.kind == "ct"
    assert report.verify_ok is True
    assert len(recovered) == len(positions)


def _records(positions, rng, n, t0, spots=None, jitter=1.0, interval=1.0):
    """A synthetic update stream: random teleports, or dwell around spots."""
    records = []
    t = t0
    oids = list(positions)
    for i in range(n):
        oid = oids[i % len(oids)]
        if spots is None:
            point = (rng.uniform(0, 100), rng.uniform(0, 100))
        else:
            cx, cy = spots[oid % len(spots)]
            point = (
                min(max(cx + rng.gauss(0, jitter), 0.0), 100.0),
                min(max(cy + rng.gauss(0, jitter), 0.0), 100.0),
            )
        records.append(TraceRecord(oid, point, t))
        positions[oid] = point
        t += interval
    return records, t


def test_driver_tags_flush_reasons(rng):
    wrapper, pager = _wrapper()
    buffer = UpdateBuffer(FlushPolicy(batch_size=8))
    driver = SimulationDriver(wrapper, pager, "lazy", update_buffer=buffer)
    assert driver._healing is wrapper
    positions = {oid: (50.0, 50.0) for oid in range(20)}
    driver.load(positions)
    records, _ = _records(positions, rng, 100, t0=10.0)
    driver.run(records)
    reasons = buffer.stats.reasons
    assert reasons.get("size", 0) >= 1
    assert reasons.get("final", 0) <= 1
    assert sum(reasons.values()) == buffer.stats.flushes


def test_critical_transition_force_drains_buffer(rng):
    pager = Pager()
    inner = make_index("lazy", pager, DOMAIN)
    monitor = DriftMonitor(
        window=10,
        thresholds=DriftThresholds(
            degraded_enter=0.95, degraded_exit=0.97,
            critical_enter=0.9, critical_exit=0.93, confirm_windows=1,
        ),
        ewma_alpha=1.0,
    )
    wrapper = SelfHealingIndex(
        inner, "lazy", DOMAIN, monitor=monitor,
        policy=HealPolicy(rebuild_batch=8, cooldown_updates=10_000),
    )
    # Batches of 30: the monitor (window 10) goes CRITICAL during the
    # first flush; the very next buffered update must then be force-
    # drained instead of waiting out a full batch.
    buffer = UpdateBuffer(FlushPolicy(batch_size=30))
    driver = SimulationDriver(wrapper, pager, "lazy", update_buffer=buffer)
    positions = {oid: (50.0, 50.0) for oid in range(30)}
    driver.load(positions)
    records, _ = _records(positions, rng, 120, t0=10.0)  # teleports: not lazy
    driver.run(records)
    assert monitor.state == HealthState.CRITICAL
    assert buffer.stats.reasons.get("critical", 0) >= 1


def test_acceptance_drift_rebuild_cutover_lowers_update_io(rng):
    """The ISSUE's acceptance run, distilled: a CT-R-tree mined for one
    movement pattern, a mid-run shift to another, self-healing on.  The
    run must (a) complete >= 1 shadow rebuild + cutover, (b) leave a
    verifying index, (c) spend less update I/O per op after the cutover
    than in its DEGRADED windows."""
    from .conftest import dwell_trail

    old_spots = [(15.0, 15.0), (85.0, 20.0), (20.0, 80.0)]
    new_spots = [(65.0, 65.0), (35.0, 60.0), (70.0, 30.0)]
    histories = {
        oid: dwell_trail(rng, old_spots, dwell_reports=20)
        for oid in range(30)
    }
    pager = Pager()
    inner = make_index(
        "ct", pager, DOMAIN, histories=histories, query_rate=1.0
    )
    monitor = DriftMonitor(
        window=50,
        thresholds=DriftThresholds(confirm_windows=1),
        ewma_alpha=0.5,
    )
    wrapper = SelfHealingIndex(
        inner, "ct", DOMAIN, monitor=monitor,
        policy=HealPolicy(
            trail_window=16, rebuild_batch=16, cooldown_updates=100,
        ),
    )
    driver = SimulationDriver(wrapper, pager, "ct")
    positions = {}
    t = 3000.0
    for oid in range(30):
        cx, cy = old_spots[oid % len(old_spots)]
        positions[oid] = (cx + rng.gauss(0, 1), cy + rng.gauss(0, 1))
    driver.load(positions, now=t)

    # Phase A: the mined pattern -- dwell around the old spots.
    records, t = _records(
        positions, rng, 300, t0=t + 20.0, spots=old_spots, interval=20.0
    )
    driver.run(records)
    assert monitor.state == HealthState.HEALTHY

    # Phase B: the workload shifts -- everyone dwells around new spots the
    # mined qs-regions know nothing about.
    records, t = _records(
        positions, rng, 1500, t0=t, spots=new_spots, interval=20.0
    )
    driver.run(records)

    assert wrapper.cutovers >= 1, wrapper.health_dict()
    report = verify_index(wrapper)
    assert report.ok, report.summary()
    served = dict(wrapper.range_search(DOMAIN))
    assert served == {oid: tuple(p) for oid, p in positions.items()}

    degraded = [
        w.ios_per_update for w in monitor.windows
        if w.state != HealthState.HEALTHY
    ]
    assert degraded, "the shift never degraded the index"
    # Post-cutover steady state: the last windows of the run (the monitor
    # was reset at cutover, so late windows are post-cutover by design).
    settled = [w.ios_per_update for w in monitor.windows[-3:]]
    assert sum(settled) / len(settled) < sum(degraded) / len(degraded)
