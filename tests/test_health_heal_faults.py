"""Fault-injected self-healing: crash mid-rebuild and mid-cutover.

The invariant under test is the ISSUE's acceptance criterion (d): a crash
at any injected point during rebuild or cutover recovers to exactly one
consistent, verifying index containing every acknowledged update -- an
update counts as acknowledged once its WAL append returned.
"""

from __future__ import annotations

import random

import pytest

from repro.core.geometry import Rect
from repro.durability import DurabilityManager, recover
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.engine import make_index
from repro.health import HealPolicy, RebuildPhase, SelfHealingIndex, verify_index
from repro.storage.pager import Pager

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))
N_OBJECTS = 30


def _setup(tmp_path, fault):
    """A lazy R-tree behind a self-healing wrapper and an always-sync WAL."""
    pager = Pager()
    inner = make_index("lazy", pager, DOMAIN)
    manager = DurabilityManager(tmp_path, sync="always", fault=fault)
    wrapper = SelfHealingIndex(
        inner, "lazy", DOMAIN,
        policy=HealPolicy(rebuild_batch=4, cooldown_updates=10_000),
        durability=manager,
    )
    manager.attach(wrapper)
    rng = random.Random(7)
    acked = {}
    for oid in range(N_OBJECTS):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        acked[oid] = point
    manager.checkpoint()  # the baseline the bulk load rides on
    return wrapper, manager, acked, rng


def _stream_until_crash(wrapper, manager, acked, rng, n, t0=1000.0):
    """Log-then-apply ``n`` updates (the driver's unbuffered protocol);
    returns the clock, or raises InjectedCrash with ``acked`` holding
    exactly the acknowledged prefix."""
    t = t0
    for _ in range(n):
        oid = rng.randrange(N_OBJECTS)
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        old = acked[oid]
        # The WAL append is the acknowledgement point: a crash inside it
        # means this update was never acked, so ``acked`` must not hold it.
        manager.log_update(oid, old, point, t)
        wrapper.update(oid, old, point, now=t)
        acked[oid] = point
        manager.note_applied(1)
        t += 1.0
    return t


def _assert_recovers_to_acked(tmp_path, acked):
    index, report = recover(tmp_path)
    assert report.verify_ok is True, report.verify_violations
    served = dict(index.range_search(DOMAIN))
    assert served == {oid: tuple(p) for oid, p in acked.items()}
    assert verify_index(index).ok
    return index, report


@pytest.mark.parametrize("crash_at", [3, 10, 25, 60])
def test_crash_mid_rebuild_recovers_acked_prefix(tmp_path, crash_at):
    # The injector counts every WAL frame; the baseline setup writes some,
    # so arm it only once the rebuild streaming starts.
    fault = FaultInjector()
    wrapper, manager, acked, rng = _setup(tmp_path, fault)
    assert wrapper.request_rebuild("ct") is True
    fault.crash_on_append = fault.appends + crash_at
    with pytest.raises(InjectedCrash):
        _stream_until_crash(wrapper, manager, acked, rng, 500)
        pytest.fail("fault never fired")  # pragma: no cover
    # The crashing append never returned: the in-flight update is not part
    # of the acknowledged prefix (``acked`` was not advanced past it).
    manager.close()
    _assert_recovers_to_acked(tmp_path, acked)


def test_crash_mid_cutover_checkpoint_keeps_old_state(tmp_path):
    fault = FaultInjector()
    wrapper, manager, acked, rng = _setup(tmp_path, fault)
    assert wrapper.request_rebuild("ct") is True
    t = _stream_until_crash(wrapper, manager, acked, rng, 200)
    # Drive the rebuild to completion if the stream alone didn't.
    guard = 0
    while wrapper.phase != RebuildPhase.IDLE:
        wrapper.advance(t)
        t += 1.0
        guard += 1
        assert guard < 1000
    assert wrapper.cutovers == 1
    assert wrapper.checkpoint_due is True
    # The post-cutover checkpoint dies after writing the tmp snapshot but
    # before the atomic rename publishes it.
    fault.crash_on_checkpoint_replace = True
    with pytest.raises(InjectedCrash):
        wrapper.checkpoint_if_due()
    assert wrapper.checkpoint_due is True  # not cleared on failure
    manager.close()
    # Recovery lands on the *pre-cutover* checkpoint plus the full WAL:
    # one consistent index, nothing acknowledged lost, and the aborted
    # checkpoint's tmp file swept away.
    index, report = _assert_recovers_to_acked(tmp_path, acked)
    assert report.kind == "lazy"
    assert report.tmp_files_removed >= 1


def test_cutover_checkpoint_published_then_crash_recovers_new_kind(tmp_path):
    """Crash right *after* the cutover checkpoint: recovery must come back
    as the rebuilt kind with an empty tail to replay."""
    fault = FaultInjector()
    wrapper, manager, acked, rng = _setup(tmp_path, fault)
    assert wrapper.request_rebuild("ct") is True
    t = _stream_until_crash(wrapper, manager, acked, rng, 200)
    guard = 0
    while wrapper.phase != RebuildPhase.IDLE:
        wrapper.advance(t)
        t += 1.0
        guard += 1
        assert guard < 1000
    assert wrapper.cutovers == 1
    assert wrapper.checkpoint_if_due() is True
    # Process dies here -- after publish, before any further update.
    manager.close()
    index, report = _assert_recovers_to_acked(tmp_path, acked)
    assert report.kind == "ct"
    assert report.records_replayed == 0


@pytest.mark.parametrize("crash_sync", [2, 5])
def test_crash_on_group_sync_loses_only_unacked_tail(tmp_path, crash_sync):
    """With group commit, records staged since the last fsync are not yet
    acknowledged; a crash on the sync may lose exactly those and recovery
    must still verify."""
    pager = Pager()
    inner = make_index("lazy", pager, DOMAIN)
    fault = FaultInjector()
    manager = DurabilityManager(tmp_path, sync="group:4", fault=fault)
    wrapper = SelfHealingIndex(
        inner, "lazy", DOMAIN,
        policy=HealPolicy(rebuild_batch=4, cooldown_updates=10_000),
        durability=manager,
    )
    manager.attach(wrapper)
    rng = random.Random(11)
    positions = {}
    for oid in range(N_OBJECTS):
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        wrapper.insert(oid, point, now=float(oid))
        positions[oid] = point
    manager.checkpoint()
    assert wrapper.request_rebuild("ct") is True
    fault.crash_on_sync = fault.syncs + crash_sync
    t = 1000.0
    with pytest.raises(InjectedCrash):
        for _ in range(500):
            oid = rng.randrange(N_OBJECTS)
            point = (rng.uniform(0, 100), rng.uniform(0, 100))
            manager.log_update(oid, positions[oid], point, t)
            wrapper.update(oid, positions[oid], point, now=t)
            positions[oid] = point
            t += 1.0
    # No manager.close(): a dying process does not flush its handles, and
    # closing would fsync (and re-fire the fault).  Recovery reads the
    # files as the crash left them.
    index, report = recover(tmp_path)
    assert report.verify_ok is True, report.verify_violations
    assert verify_index(index).ok
    # The recovered positions must be a consistent prefix of the applied
    # stream: every object present, each at some position it really held.
    served = dict(index.range_search(DOMAIN))
    assert set(served) == set(positions)
