"""Unit tests for the LRU buffer pool ablation substrate."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import RawPage
from repro.storage.pager import Pager


@pytest.fixture
def pool():
    return BufferPool(Pager(), capacity=3)


class TestBasics:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(Pager(), capacity=0)

    def test_allocate_charges_one_write_and_caches(self, pool):
        pid = pool.allocate(RawPage("a"))
        assert pool.stats.writes() == 1
        before = pool.stats.reads()
        pool.read(pid)  # cached: free
        assert pool.stats.reads() == before
        assert pool.hits == 1

    def test_read_miss_charges_then_hit_is_free(self):
        pager = Pager()
        pids = [pager.allocate(RawPage(i)) for i in range(5)]
        pool = BufferPool(pager, capacity=2)
        pool.read(pids[0])
        assert pool.misses == 1
        assert pager.stats.reads() == 1
        pool.read(pids[0])
        assert pool.hits == 1
        assert pager.stats.reads() == 1


class TestEviction:
    def test_lru_eviction_order(self, pool):
        pids = [pool.allocate(RawPage(i)) for i in range(3)]
        pool.read(pids[0])  # 0 most recent
        pool.allocate(RawPage(3))  # evicts pid 1 (least recent)
        reads_before = pool.stats.reads()
        pool.read(pids[0])
        assert pool.stats.reads() == reads_before  # still cached
        pool.read(pids[1])
        assert pool.stats.reads() == reads_before + 1  # was evicted

    def test_dirty_eviction_writes_back(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=1)
        page_a = RawPage("a")
        pool.allocate(page_a)
        pool.write(page_a)  # dirty, not yet charged
        writes_before = pager.stats.writes()
        pool.allocate(RawPage("b"))  # evicts dirty a -> +1 write-back +1 alloc
        assert pager.stats.writes() == writes_before + 2

    def test_clean_eviction_is_free(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=1)
        pid = pager.allocate(RawPage("cold"))
        pool.read(pid)  # clean frame
        writes_before = pager.stats.writes()
        pool.allocate(RawPage("hot"))  # evicts clean: only the alloc write
        assert pager.stats.writes() == writes_before + 1


class TestWriteBack:
    def test_write_deferred_until_flush(self, pool):
        page = RawPage("x")
        pool.allocate(page)
        writes_before = pool.stats.writes()
        pool.write(page)
        pool.write(page)
        assert pool.stats.writes() == writes_before  # absorbed
        assert pool.flush() == 1
        assert pool.stats.writes() == writes_before + 1

    def test_flush_twice_writes_once(self, pool):
        page = RawPage()
        pool.allocate(page)
        pool.write(page)
        assert pool.flush() == 1
        assert pool.flush() == 0

    def test_free_drops_frame(self, pool):
        page = RawPage()
        pid = pool.allocate(page)
        pool.write(page)
        pool.free(pid)
        assert pool.flush() == 0  # dirty frame gone with the page

    def test_free_dirty_frame_charges_writeback(self):
        """The deferred write comes due when the page is released: the
        cache-less pager charged the mutation immediately, so dropping it
        would undercount pooled runs."""
        pager = Pager()
        pool = BufferPool(pager, capacity=4)
        page = RawPage("d")
        pid = pool.allocate(page)
        pool.write(page)  # dirty, deferred
        writes_before = pager.stats.writes()
        pool.free(pid)
        assert pager.stats.writes() == writes_before + 1
        assert pool.dirty_writebacks == 1

    def test_free_clean_frame_is_uncharged(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=4)
        pid = pool.allocate(RawPage("c"))  # cached clean
        writes_before = pager.stats.writes()
        pool.free(pid)
        assert pager.stats.writes() == writes_before
        assert pool.dirty_writebacks == 0

    def test_write_miss_charges_read(self):
        """Write-back caches are read-modify-write: dirtying a non-resident
        page must fetch it first."""
        pager = Pager()
        page = RawPage("cold")
        pager.allocate(page)
        pool = BufferPool(pager, capacity=2)
        reads_before = pager.stats.reads()
        pool.write(page)  # not resident
        assert pager.stats.reads() == reads_before + 1
        assert pool.misses == 1
        # Now resident and dirty: a second write is absorbed ...
        pool.write(page)
        assert pager.stats.reads() == reads_before + 1
        # ... and the deferred write surfaces on flush.
        assert pool.flush() == 1

    def test_hit_rate(self, pool):
        pid = pool.allocate(RawPage())
        pool.read(pid)
        pool.read(pid)
        assert pool.hit_rate == 1.0


class TestTelemetry:
    def test_eviction_counters(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=1)
        page_a = RawPage("a")
        pool.allocate(page_a)
        pool.write(page_a)           # dirty
        pool.allocate(RawPage("b"))  # evicts dirty a
        pool.allocate(RawPage("c"))  # evicts clean b
        assert pool.evictions == 2
        assert pool.dirty_writebacks == 1

    def test_flush_counts_writebacks(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=4)
        page = RawPage()
        pool.allocate(page)
        pool.write(page)
        pool.flush()
        assert pool.dirty_writebacks == 1

    def test_metrics_dict_schema(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=2)
        pid = pool.allocate(RawPage())
        pool.read(pid)
        d = pool.metrics_dict()
        assert d["capacity"] == 2
        assert d["frames"] == 1
        assert d["hits"] == 1
        assert d["misses"] == 0
        assert d["hit_rate"] == 1.0
        assert d["evictions"] == 0
        assert d["dirty_writebacks"] == 0


class TestPagerParity:
    """The pool must be a drop-in replacement for the Pager interface."""

    def test_inspect_contains_iter(self, pool):
        pid = pool.allocate(RawPage("z"))
        assert pool.inspect(pid).payload == "z"
        assert pool.contains(pid)
        assert list(pool.iter_pids()) == [pid]

    def test_page_size_and_count(self, pool):
        pool.allocate(RawPage())
        assert pool.page_size == 4096
        assert pool.page_count == 1
