"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Tuple

import pytest

from repro.core.geometry import Point, Rect
from repro.storage.pager import Pager


@pytest.fixture
def pager() -> Pager:
    return Pager()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def brute_force_range(
    positions: Dict[int, Point], rect: Rect
) -> List[int]:
    """The oracle for range queries: scan every object."""
    return sorted(
        oid for oid, point in positions.items() if rect.contains_point(point)
    )


def random_points(
    rng: random.Random, count: int, lo: float = 0.0, hi: float = 100.0
) -> Dict[int, Point]:
    return {
        oid: (rng.uniform(lo, hi), rng.uniform(lo, hi)) for oid in range(count)
    }


def random_query(rng: random.Random, span: float = 100.0) -> Rect:
    x0, y0 = rng.uniform(0, span), rng.uniform(0, span)
    return Rect(
        (x0, y0), (x0 + rng.uniform(0, span / 2), y0 + rng.uniform(0, span / 2))
    )


def dwell_trail(
    rng: random.Random,
    spots: Iterable[Tuple[float, float]],
    dwell_reports: int = 30,
    interval: float = 20.0,
    jitter: float = 2.0,
    travel_speed: float = 10.0,
) -> List[Tuple[Point, float]]:
    """A synthetic dwell-then-travel trail through the given spots.

    Matches the movement regime the paper's Section 2 motivates and Phase 1
    expects: long confined jitter around each spot, fast straight hops
    between them.
    """
    trail: List[Tuple[Point, float]] = []
    t = 0.0
    previous = None
    for cx, cy in spots:
        if previous is not None:
            # A couple of fast travel samples between the spots.
            px, py = previous
            steps = max(1, int(((cx - px) ** 2 + (cy - py) ** 2) ** 0.5 / (travel_speed * interval)))
            for step in range(1, steps + 1):
                t += interval
                frac = step / (steps + 1)
                trail.append(((px + (cx - px) * frac, py + (cy - py) * frac), t))
        for _ in range(dwell_reports):
            t += interval
            trail.append(
                ((cx + rng.gauss(0, jitter), cy + rng.gauss(0, jitter)), t)
            )
        previous = (cx, cy)
    return trail
