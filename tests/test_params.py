"""Unit tests for Table-1 parameter handling."""

import pytest

from repro.core.params import CTParams, SimulationParams, format_table1


class TestSimulationParams:
    def test_paper_defaults(self):
        p = SimulationParams()
        assert p.n_objects == 100_000
        assert p.update_rate == 5000.0
        assert p.query_rate == 50.0
        assert p.n_history == 110
        assert p.n_updates == 20
        assert p.entries_per_page == 20
        assert p.page_size == 4096

    def test_report_interval(self):
        assert SimulationParams().report_interval == pytest.approx(20.0)

    def test_update_query_ratio_baseline_is_100(self):
        assert SimulationParams().update_query_ratio == pytest.approx(100.0)

    def test_query_size_fraction(self):
        assert SimulationParams().query_size_fraction == pytest.approx(0.001)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_objects", 0),
            ("n_history", 1),
            ("n_updates", -1),
            ("entries_per_page", 3),
            ("query_size_pct", 0.0),
            ("query_size_pct", 150.0),
            ("update_rate", 0.0),
            ("query_rate", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            SimulationParams(**{field: value})

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            SimulationParams(t_fill=0.6, t_empty=0.5)


class TestCTParams:
    def test_paper_defaults(self):
        p = CTParams()
        assert p.t_dist == 30.0
        assert p.t_rate == 1.0
        assert p.t_time == 300.0
        assert p.t_area == 22_500.0
        assert p.c_query == 1.0
        assert p.c_update == 1.0
        assert p.alpha == 0.1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("t_dist", 0.0),
            ("t_rate", -1.0),
            ("t_time", 0.0),
            ("t_area", -5.0),
            ("c_query", -1.0),
            ("t_list", 0),
            ("t_buf_num", 0),
            ("t_buf_time", -1.0),
            ("t_remove", -0.1),
            ("alpha", -0.2),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            CTParams(**{field: value})


class TestTable1:
    def test_format_contains_all_labels(self):
        text = format_table1(SimulationParams(), CTParams())
        for label in ("lambda_u", "T_start", "N_obj", "T_dist", "T_area", "C_q", "S_hash"):
            assert label in text

    def test_appendix_knobs_not_in_table1(self):
        text = format_table1(SimulationParams(), CTParams())
        assert "t_list" not in text
        assert "t_buf_num" not in text
