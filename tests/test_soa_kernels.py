"""Property tests for the struct-of-arrays whole-node scans (PR 7).

The bit-identical contract: every SoA scan must return exactly what a
per-entry loop over ``Rect`` methods returns -- same index sets, same
winners, same tie-breaks -- on *arbitrary* buffers, including NaN
coordinates, zero-extent rects, and rects one ulp away from the query
boundary.  Both the pure-Python scan path (n < NP_SCAN_MIN) and the
vectorized path (n >= NP_SCAN_MIN) are exercised.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import NP_SCAN_MIN, Rect
from repro.rtree.node import Entry, ObjectEntries, SoAEntries

INF = math.inf

# Coordinates deliberately include NaN, infinities, signed zeros, and
# huge/tiny magnitudes: the contract is agreement, not validity.
coord = st.floats(allow_nan=True, allow_infinity=True, width=64)

# ``Rect._make`` skips the lo<=hi validation the public constructor
# enforces -- node buffers inherit whatever the tree wrote, so the scans
# must agree even on malformed boxes.
raw_rect = st.tuples(coord, coord, coord, coord).map(
    lambda c: Rect._make((c[0], c[1]), (c[2], c[3]))
)

# Well-formed rects (for properties whose oracle needs a valid box).
_fin = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
_extent = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
valid_rect = st.tuples(_fin, _fin, _extent, _extent).map(
    lambda c: Rect((c[0], c[1]), (c[0] + c[2], c[1] + c[3]))
)


def _pack(rects):
    soa = SoAEntries()
    for child, rect in enumerate(rects):
        soa.append(Entry(rect, child))
    return soa


def _oracle_intersecting(rects, q):
    return [i for i, r in enumerate(rects) if r.intersects(q)]


def _oracle_containing(rects, point):
    return [i for i, r in enumerate(rects) if r.contains_point(point)]


def _oracle_choose(rects, q):
    """Guttman's ChooseLeaf as the object path ran it (first-wins ties)."""
    best = -1
    best_enl = INF
    best_area = INF
    for i, r in enumerate(rects):
        area = r.area
        enl = r.enlargement(q)
        if enl < best_enl or (enl == best_enl and area < best_area):
            best = i
            best_enl = enl
            best_area = area
    return best


@settings(max_examples=120, deadline=None)
@given(st.lists(raw_rect, max_size=30), raw_rect)
def test_scans_agree_on_arbitrary_buffers_small(rects, q):
    soa = _pack(rects)
    assert soa.intersecting_indices(q.lo, q.hi) == _oracle_intersecting(rects, q)
    assert soa.containing_point_indices(q.lo) == _oracle_containing(rects, q.lo)
    assert soa.choose_subtree(q.lo, q.hi) == _oracle_choose(rects, q)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(raw_rect, min_size=NP_SCAN_MIN, max_size=NP_SCAN_MIN + 80),
    raw_rect,
)
def test_scans_agree_on_arbitrary_buffers_vectorized(rects, q):
    soa = _pack(rects)
    assert soa.intersecting_indices(q.lo, q.hi) == _oracle_intersecting(rects, q)
    assert soa.containing_point_indices(q.lo) == _oracle_containing(rects, q.lo)
    assert soa.choose_subtree(q.lo, q.hi) == _oracle_choose(rects, q)


@settings(max_examples=60, deadline=None)
@given(st.lists(valid_rect, min_size=1, max_size=90), valid_rect)
def test_soa_matches_object_container(rects, q):
    """The two registered layouts are interchangeable scan for scan."""
    soa = _pack(rects)
    obj = ObjectEntries()
    for child, rect in enumerate(rects):
        obj.append(Entry(rect, child))
    assert soa.intersecting_indices(q.lo, q.hi) == obj.intersecting_indices(
        q.lo, q.hi
    )
    assert soa.choose_subtree(q.lo, q.hi) == obj.choose_subtree(q.lo, q.hi)
    assert soa.containing_point_indices(q.lo) == obj.containing_point_indices(
        q.lo
    )
    assert soa.union_rect() == obj.union_rect() == Rect.union_all(rects)


# -- deterministic edge cases ------------------------------------------------


def _sizes():
    # One size per scan path: pure-Python and vectorized.
    return (8, NP_SCAN_MIN + 8)


def test_ulp_boundary_rects():
    """A rect one ulp outside the query must not report intersection; a
    rect exactly on the closed boundary must."""
    q = Rect((10.0, 10.0), (20.0, 20.0))
    above = math.nextafter(20.0, INF)
    below = math.nextafter(10.0, -INF)
    for n in _sizes():
        touching = Rect((20.0, 20.0), (25.0, 25.0))  # shares one corner
        off_hi = Rect((above, 20.0), (25.0, 25.0))  # one ulp past hi
        off_lo = Rect((5.0, 5.0), (below, 9.0))  # one ulp short of lo
        filler = [Rect((100.0, 100.0), (101.0, 101.0))] * (n - 3)
        rects = [touching, off_hi, off_lo] + filler
        soa = _pack(rects)
        assert soa.intersecting_indices(q.lo, q.hi) == [0]
        assert _oracle_intersecting(rects, q) == [0]


def test_zero_extent_rects():
    """Degenerate (point) rects participate in every scan."""
    q = Rect((0.0, 0.0), (10.0, 10.0))
    for n in _sizes():
        inside = Rect((5.0, 5.0), (5.0, 5.0))
        on_edge = Rect((10.0, 10.0), (10.0, 10.0))
        outside = Rect((11.0, 11.0), (11.0, 11.0))
        filler = [Rect((50.0, 50.0), (51.0, 51.0))] * (n - 3)
        rects = [inside, on_edge, outside] + filler
        soa = _pack(rects)
        assert soa.intersecting_indices(q.lo, q.hi) == [0, 1]
        assert soa.containing_point_indices((5.0, 5.0)) == [0]
        assert soa.choose_subtree(q.lo, q.hi) == _oracle_choose(rects, q)


def test_nan_rects_fall_through_identically():
    """NaN coordinates poison comparisons the same way on both paths."""
    nan = float("nan")
    q = Rect((0.0, 0.0), (10.0, 10.0))
    for n in _sizes():
        rects = [
            Rect._make((nan, 1.0), (2.0, 2.0)),
            Rect._make((1.0, 1.0), (nan, 2.0)),
            Rect((1.0, 1.0), (2.0, 2.0)),
        ]
        rects += [Rect._make((nan, nan), (nan, nan))] * (n - 3)
        soa = _pack(rects)
        assert soa.intersecting_indices(q.lo, q.hi) == _oracle_intersecting(
            rects, q
        )
        assert soa.choose_subtree(q.lo, q.hi) == _oracle_choose(rects, q)
        # An all-NaN node picks nobody, exactly like the object loop.
        all_nan = _pack([Rect._make((nan, nan), (nan, nan))] * n)
        assert all_nan.choose_subtree(q.lo, q.hi) == -1


def test_choose_subtree_first_wins_ties():
    """Identical rects: the lowest index must win on both paths."""
    q = Rect((1.0, 1.0), (2.0, 2.0))
    r = Rect((0.0, 0.0), (5.0, 5.0))
    for n in _sizes():
        soa = _pack([r] * n)
        assert soa.choose_subtree(q.lo, q.hi) == 0
