"""Unit tests for R-tree node/entry primitives."""

from repro.core.geometry import Rect
from repro.rtree.node import Entry, RTreeNode
from repro.storage.page import NO_PAGE


class TestEntry:
    def test_for_point_builds_degenerate_rect(self):
        entry = Entry.for_point((3.0, 4.0), 7)
        assert entry.rect.lo == entry.rect.hi == (3.0, 4.0)
        assert entry.child == 7
        assert entry.point == (3.0, 4.0)

    def test_repr(self):
        entry = Entry(Rect((0, 0), (1, 1)), 5)
        assert "child=5" in repr(entry)


class TestRTreeNode:
    def test_fresh_node_state(self):
        node = RTreeNode(level=2)
        assert node.level == 2
        assert not node.is_leaf
        assert node.is_root  # no parent yet
        assert node.parent == NO_PAGE
        assert node.mbr is None
        assert node.tag is None
        assert node.entries == []

    def test_leaf_detection(self):
        assert RTreeNode(level=0).is_leaf
        assert not RTreeNode(level=1).is_leaf

    def test_tight_mbr(self):
        node = RTreeNode(level=0)
        assert node.tight_mbr() is None
        node.entries.append(Entry.for_point((0.0, 0.0), 1))
        node.entries.append(Entry.for_point((4.0, 2.0), 2))
        assert node.tight_mbr() == Rect((0, 0), (4, 2))

    def test_find_entry(self):
        node = RTreeNode(level=0)
        node.entries = [Entry.for_point((0.0, 0.0), 10), Entry.for_point((1.0, 1.0), 20)]
        assert node.find_entry(20) == 1
        assert node.find_entry(30) is None

    def test_repr_counts_entries(self):
        node = RTreeNode(level=1)
        node.entries = [Entry(Rect((0, 0), (1, 1)), 3)]
        assert "entries=1" in repr(node)
