"""ParallelShardedIndex parity: worker pools change *where* work runs,
never what happens or what gets charged.

Every test replays one deterministic workload against the inline
:class:`ShardedIndex` and the parallel engine (both modes) and compares
observable state: I/O ledgers per category, query result sequences, move
counters, object counts, per-shard run ledgers.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core.geometry import Rect
from repro.engine import IndexKind, ShardedIndex
from repro.engine.buffer import PendingUpdate
from repro.parallel import ParallelShardedIndex

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))
N_SHARDS = 4
N_OBJECTS = 48
MODES = ["thread", "process"]


def _io_signature(stats):
    return tuple(
        (cat, counter.reads, counter.writes)
        for cat, counter in sorted(stats.snapshot().items())
    )


def _script(seed: int = 5):
    """A deterministic op script: inserts, drifts (some crossing shard
    boundaries), deletes, and range queries, with per-object positions."""
    rng = random.Random(seed)
    ops: List[tuple] = []
    pos = {}
    t = 1000.0
    for oid in range(N_OBJECTS):
        p = (rng.uniform(0, 100), rng.uniform(0, 100))
        pos[oid] = p
        ops.append(("insert", oid, p, t))
        t += 1.0
    for _ in range(4):
        for oid in range(N_OBJECTS):
            if rng.random() < 0.25:
                # Long horizontal hop: likely crosses a slab boundary.
                p = (rng.uniform(0, 100), pos[oid][1])
            else:
                p = (
                    min(100.0, max(0.0, pos[oid][0] + rng.uniform(-4, 4))),
                    min(100.0, max(0.0, pos[oid][1] + rng.uniform(-4, 4))),
                )
            ops.append(("update", oid, pos[oid], p, t))
            pos[oid] = p
            t += 1.0
        lo = (rng.uniform(0, 80), rng.uniform(0, 80))
        ops.append(("query", Rect(lo, (lo[0] + 20.0, lo[1] + 20.0))))
    for oid in range(0, N_OBJECTS, 7):
        ops.append(("delete", oid, pos.pop(oid), t))
        t += 1.0
    return ops, pos


def _replay(index, ops):
    query_results = []
    for op in ops:
        if op[0] == "insert":
            index.insert(op[1], op[2], now=op[3])
        elif op[0] == "update":
            index.update(op[1], op[2], op[3], now=op[4])
        elif op[0] == "delete":
            index.delete(op[1], op[2], now=op[3])
        else:
            query_results.append(index.range_search(op[1]))
    return query_results


@pytest.fixture(scope="module")
def inline_run():
    ops, pos = _script()
    index = ShardedIndex(IndexKind.LAZY, DOMAIN, N_SHARDS, query_rate=1.0)
    results = _replay(index, ops)
    return ops, pos, index, results


@pytest.mark.parametrize("mode", MODES)
def test_parallel_matches_inline_exactly(mode, inline_run):
    ops, pos, inline, inline_results = inline_run
    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        par_results = _replay(par, ops)
        assert par_results == inline_results
        assert len(par) == len(inline) == len(pos)
        assert par.cross_shard_moves == inline.cross_shard_moves
        assert par.cross_shard_moves > 0  # the script must exercise moves
        assert _io_signature(par.pager.stats) == _io_signature(
            inline.pager.stats
        )
        assert par.merged_result().n_updates == inline.merged_result().n_updates
        # Engine telemetry mirrors the inline router's per-shard split.
        par_shards = par.engine_dict()["shards"]
        inline_shards = inline.engine_dict()["shards"]
        assert [s["objects"] for s in par_shards] == [
            s["objects"] for s in inline_shards
        ]


@pytest.mark.parametrize("mode", MODES)
def test_batched_dispatch_matches_inline(mode):
    """apply_batch parity: per-shard sub-batches + sequenced moves give the
    exact inline I/O ledger and positions."""
    rng = random.Random(11)
    inserts = [
        PendingUpdate(oid, None, (rng.uniform(0, 100), rng.uniform(0, 100)),
                      1000.0 + oid, seq=oid)
        for oid in range(N_OBJECTS)
    ]
    pos = {u.oid: u.point for u in inserts}
    batches = [inserts]
    seq = N_OBJECTS
    for _ in range(3):
        batch = []
        for oid in range(N_OBJECTS):
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            batch.append(
                PendingUpdate(oid, pos[oid], p, 2000.0 + seq, seq=seq)
            )
            pos[oid] = p
            seq += 1
        batches.append(batch)

    inline = ShardedIndex(IndexKind.LAZY, DOMAIN, N_SHARDS, query_rate=1.0)
    inline_applied = 0
    for batch in batches:
        for u in batch:
            if u.old_point is None:
                inline.insert(u.oid, u.point, now=u.t)
            else:
                inline.update(u.oid, u.old_point, u.point, now=u.t)
            inline_applied += 1

    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        par_applied = sum(par.apply_batch(batch) for batch in batches)
        assert par_applied == inline_applied
        assert len(par) == len(inline)
        assert par.cross_shard_moves == inline.cross_shard_moves
        assert _io_signature(par.pager.stats) == _io_signature(
            inline.pager.stats
        )
        rect = Rect((10.0, 10.0), (70.0, 70.0))
        assert par.range_search(rect) == inline.range_search(rect)
        expected = sorted(
            oid for oid, p in pos.items() if rect.contains_point(p)
        )
        assert sorted(oid for oid, _ in par.range_search(rect)) == expected


@pytest.mark.parametrize("mode", MODES)
def test_per_shard_wall_clocks_are_positive(mode):
    """The satellite fix: per-shard RunResult.wall_clock_s must be real
    measured time, not the 0.0 the sharded runs used to report."""
    ops = _script()[0]
    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        _replay(par, ops)
        results = par.shard_results()
        assert len(results) == N_SHARDS
        for result in results:
            assert result.wall_clock_s > 0.0
            assert result.n_updates > 0


def test_inline_shard_wall_clocks_are_positive():
    ops = _script()[0]
    index = ShardedIndex(IndexKind.LAZY, DOMAIN, N_SHARDS, query_rate=1.0)
    _replay(index, ops)
    for result in index.shard_results():
        assert result.wall_clock_s > 0.0


@pytest.mark.parametrize("mode", MODES)
def test_store_surface(mode):
    """The ParallelStore facade feeds the driver/CLI telemetry paths."""
    with ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, N_SHARDS, mode=mode, query_rate=1.0
    ) as par:
        par.insert(1, (10.0, 10.0), now=1.0)
        store = par.pager
        assert store.page_count > 0
        metrics = store.metrics_dict()
        assert metrics["parallel"]["mode"] == mode
        assert metrics["parallel"]["workers"] == N_SHARDS
        assert metrics["parallel"]["fell_back"] is False
        assert len(metrics["shards"]) == N_SHARDS
        engine = par.engine_dict()
        assert engine["parallel"]["worker_failures"] == 0
        stats = par.collect_tree_stats()
        assert stats["size"] == 1
        assert stats["n_shards"] == N_SHARDS


def test_rejects_unknown_mode():
    with pytest.raises(ValueError):
        ParallelShardedIndex(IndexKind.LAZY, DOMAIN, 2, mode="fiber")
