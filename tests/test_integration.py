"""Integration tests: the full pipeline across modules, with oracles."""

import random

import pytest

from repro.citysim import City, CitySimulator
from repro.core.builder import CTRTreeBuilder
from repro.core.geometry import Rect
from repro.core.params import CTParams, SimulationParams
from repro.storage.pager import Pager
from repro.workload import QueryWorkload, SimulationDriver, UpdateStream
from repro.workload.driver import IndexKind, make_index
from tests.conftest import brute_force_range


@pytest.fixture(scope="module")
def workload():
    """One shared smoke-sized city simulation for all integration tests."""
    city = City.generate(seed=10, n_buildings=30)
    # The paper's history length (110 samples) matters: shorter histories
    # under-mine qs-regions and strand objects in buffers.
    params = SimulationParams(
        n_objects=150,
        update_rate=150 / 20.0,
        n_history=110,
        n_updates=12,
        n_warmup_max=20,
    )
    simulator = CitySimulator(city, params, seed=11)
    trace = simulator.run()
    return city, params, trace


class TestFullPipeline:
    def test_all_indexes_give_identical_query_answers(self, workload):
        """The four structures must agree with each other AND a brute-force
        oracle after replaying the same update stream."""
        city, params, trace = workload
        histories = trace.histories(params.n_history)
        current = trace.current_positions(params.n_history)
        stream = UpdateStream(trace, params.n_history)

        final_positions = dict(current)
        for record in stream:
            final_positions[record.oid] = record.point

        rng = random.Random(1)
        queries = [
            Rect(
                (rng.uniform(0, 800), rng.uniform(0, 800)),
                (rng.uniform(800, 1000), rng.uniform(800, 1000)),
            )
            for _ in range(15)
        ]

        answers = {}
        for kind in IndexKind.ALL:
            pager = Pager()
            index = make_index(kind, pager, city.bounds, histories=histories, query_rate=1.0)
            driver = SimulationDriver(index, pager, kind)
            driver.load(current)
            driver.run(stream, [])
            answers[kind] = [
                sorted(oid for oid, _ in index.range_search(q)) for q in queries
            ]
            if hasattr(index, "validate"):
                assert index.validate() == [], kind

        oracle = [brute_force_range(final_positions, q) for q in queries]
        for kind, result in answers.items():
            assert result == oracle, f"{kind} disagrees with brute force"

    def test_ct_beats_rtree_on_update_heavy_mix(self, workload):
        """The paper's core claim at the update-heavy end: lazy structures
        (and CT in particular) need far fewer I/Os than the R-tree."""
        city, params, trace = workload
        histories = trace.histories(params.n_history)
        current = trace.current_positions(params.n_history)

        totals = {}
        for kind in (IndexKind.RTREE, IndexKind.CT):
            pager = Pager()
            index = make_index(kind, pager, city.bounds, histories=histories, query_rate=1.0)
            driver = SimulationDriver(index, pager, kind)
            driver.load(current)
            result = driver.run(UpdateStream(trace, params.n_history), [])
            totals[kind] = result.total_ios
        # At this smoke scale the margin is modest (the full effect needs
        # density; see benchmarks/bench_figure8.py) but must be clearly there.
        assert totals[IndexKind.CT] < 0.8 * totals[IndexKind.RTREE]

    def test_ct_queries_cost_more_than_lazy(self, workload):
        """The flip side (Figure 9): the CT-R-tree pays on queries."""
        city, params, trace = workload
        histories = trace.histories(params.n_history)
        current = trace.current_positions(params.n_history)
        query_ios = {}
        for kind in (IndexKind.LAZY, IndexKind.CT):
            pager = Pager()
            index = make_index(kind, pager, city.bounds, histories=histories, query_rate=1.0)
            driver = SimulationDriver(index, pager, kind)
            driver.load(current)
            queries = QueryWorkload(city.bounds, 1.0, 0.001, seed=9).take(80)
            result = driver.run([], queries)
            query_ios[kind] = result.query_ios
        assert query_ios[IndexKind.CT] > query_ios[IndexKind.LAZY]

    def test_builder_report_matches_tree(self, workload):
        city, params, trace = workload
        histories = trace.histories(params.n_history)
        builder = CTRTreeBuilder(CTParams(), query_rate=1.0)
        tree, report = builder.build(
            Pager(), city.bounds, histories, trace.current_positions(params.n_history)
        )
        assert report.phase3_regions == tree.region_count
        assert len(tree) == params.n_objects
        assert tree.validate() == []

    def test_trace_roundtrip_preserves_experiment(self, workload, tmp_path):
        """Saving and loading the trace file must not change any result."""
        city, params, trace = workload
        path = tmp_path / "trace.csv"
        trace.save(path)
        from repro.citysim.trace import Trace

        reloaded = Trace.load(path)
        assert reloaded.histories(params.n_history) == trace.histories(params.n_history)
        original = list(UpdateStream(trace, params.n_history))
        roundtrip = list(UpdateStream(reloaded, params.n_history))
        assert original == roundtrip


class TestSharedPager:
    def test_two_indexes_share_one_pager(self, workload):
        """Indexes are independent even on a shared page store."""
        city, params, trace = workload
        pager = Pager()
        a = make_index(IndexKind.LAZY, pager, city.bounds)
        b = make_index(IndexKind.LAZY, pager, city.bounds)
        a.insert(1, (10.0, 10.0))
        b.insert(1, (900.0, 900.0))
        assert a.search_point((10.0, 10.0)) == [1]
        assert b.search_point((10.0, 10.0)) == []
