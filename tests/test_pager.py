"""Unit tests for the pager's allocation and charging model."""

import pytest

from repro.storage.page import NO_PAGE, RawPage
from repro.storage.pager import PageNotAllocatedError, Pager


class TestAllocation:
    def test_allocate_assigns_sequential_ids(self, pager):
        a, b = RawPage("a"), RawPage("b")
        assert pager.allocate(a) == 0
        assert pager.allocate(b) == 1

    def test_allocate_charges_one_write(self, pager):
        pager.allocate(RawPage())
        assert pager.stats.writes() == 1
        assert pager.stats.reads() == 0

    def test_double_allocate_rejected(self, pager):
        page = RawPage()
        pager.allocate(page)
        with pytest.raises(ValueError):
            pager.allocate(page)

    def test_free_releases_and_unsets_pid(self, pager):
        page = RawPage()
        pid = pager.allocate(page)
        pager.free(pid)
        assert page.pid == NO_PAGE
        assert not pager.contains(pid)
        assert pager.freed_count == 1

    def test_free_is_not_charged(self, pager):
        pid = pager.allocate(RawPage())
        before = pager.stats.total()
        pager.free(pid)
        assert pager.stats.total() == before

    def test_free_unknown_pid_raises(self, pager):
        with pytest.raises(PageNotAllocatedError):
            pager.free(42)

    def test_pids_are_never_reused(self, pager):
        pid = pager.allocate(RawPage())
        pager.free(pid)
        assert pager.allocate(RawPage()) == pid + 1

    def test_rejects_nonpositive_page_size(self):
        with pytest.raises(ValueError):
            Pager(page_size=0)


class TestChargedAccess:
    def test_read_returns_page_and_charges(self, pager):
        page = RawPage("payload")
        pid = pager.allocate(page)
        got = pager.read(pid)
        assert got is page
        assert pager.stats.reads() == 1

    def test_read_unknown_raises(self, pager):
        with pytest.raises(PageNotAllocatedError):
            pager.read(7)

    def test_write_charges(self, pager):
        page = RawPage()
        pager.allocate(page)
        pager.write(page)
        assert pager.stats.writes() == 2  # allocation + explicit write

    def test_write_freed_page_raises(self, pager):
        page = RawPage()
        pid = pager.allocate(page)
        pager.free(pid)
        with pytest.raises(PageNotAllocatedError):
            pager.write(page)


class TestUnchargedAccess:
    def test_inspect_free_of_charge(self, pager):
        pid = pager.allocate(RawPage("x"))
        before = pager.stats.total()
        assert pager.inspect(pid).payload == "x"
        assert pager.stats.total() == before

    def test_inspect_unknown_raises(self, pager):
        with pytest.raises(PageNotAllocatedError):
            pager.inspect(3)

    def test_page_count_and_iter(self, pager):
        pids = [pager.allocate(RawPage(i)) for i in range(5)]
        pager.free(pids[0])
        assert pager.page_count == 4
        assert set(pager.iter_pids()) == set(pids[1:])
