"""Tests for R*-style forced reinsertion (the full R*-tree baseline)."""

import pytest

from repro.core.geometry import Rect
from repro.rtree import LazyRTree, RTree
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points, random_query


def make_tree(**kwargs):
    defaults = dict(max_entries=6, split="rstar", forced_reinsert=0.3)
    defaults.update(kwargs)
    return RTree(Pager(), **defaults)


class TestConstruction:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RTree(Pager(), forced_reinsert=0.5)
        with pytest.raises(ValueError):
            RTree(Pager(), forced_reinsert=-0.1)

    def test_zero_disables(self, rng):
        tree = make_tree(forced_reinsert=0.0)
        for oid, point in random_points(rng, 100).items():
            tree.insert(oid, point)
        assert tree.validate() == []


class TestCorrectness:
    def test_inserts_retrievable(self, rng):
        tree = make_tree()
        points = random_points(rng, 250)
        for oid, point in points.items():
            tree.insert(oid, point)
        assert tree.validate() == []
        assert len(tree) == 250
        for _ in range(30):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)

    def test_mixed_workload(self, rng):
        tree = make_tree()
        points = random_points(rng, 150)
        for oid, point in points.items():
            tree.insert(oid, point)
        for _ in range(400):
            oid = rng.choice(list(points))
            action = rng.random()
            if action < 0.5:
                new = (rng.uniform(0, 100), rng.uniform(0, 100))
                tree.update(oid, points[oid], new)
                points[oid] = new
            elif len(points) > 20:
                tree.delete(oid, points.pop(oid))
        assert tree.validate() == []
        got = sorted(oid for oid, _ in tree.range_search(Rect((0, 0), (100, 100))))
        assert got == sorted(points)

    def test_skewed_insert_order(self):
        """Sorted insertion is R*'s worst case for plain splits; forced
        reinsertion must keep the structure valid through it."""
        tree = make_tree()
        for i in range(200):
            tree.insert(i, (float(i), float(i % 7)))
        assert tree.validate() == []
        got = sorted(o for o, _ in tree.range_search(Rect((50, 0), (100, 10))))
        assert got == list(range(50, 101))


class TestQuality:
    def test_reinsert_reduces_node_count_on_sorted_input(self):
        """Deferring splits should pack nodes at least as tightly as
        splitting eagerly on an adversarial (sorted) insert order."""
        plain = RTree(Pager(), max_entries=6, split="rstar")
        reinserting = make_tree()
        for i in range(300):
            point = (float(i % 50), float(i // 50))
            plain.insert(i, point)
            reinserting.insert(i, point)
        assert reinserting.node_count() <= plain.node_count()


class TestLazyIntegration:
    def test_hash_pointers_survive_reinsertion(self, rng):
        pager = Pager()
        tree = LazyRTree(pager, max_entries=6, forced_reinsert=0.3)
        points = random_points(rng, 200)
        for oid, point in points.items():
            tree.insert(oid, point)
        assert tree.validate() == []
        for _ in range(300):
            oid = rng.choice(list(points))
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
