"""Cross-cutting coverage: cached stores under real indexes, accessors,
renderings of degenerate structures."""

import pytest

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.rtree import LazyRTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points, random_query

DOMAIN = Rect((0, 0), (1000, 1000))


class TestIndexesOverBufferPool:
    """The pool is a drop-in pager; indexes must behave identically on it."""

    def test_lazy_rtree_on_pool_matches_brute_force(self, rng):
        pool = BufferPool(Pager(), capacity=64)
        tree = LazyRTree(pool, max_entries=6)  # type: ignore[arg-type]
        points = random_points(rng, 150)
        for oid, point in points.items():
            tree.insert(oid, point)
        for _ in range(400):
            oid = rng.randrange(150)
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
        for _ in range(20):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)
        assert pool.hit_rate > 0.3  # the cache is actually being exercised

    def test_ct_tree_on_pool(self, rng):
        pool = BufferPool(Pager(), capacity=64)
        tree = CTRTree(
            pool, DOMAIN, [Rect((100, 100), (400, 400))], max_entries=6  # type: ignore[arg-type]
        )
        points = {}
        for oid in range(80):
            point = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.insert(oid, point)
            points[oid] = point
        assert tree.validate() == []
        got = sorted(oid for oid, _ in tree.range_search(DOMAIN))
        assert got == sorted(points)

    def test_pool_charges_less_than_raw(self, rng):
        points = random_points(rng, 100)
        raw_pager = Pager()
        raw = LazyRTree(raw_pager, max_entries=6)
        pool_backing = Pager()
        pool = BufferPool(pool_backing, capacity=256)
        cached = LazyRTree(pool, max_entries=6)  # type: ignore[arg-type]
        for oid, point in points.items():
            raw.insert(oid, point)
            cached.insert(oid, point)
        assert pool_backing.stats.total() < raw_pager.stats.total()


class TestAccessors:
    def test_ct_stats_as_row(self, rng):
        from repro.analysis import ct_tree_stats

        tree = CTRTree(Pager(), DOMAIN, [Rect((0, 0), (100, 100))])
        tree.insert(1, (50.0, 50.0))
        row = ct_tree_stats(tree).as_row()
        assert row["regions"] == 1
        assert row["objects"] == 1
        assert "chain pages" in row

    def test_update_graph_neighbors(self):
        from repro.core.qsregion import QSRegion
        from repro.core.update_graph import UpdateGraph

        graph = UpdateGraph()
        a = graph.add_region(QSRegion(rect=Rect((0, 0), (1, 1)), dwell_time=1))
        b = graph.add_region(QSRegion(rect=Rect((2, 2), (3, 3)), dwell_time=1))
        graph.add_edge(a, b, 4.0)
        assert graph.neighbors(a) == {b: 4.0}
        assert len(graph.regions()) == 2
        assert "regions=2" in repr(graph)

    def test_ct_tree_repr(self):
        tree = CTRTree(Pager(), DOMAIN, [Rect((0, 0), (10, 10))])
        text = repr(tree)
        assert "regions=1" in text and "size=0" in text

    def test_iostats_bulk_counts(self):
        from repro.storage.iostats import IOStats

        stats = IOStats()
        stats.record_read(5)
        stats.record_write(3)
        assert stats.total() == 8


class TestDegenerateRenderings:
    def test_draw_structural_tree_empty(self):
        from repro.viz import draw_structural_tree

        tree = CTRTree(Pager(), DOMAIN)
        svg = draw_structural_tree(tree).to_svg()
        assert "<svg" in svg

    def test_draw_ct_tree_empty(self):
        from repro.viz import draw_ct_tree

        tree = CTRTree(Pager(), DOMAIN)
        svg = draw_ct_tree(tree).to_svg()
        assert "0 objects" in svg

    def test_draw_update_graph_no_edges(self):
        from repro.core.qsregion import QSRegion
        from repro.core.update_graph import UpdateGraph
        from repro.viz import draw_update_graph

        graph = UpdateGraph()
        graph.add_region(QSRegion(rect=Rect((1, 1), (5, 5)), dwell_time=1))
        svg = draw_update_graph(DOMAIN, graph).to_svg()
        assert svg.count("<rect") >= 1

    def test_draw_trails_empty_histories(self):
        from repro.viz import draw_trails

        svg = draw_trails(DOMAIN, {}).to_svg()
        assert "<svg" in svg


class TestBTreeExtras:
    def test_bptree_repr_and_node_count(self, rng):
        from repro.btree import BPlusTree

        tree = BPlusTree(Pager(), max_entries=6)
        for oid in range(60):
            tree.insert(oid, rng.uniform(0, 100))
        assert "size=60" in repr(tree)
        assert tree.node_count() > 1

    def test_bnode_covers_sentinels(self):
        from repro.btree.bptree import BNode, HIGH_SENTINEL, LOW_SENTINEL

        node = BNode(leaf=True)
        assert node.low == LOW_SENTINEL
        assert node.high == HIGH_SENTINEL
        assert node.covers((1e308, 0))
        assert node.covers((-1e308, 5))

    def test_lazy_bptree_repr(self, pager):
        from repro.btree import LazyBPlusTree

        tree = LazyBPlusTree(pager)
        tree.insert(1, 5.0)
        assert "size=1" in repr(tree)
