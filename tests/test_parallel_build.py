"""Parallel CT-R-tree construction: bit-identical to serial, by contract.

The pool chunks Phases 1 and 2a across processes and concatenates results
back into the serial order; everything downstream is the very same code.
The checks here compare the *snapshot document bytes* of the loaded trees,
the strictest equality the storage layer can express.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.builder import CTRTreeBuilder
from repro.core.geometry import Rect
from repro.parallel.build import build_pool, chunked
from repro.storage.pager import Pager
from repro.storage.snapshot import build_document

from .conftest import dwell_trail

DOMAIN = Rect((0.0, 0.0), (200.0, 200.0))
SPOTS = [(30.0, 30.0), (160.0, 40.0), (100.0, 170.0)]


def _histories(n_objects: int = 16, seed: int = 7):
    rng = random.Random(seed)
    return {
        oid: dwell_trail(rng, SPOTS, dwell_reports=12) for oid in range(n_objects)
    }


def _current(histories):
    return {oid: trail[-1][0] for oid, trail in histories.items()}


def _snapshot_bytes(workers: int, histories, current) -> str:
    builder = CTRTreeBuilder(query_rate=1.0, workers=workers)
    tree, report = builder.build(Pager(), DOMAIN, histories, current)
    return json.dumps(build_document(tree, kind="ct"), sort_keys=True), report


def test_chunked_is_contiguous_and_order_preserving():
    items = list(range(11))
    for n in (1, 2, 3, 4, 11, 50):
        chunks = chunked(items, n)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) == min(n, len(items))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1


def test_chunked_empty():
    assert chunked([], 4) == [[]]


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_build_is_bit_identical(workers):
    histories = _histories()
    current = _current(histories)
    serial_doc, serial_report = _snapshot_bytes(0, histories, current)
    par_doc, par_report = _snapshot_bytes(workers, histories, current)
    assert par_doc == serial_doc
    # The parallel run advertises its worker count next to the wall clocks.
    assert par_report.phase_timings["parallel_workers"] == float(workers)
    assert "parallel_workers" not in serial_report.phase_timings


def test_shared_pool_matches_per_phase_pools():
    """One executor across both phases (the builder's path) changes nothing."""
    from repro.core.params import CTParams
    from repro.core.qsregion import identify_qs_regions
    from repro.core.update_graph import per_object_graphs
    from repro.parallel.build import parallel_object_graphs, parallel_qs_regions

    histories = _histories(n_objects=8)
    params = CTParams()
    serial_regions = [
        identify_qs_regions(trail, params, object_id=oid)
        for oid, trail in histories.items()
    ]
    with build_pool(2) as pool:
        pooled_regions = parallel_qs_regions(histories, params, 2, pool=pool)
        assert pooled_regions == serial_regions
        pooled_graphs = parallel_object_graphs(
            pooled_regions, params.t_area, 2, pool=pool
        )
    serial_graphs = per_object_graphs(serial_regions, params.t_area)
    assert len(pooled_graphs) == len(serial_graphs)
    for got, want in zip(pooled_graphs, serial_graphs):
        assert got._regions.keys() == want._regions.keys()
        assert got._adj == want._adj


def test_worker_counts_below_two_stay_serial():
    """workers in {0, 1} must never touch the pool machinery."""
    histories = _histories(n_objects=4)
    current = _current(histories)
    doc0, _ = _snapshot_bytes(0, histories, current)
    doc1, report1 = _snapshot_bytes(1, histories, current)
    assert doc0 == doc1
