"""Unit tests for I/O accounting."""

import pytest

from repro.storage.iostats import IOCategory, IOCounter, IOStats


class TestIOCounter:
    def test_total(self):
        assert IOCounter(3, 4).total == 7

    def test_add_sub(self):
        a, b = IOCounter(5, 5), IOCounter(2, 1)
        assert (a + b).reads == 7
        assert (a - b).writes == 4

    def test_sub_refuses_negative_delta(self):
        """A negative delta means the counters were reset between the two
        snapshots; the driver's attribution must fail loudly, not go negative."""
        with pytest.raises(ValueError, match="reset"):
            IOCounter(1, 5) - IOCounter(2, 1)
        with pytest.raises(ValueError, match="negative"):
            IOCounter(5, 1) - IOCounter(1, 2)

    def test_sub_reset_scenario_raises(self):
        stats = IOStats()
        with stats.category(IOCategory.UPDATE):
            stats.record_read(3)
        before = stats.counter(IOCategory.UPDATE)
        stats.reset()  # mid-run reset
        with pytest.raises(ValueError):
            stats.counter(IOCategory.UPDATE) - before

    def test_to_dict(self):
        assert IOCounter(2, 3).to_dict() == {"reads": 2, "writes": 3, "total": 5}

    def test_copy_is_independent(self):
        a = IOCounter(1, 1)
        b = a.copy()
        b.reads += 1
        assert a.reads == 1

    def test_live_counter_tracks_in_place(self):
        stats = IOStats()
        live = stats.live(IOCategory.QUERY)
        with stats.category(IOCategory.QUERY):
            stats.record_read()
            stats.record_write()
        assert live.total == 2
        assert stats.live(IOCategory.QUERY) is live

    def test_stats_to_dict(self):
        stats = IOStats()
        with stats.category(IOCategory.BUILD):
            stats.record_write(2)
        assert stats.to_dict() == {
            "build": {"reads": 0, "writes": 2, "total": 2}
        }


class TestIOStats:
    def test_default_category_is_other(self):
        stats = IOStats()
        stats.record_read()
        assert stats.reads(IOCategory.OTHER) == 1

    def test_category_scoping(self):
        stats = IOStats()
        with stats.category(IOCategory.QUERY):
            stats.record_read()
            stats.record_write(2)
        assert stats.reads(IOCategory.QUERY) == 1
        assert stats.writes(IOCategory.QUERY) == 2
        assert stats.total(IOCategory.UPDATE) == 0

    def test_nested_categories(self):
        stats = IOStats()
        with stats.category(IOCategory.UPDATE):
            stats.record_read()
            with stats.category(IOCategory.BUILD):
                stats.record_read()
            stats.record_read()
        assert stats.reads(IOCategory.UPDATE) == 2
        assert stats.reads(IOCategory.BUILD) == 1

    def test_category_restored_after_exception(self):
        stats = IOStats()
        try:
            with stats.category(IOCategory.QUERY):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert stats.active_category == IOCategory.OTHER

    def test_totals_across_categories(self):
        stats = IOStats()
        with stats.category(IOCategory.QUERY):
            stats.record_read()
        with stats.category(IOCategory.UPDATE):
            stats.record_write()
        assert stats.reads() == 1
        assert stats.writes() == 1
        assert stats.total() == 2

    def test_snapshot_is_frozen(self):
        stats = IOStats()
        stats.record_read()
        snap = stats.snapshot()
        stats.record_read()
        assert snap[IOCategory.OTHER].reads == 1

    def test_counter_returns_copy(self):
        stats = IOStats()
        counter = stats.counter(IOCategory.QUERY)
        counter.reads = 99
        assert stats.reads(IOCategory.QUERY) == 0

    def test_reset(self):
        stats = IOStats()
        stats.record_read()
        stats.reset()
        assert stats.total() == 0

    def test_counter_diff_pattern(self):
        """The driver measures runs by before/after counter subtraction."""
        stats = IOStats()
        with stats.category(IOCategory.UPDATE):
            stats.record_read(5)
        before = stats.counter(IOCategory.UPDATE)
        with stats.category(IOCategory.UPDATE):
            stats.record_read(3)
            stats.record_write(2)
        delta = stats.counter(IOCategory.UPDATE) - before
        assert delta.reads == 3
        assert delta.writes == 2

    def test_repr_mentions_counts(self):
        stats = IOStats()
        stats.record_read()
        assert "1r" in repr(stats)
