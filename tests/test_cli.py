"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.csv"
    code = main(
        [
            "simulate",
            str(path),
            "--objects", "60",
            "--history", "30",
            "--updates", "5",
            "--buildings", "12",
            "--seed", "3",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate", "out.csv"])
        assert args.objects == 1000
        assert args.history == 110


class TestSimulate:
    def test_writes_trace(self, trace_file, capsys):
        assert trace_file.exists()
        header = trace_file.read_text().splitlines()[0]
        assert header == "oid,x,y,t"

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        for path in (a, b):
            main(["simulate", str(path), "--objects", "20", "--history", "10",
                  "--updates", "2", "--buildings", "8", "--seed", "5"])
        assert a.read_text() == b.read_text()


class TestBuild:
    def test_reports_pipeline(self, trace_file, capsys):
        code = main(["build", str(trace_file), "--history", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase 1 regions:" in out
        assert "CTRTree(" in out


class TestCompare:
    def test_races_all_indexes(self, trace_file, capsys):
        code = main(["compare", str(trace_file), "--history", "30", "--ratio", "20"])
        assert code == 0
        out = capsys.readouterr().out
        for label in ("R-tree", "lazy-R-tree", "alpha-tree", "CT-R-tree"):
            assert label in out

    def test_empty_online_stream_errors(self, trace_file, capsys):
        code = main(["compare", str(trace_file), "--history", "99"])
        assert code == 1

    def test_metrics_out_dumps_observability_json(self, trace_file, tmp_path, capsys):
        import json

        out = tmp_path / "m.json"
        code = main([
            "compare", str(trace_file), "--history", "30", "--ratio", "20",
            "--buffer-pool", "16", "--metrics-out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        # The acceptance triple: cache telemetry, build phase timings, shape.
        ct = payload["indexes"]["ct"]
        assert 0.0 <= ct["buffer_pool"]["hit_rate"] <= 1.0
        timers = payload["registry"]["timers"]
        assert "build.phase1_qs_mining_s" in timers
        assert "build.phase3_traffic_merge_s" in timers
        assert ct["tree_stats"]["qs_region_count"] >= 0
        assert ct["tree_stats"]["height"] >= 1
        assert ct["run"]["ios_per_update"] >= 0.0
        # The command must switch the global registry back off on its way out.
        from repro.obs import get_registry

        assert get_registry().enabled is False

    def test_metrics_out_without_pool_omits_cache(self, trace_file, tmp_path, capsys):
        import json

        out = tmp_path / "m.json"
        code = main([
            "compare", str(trace_file), "--history", "30", "--ratio", "20",
            "--metrics-out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["indexes"]["rtree"]["buffer_pool"] is None

    def test_sharded_batched_matches_plain_results(self, trace_file, tmp_path, capsys):
        """The engine levers must not change what queries return."""
        import json

        plain_out = tmp_path / "plain.json"
        engine_out = tmp_path / "engine.json"
        for out, extra in (
            (plain_out, []),
            (engine_out, ["--shards", "4", "--batch", "64"]),
        ):
            code = main([
                "compare", str(trace_file), "--history", "30", "--ratio", "20",
                "--metrics-out", str(out), *extra,
            ])
            assert code == 0
        plain = json.loads(plain_out.read_text())
        engine = json.loads(engine_out.read_text())
        assert engine["shards"] == 4 and engine["batch"] == 64
        out = capsys.readouterr().out
        assert "4 shards" in out and "batch 64" in out
        for kind in ("rtree", "lazy", "alpha", "ct"):
            plain_run = plain["indexes"][kind]["run"]
            engine_run = engine["indexes"][kind]["run"]
            assert engine_run["result_count"] == plain_run["result_count"], kind
            assert engine_run["n_queries"] == plain_run["n_queries"]
            engine_meta = engine["indexes"][kind]["engine"]
            assert engine_meta["sharded"]["partition"]["n_shards"] == 4
            assert engine_meta["buffer"]["flushes"] > 0
            assert engine_run["n_applied"] + engine_run["n_coalesced"] == (
                engine_run["n_updates"]
            )
            # sharded tree stats aggregate the per-shard probes
            stats = engine["indexes"][kind]["tree_stats"]
            assert stats["sharded"] is True
            assert stats["n_shards"] == 4
            assert stats["size"] == sum(stats["shard_sizes"])


class TestDurabilityCli:
    def test_compare_with_wal_dir_reports_durability(
        self, trace_file, tmp_path, capsys
    ):
        import json

        wal_dir = tmp_path / "wal"
        out = tmp_path / "m.json"
        code = main([
            "compare", str(trace_file), "--history", "30", "--ratio", "20",
            "--wal-dir", str(wal_dir), "--sync-policy", "group:4",
            "--checkpoint-every", "50", "--metrics-out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "durability: WAL under" in printed
        payload = json.loads(out.read_text())
        assert payload["sync_policy"] == "group:4"
        assert payload["checkpoint_every"] == 50
        for kind in ("rtree", "lazy", "alpha", "ct"):
            durability = payload["indexes"][kind]["durability"]
            assert durability["wal"]["appends"] > 0
            assert durability["wal"]["fsyncs"] > 0
            # Each kind logs into its own subdirectory and the run closes
            # with a checkpoint (plus the post-load baseline).
            assert durability["checkpoints_taken"] >= 2
            assert (wal_dir / kind).is_dir()

    def test_recover_round_trips_a_crashed_compare(
        self, trace_file, tmp_path, capsys
    ):
        wal_dir = tmp_path / "wal"
        code = main([
            "compare", str(trace_file), "--history", "30", "--ratio", "20",
            "--wal-dir", str(wal_dir), "--sync-policy", "always",
        ])
        assert code == 0
        capsys.readouterr()
        # Damage the lazy kind's log the way a crash would, then recover.
        from repro.durability import tear_tail

        tear_tail(wal_dir / "lazy", nbytes=3)
        snapshot = tmp_path / "recovered.json"
        code = main([
            "recover", str(wal_dir / "lazy"), "--save", str(snapshot),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint:" in out
        assert "replayed:" in out
        assert "objects:" in out
        assert snapshot.exists()
        from repro.storage.snapshot import load_index

        assert len(load_index(snapshot)) > 0

    def test_recover_without_state_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        code = main(["recover", str(empty)])
        assert code == 1
        assert "recovery failed" in capsys.readouterr().err


class TestBuildMetrics:
    def test_build_metrics_out(self, trace_file, tmp_path, capsys):
        import json

        out = tmp_path / "b.json"
        code = main([
            "build", str(trace_file), "--history", "30",
            "--metrics-out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert set(payload["build"]["phase_timings"]) == {
            "phase1_qs_mining", "phase2_graph",
            "phase3_traffic_merge", "phase4_tree_load",
        }
        assert payload["tree_stats"]["size"] == payload["build"]["object_count"]
        assert payload["pager"]["io"]["build"]["total"] > 0


class TestExperimentAndParams:
    def test_params(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "lambda_u" in out and "T_area" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "N_obj" in capsys.readouterr().out
