"""End-to-end: the serve bench harness on a synthetic trace.

Covers the BENCH ``serve`` section contract -- p50/p99 latency present and
finite, zero rejects with admission off, and exact result parity between
the served run and the inline timeline-order reference.
"""

import math
import random

import pytest

from repro.citysim import Trace
from repro.core.geometry import Rect
from repro.serve.bench import (
    build_primary,
    format_serve_table,
    inline_reference,
    run_serve_bench,
    sweep_index,
)
from repro.serve.loadgen import build_ops
from repro.workload import IndexKind

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def _synthetic_trace(n_objects=30, n_samples=12, seed=7):
    rng = random.Random(seed)
    trace = Trace()
    for oid in range(n_objects):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        for step in range(n_samples):
            trace.add(oid, (x, y), float(step))
            x = min(99.9, max(0.1, x + rng.uniform(-3, 3)))
            y = min(99.9, max(0.1, y + rng.uniform(-3, 3)))
    return trace


N_HISTORY = 6


def test_inline_reference_matches_direct_build():
    trace = _synthetic_trace()
    ops = build_ops(trace, N_HISTORY, DOMAIN, seed=1)
    positions = trace.current_positions(N_HISTORY)
    reference = inline_reference(
        IndexKind.LAZY, DOMAIN, positions, ops, load_time=0.0
    )
    # Final state = last update per object (or its loaded position).
    final = dict(positions)
    for op in ops:
        if op[0] == "update":
            final[op[1]] = (op[2], op[3])
    got = {oid: tuple(pos) for oid, pos in reference.range_search(DOMAIN)}
    assert got == {oid: tuple(pos) for oid, pos in final.items()}


def test_serve_bench_section_parity_and_percentiles():
    trace = _synthetic_trace()
    section = run_serve_bench(
        trace,
        N_HISTORY,
        DOMAIN,
        kind=IndexKind.LAZY,
        client_counts=(1, 2),
        refresh_interval=0.1,
        loadgen_mode="thread",
        sweep_n=4,
    )
    assert section["parity"] is True
    assert section["verify_ok"] is True
    assert section["client_counts"] == [1, 2]
    assert section["n_updates"] == 30 * (12 - N_HISTORY)
    for run in section["runs"]:
        assert run["parity"] and run["verify_ok"]
        assert run["rejected"] == 0 and run["reject_rate"] == 0.0
        assert run["acked_seq"] == run["applied_seq"] == run["acked"]
        latency = run["latency"]["all"]
        assert latency["count"] == run["acked"]
        for key in ("p50_ms", "p99_ms", "max_ms"):
            assert math.isfinite(latency[key]) and latency[key] > 0.0
        assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]
        assert run["ops_per_s"] > 0.0
    table = format_serve_table(section)
    assert "clients" in table and "ok" in table


def test_build_primary_sharded_matches_unsharded_sweep():
    trace = _synthetic_trace()
    positions = trace.current_positions(N_HISTORY)
    flat, _ = build_primary(IndexKind.LAZY, DOMAIN)
    sharded, _ = build_primary(IndexKind.LAZY, DOMAIN, shards=2)
    for oid, point in positions.items():
        flat.insert(oid, tuple(point), now=0.0)
        sharded.insert(oid, tuple(point), now=0.0)
    assert sweep_index(flat, DOMAIN, 4) == sweep_index(sharded, DOMAIN, 4)
    sharded_close = getattr(sharded, "close", None)
    if sharded_close is not None:
        sharded_close()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
