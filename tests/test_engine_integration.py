"""End-to-end engine tests: batched/sharded runs vs the plain driver, and
the generic snapshot dispatch."""

import json

import pytest

from repro.core.geometry import Rect
from repro.engine import IndexKind, ShardedIndex, make_index
from repro.experiments.harness import build_workload, run_index_on
from repro.rtree import AlphaTree
from repro.storage.pager import Pager
from repro.storage.snapshot import (
    SnapshotError,
    index_kind_of,
    load_index,
    save_index,
    save_lazy_rtree,
)
from tests.conftest import random_points

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


@pytest.fixture(scope="module")
def bundle():
    return build_workload("smoke", 0)


class TestBatchedAndShardedRuns:
    """The acceptance bar: engine runs return identical query results and
    batched runs never pay more update I/O per op than unbatched ones."""

    @pytest.mark.parametrize("kind", IndexKind.ALL)
    def test_query_results_identical_to_plain_run(self, bundle, kind):
        plain = run_index_on(kind, bundle, skip=4, query_count=6)
        engine = run_index_on(
            kind, bundle, skip=4, query_count=6, shards=3, batch=16
        )
        assert engine.result.n_queries == plain.result.n_queries
        assert engine.result.result_count == plain.result.result_count
        assert len(engine.index) == len(plain.index)

    def test_batched_update_io_not_worse(self, bundle):
        for kind in (IndexKind.LAZY, IndexKind.CT):
            plain = run_index_on(kind, bundle, skip=2, query_count=4)
            batched = run_index_on(kind, bundle, skip=2, query_count=4, batch=32)
            assert (
                batched.result.ios_per_update <= plain.result.ios_per_update
            ), kind
            assert batched.result.n_coalesced >= 0
            assert batched.result.n_flushes > 0
            assert batched.result.n_applied + batched.result.n_coalesced == (
                batched.result.n_updates
            )

    def test_plain_run_reports_no_batching(self, bundle):
        plain = run_index_on(IndexKind.LAZY, bundle, skip=4, query_count=2)
        assert plain.result.n_flushes == 0
        assert plain.result.n_coalesced == 0
        assert plain.buffer is None

    def test_sharded_run_result_consistent_with_merged(self, bundle):
        run = run_index_on(
            IndexKind.LAZY, bundle, skip=4, query_count=4, shards=3
        )
        merged = run.index.merged_result()
        # the driver's ledger and the merged shard ledgers read one shared
        # IOStats, so the I/O totals agree exactly
        assert run.result.update_ios == merged.update_ios
        assert run.result.query_ios == merged.query_ios
        # driver counts each query once; shards count fan-outs
        assert merged.n_queries >= run.result.n_queries

    def test_time_horizon_batching(self, bundle):
        run = run_index_on(
            IndexKind.LAZY,
            bundle,
            skip=4,
            query_count=2,
            batch=0,
            batch_horizon=5.0,
        )
        assert run.result.n_flushes > 0
        assert run.result.n_applied + run.result.n_coalesced == (
            run.result.n_updates
        )


class TestSnapshotDispatch:
    def populated(self, rng, kind, **kwargs):
        index = make_index(kind, Pager(), DOMAIN, **kwargs)
        points = random_points(rng, 50)
        for oid, p in points.items():
            index.insert(oid, p)
        return index, points

    @pytest.mark.parametrize("kind", ["rtree", "lazy", "alpha"])
    def test_roundtrip_by_kind_tag(self, rng, tmp_path, kind):
        index, points = self.populated(rng, kind, max_entries=8)
        path = save_index(index, tmp_path / f"{kind}.json")
        assert json.loads(path.read_text())["kind"] == kind
        loaded = load_index(path)
        assert index_kind_of(loaded) == kind
        assert type(loaded) is type(index)
        rect = Rect((20.0, 20.0), (70.0, 70.0))
        assert sorted(loaded.range_search(rect)) == sorted(
            index.range_search(rect)
        )

    def test_rtree_roundtrip_preserves_parameters(self, rng, tmp_path):
        from repro.rtree import RTree

        tree = RTree(
            Pager(),
            max_entries=10,
            split="linear",
            alpha=0.7,
            shrink_on_delete=False,
        )
        for oid, p in random_points(rng, 40).items():
            tree.insert(oid, p)
        loaded = load_index(save_index(tree, tmp_path / "r.json"))
        assert loaded.max_entries == 10
        assert loaded.split_policy == "linear"
        assert loaded.alpha == 0.7
        assert loaded.shrink_on_delete is False

    def test_alpha_roundtrip_preserves_alpha(self, rng, tmp_path):
        tree = AlphaTree(Pager(), max_entries=8, alpha=0.33)
        for oid, p in random_points(rng, 40).items():
            tree.insert(oid, p)
        loaded = load_index(save_index(tree, tmp_path / "a.json"))
        assert isinstance(loaded, AlphaTree)
        assert loaded.tree.alpha == 0.33
        assert index_kind_of(loaded) == "alpha"

    def test_legacy_save_loads_through_generic_loader(self, rng, tmp_path):
        index, _ = self.populated(rng, "lazy", max_entries=8)
        path = save_lazy_rtree(index, tmp_path / "legacy.json")
        loaded = load_index(path)
        assert index_kind_of(loaded) == "lazy"
        assert len(loaded) == len(index)

    def test_sharded_roundtrip_restores_router_and_accounting(
        self, rng, tmp_path
    ):
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 3, max_entries=8)
        points = random_points(rng, 60)
        for oid, p in points.items():
            index.insert(oid, p)
        for oid in list(points)[::4]:
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            index.update(oid, points[oid], new)
            points[oid] = new
        path = save_index(index, tmp_path / "sharded.json")
        loaded = load_index(path)
        assert loaded.n_shards == 3
        assert loaded.cross_shard_moves == index.cross_shard_moves
        assert loaded.owner_of(0) == index.owner_of(0)
        rect = Rect((10.0, 10.0), (90.0, 90.0))
        assert sorted(loaded.range_search(rect)) == sorted(
            index.range_search(rect)
        )
        # accounting resumes on the dual ledger: a post-restore update charges
        # the shared ledger and the owning shard's ledger identically
        oid = next(iter(points))
        loaded.update(oid, points[oid], (50.0, 50.0))
        assert loaded.pager.stats.total() == sum(
            s.pager.stats.total() for s in loaded.shards
        ) > 0

    def test_unsupported_index_rejected(self):
        with pytest.raises(SnapshotError, match="cannot snapshot"):
            index_kind_of(object())
        with pytest.raises(SnapshotError, match="no snapshot support"):
            save_index(object(), "x.json", kind="btree")

    def test_unknown_document_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "structure": "mystery"}))
        with pytest.raises(SnapshotError, match="not loadable"):
            load_index(path)
