"""Tests for multi-seed replication and aggregation."""

import pytest

from repro.experiments.harness import ExperimentResult
from repro.experiments.replication import Aggregate, replicate


class TestAggregate:
    def test_mean_std(self):
        agg = Aggregate([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.std == pytest.approx(1.0)
        assert agg.minimum == 1.0
        assert agg.maximum == 3.0
        assert agg.n == 3

    def test_single_value(self):
        agg = Aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.std == 0.0
        assert agg.relative_spread == 0.0

    def test_empty(self):
        agg = Aggregate([])
        assert agg.mean == 0.0
        assert agg.minimum == 0.0

    def test_relative_spread(self):
        assert Aggregate([90.0, 110.0]).relative_spread == pytest.approx(0.2)

    def test_str_format(self):
        assert str(Aggregate([1000.0, 3000.0])) == "2,000 ± 1,414"


def make_run(offset_per_seed):
    def run(seed: int) -> ExperimentResult:
        result = ExperimentResult(title="fake", columns=["x", "metric", "label"])
        for x in (1, 2):
            result.add(x=x, metric=10.0 * x + offset_per_seed * seed, label="L")
        return result

    return run


class TestReplicate:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(make_run(0), [], key_column="x")

    def test_aggregates_numeric_columns(self):
        replicated = replicate(make_run(1.0), [0, 1, 2], key_column="x")
        agg = replicated.get(1, "metric")
        assert agg.values == [10.0, 11.0, 12.0]
        assert agg.mean == pytest.approx(11.0)

    def test_ignores_non_numeric(self):
        replicated = replicate(make_run(0.0), [0, 1], key_column="x")
        assert "label" not in replicated.aggregates[1]

    def test_mismatched_sweeps_rejected(self):
        calls = {"n": 0}

        def run(seed):
            calls["n"] += 1
            result = ExperimentResult(title="t", columns=["x", "m"])
            result.add(x=calls["n"], m=1)  # different key each run
            return result

        with pytest.raises(ValueError):
            replicate(run, [0, 1], key_column="x")

    def test_table_rendering(self):
        replicated = replicate(make_run(1.0), [0, 1], key_column="x")
        text = replicated.to_table()
        assert "n=2 seeds" in text
        assert "±" in text

    def test_deterministic_runs_have_zero_std(self):
        replicated = replicate(make_run(0.0), [0, 1, 2, 3], key_column="x")
        assert replicated.get(2, "metric").std == 0.0


class TestEndToEndReplication:
    def test_figure11_gap_is_stable_across_seeds(self):
        """The Figure-11 trend must not be a single-seed artifact."""
        from repro.experiments import figure11

        replicated = replicate(
            lambda seed: figure11.run("smoke", seed=seed, counts=(100, 300), query_count=5),
            seeds=[0, 1],
            key_column="objects",
        )
        small = replicated.get(100, "lazy-R-tree")
        large = replicated.get(300, "lazy-R-tree")
        assert large.mean > small.mean  # more objects cost more, on average
