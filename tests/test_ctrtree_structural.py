"""Structural edge cases of the CT-R-tree: splits with live buffers,
region bookkeeping, owner metadata."""

import pytest

from repro.core.ctrtree import CTNode, CTRTree
from repro.core.geometry import Rect
from repro.core.overflow import OWNER_QS, DataPage, NodeBuffer
from repro.core.params import CTParams
from repro.storage.pager import Pager

DOMAIN = Rect((0, 0), (1000, 1000))


class TestStructuralSplitWithBuffers:
    def test_split_rehomes_list_buffer_residents(self, rng):
        """Adding qs-regions (as Appendix-A promotion does) can split a
        structural node whose buffer holds objects; every resident must stay
        indexed and findable."""
        tree = CTRTree(
            Pager(), DOMAIN, [Rect((0, 0), (60, 60))], max_entries=4,
            ct_params=CTParams(t_list=8),
        )
        # Load stray objects into node buffers.
        points = {}
        for oid in range(25):
            point = (rng.uniform(100, 900), rng.uniform(100, 900))
            tree.insert(oid, point)
            points[oid] = point
        assert tree.buffered_object_count() == 25
        # Force structural splits by adding many regions (fan-out 4).
        for i in range(12):
            tree.add_qs_region(Rect((i * 70.0, 900), (i * 70.0 + 50, 950)))
        assert tree.height >= 2
        assert tree.validate() == []
        got = sorted(oid for oid, _ in tree.range_search(DOMAIN))
        assert got == sorted(points)

    def test_split_rehomes_tree_buffer_residents(self, rng):
        tree = CTRTree(
            Pager(), DOMAIN, [Rect((0, 0), (60, 60))], max_entries=4,
            ct_params=CTParams(t_list=1),
        )
        cluster = [(500.0 + (i % 3), 500.0 + (i % 5)) for i in range(30)]
        for oid, point in enumerate(cluster):
            tree.insert(oid, point)
        has_tree_buffer = any(
            node.buffer.kind == NodeBuffer.KIND_TREE for node in tree.iter_nodes()
        )
        assert has_tree_buffer
        for i in range(12):
            tree.add_qs_region(Rect((i * 70.0, 900), (i * 70.0 + 50, 950)))
        assert tree.validate() == []
        assert len(tree) == 30

    def test_split_moves_chain_ownership(self, rng):
        """When qs-entries redistribute between split leaves, their chain
        pages' owner tags must follow."""
        regions = [Rect((i * 80.0, 0), (i * 80.0 + 50, 50)) for i in range(10)]
        tree = CTRTree(Pager(), DOMAIN, regions, max_entries=4)
        for oid in range(60):
            region = regions[oid % 10]
            tree.insert(oid, region.center)
        for _node, qs in tree.iter_qs_entries():
            owner_node = tree.pager.inspect(
                next(
                    n.pid for n in tree.iter_nodes()
                    if n.is_leaf and qs in n.entries
                )
            )
            for pid in qs.chain:
                page = tree.pager.inspect(pid)
                assert isinstance(page, DataPage)
                assert page.owner == (OWNER_QS, owner_node.pid, qs.region_id)
        assert tree.validate() == []


class TestNodeHelpers:
    def test_find_qs(self):
        node = CTNode(level=0)
        from repro.core.overflow import QSEntry

        qs = QSEntry(Rect((0, 0), (1, 1)), region_id=7)
        node.entries.append(qs)
        assert node.find_qs(7) is qs
        assert node.find_qs(8) is None

    def test_new_node_has_empty_list_buffer(self):
        node = CTNode(level=2)
        assert node.buffer.kind == NodeBuffer.KIND_LIST
        assert node.buffer.pages == []


class TestRegionGeometryEdgeCases:
    def test_region_on_domain_corner(self):
        tree = CTRTree(Pager(), DOMAIN, [Rect((0, 0), (10, 10))])
        tree.insert(1, (0.0, 0.0))
        assert tree.search_point((0.0, 0.0)) == [1]
        assert tree.buffered_object_count() == 0

    def test_degenerate_region(self):
        """A zero-area qs-region (stationary sensor) is legal."""
        tree = CTRTree(Pager(), DOMAIN, [Rect((5, 5), (5, 5))])
        tree.insert(1, (5.0, 5.0))
        assert tree.buffered_object_count() == 0
        tree.update(1, (5.0, 5.0), (5.0, 5.0))
        assert tree.lazy_hits == 1

    def test_identical_regions(self):
        rect = Rect((10, 10), (20, 20))
        tree = CTRTree(Pager(), DOMAIN, [rect, rect])
        assert tree.region_count == 2
        tree.insert(1, (15.0, 15.0))
        assert tree.search_point((15.0, 15.0)) == [1]
        assert tree.validate() == []

    def test_nested_regions_choose_smaller(self, pager):
        outer = Rect((0, 0), (100, 100))
        inner = Rect((40, 40), (60, 60))
        tree = CTRTree(pager, DOMAIN, [outer, inner])
        pid = tree.insert(1, (50.0, 50.0))
        page = pager.inspect(pid)
        assert page.tolerance == inner

    def test_many_overlapping_regions_insert_visits_all_candidates(self, pager):
        rects = [Rect((i * 2.0, 0), (i * 2.0 + 50, 50)) for i in range(10)]
        tree = CTRTree(pager, DOMAIN, rects, max_entries=20)
        reads_before = pager.stats.reads()
        tree.insert(1, (25.0, 25.0))
        # Single structural leaf: one node read + data-page handling.
        assert pager.stats.reads() - reads_before >= 1
        assert tree.validate() == []


class TestDeleteEdgeCases:
    def test_delete_twice(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))])
        tree.insert(1, (10.0, 10.0))
        assert tree.delete(1)
        assert not tree.delete(1)

    def test_update_after_delete_raises(self, pager):
        tree = CTRTree(pager, DOMAIN, [Rect((0, 0), (50, 50))])
        tree.insert(1, (10.0, 10.0))
        tree.delete(1)
        with pytest.raises(KeyError):
            tree.update(1, (10.0, 10.0), (11.0, 11.0))

    def test_chain_page_reclaimed_midchain(self, pager):
        """Deleting all residents of a middle chain page frees exactly it."""
        region = Rect((0, 0), (100, 100))
        tree = CTRTree(pager, DOMAIN, [region], max_entries=4)
        pids = [tree.insert(oid, (50.0, 50.0)) for oid in range(12)]  # 3 pages
        middle_page = pids[4]
        victims = [oid for oid in range(12) if pids[oid] == middle_page]
        for oid in victims:
            tree.delete(oid)
        assert not pager.contains(middle_page)
        (_, qs), = list(tree.iter_qs_entries())
        assert len(qs.chain) == 2
        assert tree.validate() == []
