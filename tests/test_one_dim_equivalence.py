"""The 1-D extension's core guarantee: a CT index over scalar values and the
B+-tree family answer every value query identically."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree, LazyBPlusTree
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.storage.pager import Pager

DOMAIN_1D = Rect((-1000.0,), (1000.0,))

key = st.floats(min_value=-900, max_value=900, allow_nan=False, width=32)
step = st.tuples(st.sampled_from(["insert", "move", "delete"]), st.integers(0, 15), key)


@settings(max_examples=20, deadline=None)
@given(st.lists(step, max_size=120))
def test_ct_1d_matches_bptree(steps):
    ct = CTRTree(
        Pager(), DOMAIN_1D, [Rect((-100.0,), (100.0,))],
        max_entries=5, ct_params=CTParams(t_list=1),
    )
    bpt = BPlusTree(Pager(), max_entries=5)
    lazy = LazyBPlusTree(Pager(), max_entries=5)
    oracle = {}
    for op, oid, value in steps:
        value = float(value)
        if op == "insert" and oid not in oracle:
            ct.insert(oid, (value,))
            bpt.insert(oid, value)
            lazy.insert(oid, value)
            oracle[oid] = value
        elif op == "move" and oid in oracle:
            ct.update(oid, (oracle[oid],), (value,))
            bpt.update(oid, oracle[oid], value)
            lazy.update(oid, oracle[oid], value)
            oracle[oid] = value
        elif op == "delete" and oid in oracle:
            ct.delete(oid)
            bpt.delete(oid, oracle[oid])
            lazy.delete(oid)
            del oracle[oid]

    assert ct.validate() == []
    assert bpt.validate() == []
    assert lazy.validate() == []
    for low, high in ((-1000.0, 1000.0), (-50.0, 50.0), (0.0, 200.0)):
        expected = sorted(oid for oid, v in oracle.items() if low <= v <= high)
        assert sorted(oid for oid, _ in ct.range_search(Rect((low,), (high,)))) == expected
        assert sorted(oid for oid, _ in bpt.range_search(low, high)) == expected
        assert sorted(oid for oid, _ in lazy.range_search(low, high)) == expected


def test_ct_1d_mines_intervals_from_scalar_history():
    """End to end in 1-D: history -> intervals -> mostly-lazy ingest."""
    from repro.core.builder import CTRTreeBuilder

    rng = random.Random(9)
    trails = {}
    for sid in range(40):
        level = rng.choice((10.0, 30.0))
        t, trail = 0.0, []
        for _ in range(80):
            t += 20.0
            level += rng.gauss(0, 0.05)
            trail.append(((level,), t))
        trails[sid] = trail
    params = CTParams(t_dist=2.0, t_rate=0.05, t_time=300.0, t_area=4.0)
    builder = CTRTreeBuilder(params, query_rate=0.1)
    current = {sid: trail[-1][0] for sid, trail in trails.items()}
    tree, report = builder.build(Pager(), DOMAIN_1D, trails, current)
    assert report.phase3_regions >= 2  # the two operating levels
    lazy_before = tree.lazy_hits
    for sid, (value,) in current.items():
        tree.update(sid, (value,), (value + 0.01,))
    assert tree.lazy_hits - lazy_before == len(current)  # all in-interval
