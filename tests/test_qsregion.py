"""Unit tests for Phase 1: qs-region identification (Figure 3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import CTParams
from repro.core.qsregion import QSRegion, identify_qs_regions, trail_duration
from tests.conftest import dwell_trail


@pytest.fixture
def params():
    return CTParams()  # Table-1 defaults: T_dist=30, T_rate=1, T_time=300, T_area=22500


def stationary_trail(x, y, n=30, interval=20.0, start=0.0):
    return [((x, y), start + k * interval) for k in range(n)]


class TestEdgeCases:
    def test_empty_trail(self, params):
        assert identify_qs_regions([], params) == []

    def test_single_sample(self, params):
        assert identify_qs_regions([((0, 0), 0.0)], params) == []

    def test_unordered_trail_rejected(self, params):
        with pytest.raises(ValueError):
            identify_qs_regions([((0, 0), 10.0), ((0, 0), 5.0)], params)

    def test_short_dwell_is_discarded(self, params):
        # 5 samples x 20 s = 80 s < T_time: the "singleton rectangles"
        # labelled a-d in Figure 2(a).
        trail = stationary_trail(5, 5, n=5)
        assert identify_qs_regions(trail, params) == []


class TestSingleDwell:
    def test_long_stationary_dwell_qualifies(self, params):
        trail = stationary_trail(10, 10, n=30)
        regions = identify_qs_regions(trail, params, object_id=7)
        assert len(regions) == 1
        region = regions[0]
        assert region.object_id == 7
        assert region.dwell_time == pytest.approx(29 * 20.0)
        assert region.rect.contains_point((10, 10))

    def test_jittering_dwell_qualifies(self, params, rng):
        trail = dwell_trail(rng, [(50, 50)], dwell_reports=40)
        regions = identify_qs_regions(trail, params)
        assert len(regions) == 1
        assert regions[0].rect.area < params.t_area

    def test_slow_drift_never_freezes(self, params):
        # Growth below T_rate keeps the MBR growing even past T_dist: the
        # region freezes only when the trail ends.
        trail = [((k * 0.5, 0.0), k * 20.0) for k in range(100)]
        regions = identify_qs_regions(trail, params)
        assert len(regions) == 1
        assert regions[0].rect.diagonal > params.t_dist

    def test_dwell_region_respects_area_cap(self, rng):
        params = CTParams(t_area=1.0)  # absurdly small cap
        trail = dwell_trail(rng, [(50, 50)], dwell_reports=40)
        assert identify_qs_regions(trail, params) == []


class TestMultipleDwells:
    def test_two_dwell_sites_two_regions(self, params, rng):
        trail = dwell_trail(rng, [(100, 100), (800, 800)], dwell_reports=30)
        regions = identify_qs_regions(trail, params)
        assert len(regions) == 2
        assert regions[0].order == 0
        assert regions[1].order == 1
        assert regions[0].rect.contains_point((100, 100)) or regions[0].rect.diagonal < 60
        assert not regions[0].rect.intersects(regions[1].rect)

    def test_regions_ordered_by_time(self, params, rng):
        trail = dwell_trail(rng, [(0, 0), (500, 0), (0, 500)], dwell_reports=25)
        regions = identify_qs_regions(trail, params)
        assert [r.order for r in regions] == list(range(len(regions)))
        assert len(regions) == 3

    def test_travel_segment_produces_no_region(self, params):
        # Pure fast travel: 200 m per 20 s report, never dwelling.
        trail = [((k * 200.0, 0.0), k * 20.0) for k in range(30)]
        regions = identify_qs_regions(trail, params)
        assert regions == []

    def test_revisiting_same_spot_gives_separate_regions(self, params, rng):
        trail = dwell_trail(rng, [(100, 100), (800, 800), (100, 100)], dwell_reports=30)
        regions = identify_qs_regions(trail, params)
        assert len(regions) == 3  # phase 2, not phase 1, merges revisits


class TestThresholdSemantics:
    def test_t_time_boundary_is_strict(self, params):
        # Dwell exactly T_time must NOT qualify (condition is >).
        interval = params.t_time / 10.0
        trail = stationary_trail(5, 5, n=11, interval=interval)
        trail.append(((500.0, 500.0), trail[-1][1] + interval))
        trail.append(((1000.0, 1000.0), trail[-1][1] + interval))
        regions = identify_qs_regions(trail, params)
        assert all(r.dwell_time > params.t_time for r in regions)

    def test_larger_t_dist_merges_nearby_dwells(self, rng):
        trail = dwell_trail(rng, [(100, 100), (140, 100)], dwell_reports=30)
        few = identify_qs_regions(trail, CTParams(t_dist=500.0, t_area=1e9))
        many = identify_qs_regions(trail, CTParams(t_dist=10.0))
        assert len(few) <= len(many)

    def test_high_t_rate_tolerates_travel(self, rng):
        # With an enormous T_rate nothing ever freezes: one trailing region.
        trail = dwell_trail(rng, [(0, 0), (900, 900)], dwell_reports=20)
        regions = identify_qs_regions(trail, CTParams(t_rate=1e9, t_area=1e12))
        assert len(regions) == 1


class TestQSRegionType:
    def test_rejects_negative_dwell(self):
        from repro.core.geometry import Rect

        with pytest.raises(ValueError):
            QSRegion(rect=Rect((0, 0), (1, 1)), dwell_time=-1.0)

    def test_sources_default_to_owner(self):
        from repro.core.geometry import Rect

        region = QSRegion(rect=Rect((0, 0), (1, 1)), dwell_time=5.0, object_id=3)
        assert region.sources == [3]

    def test_resident_density(self):
        from repro.core.geometry import Rect

        region = QSRegion(rect=Rect((0, 0), (2, 2)), dwell_time=8.0)
        assert region.resident_density() == pytest.approx(2.0)

    def test_degenerate_density_is_finite(self):
        from repro.core.geometry import Rect

        region = QSRegion(rect=Rect.from_point((1, 1)), dwell_time=10.0)
        assert region.resident_density() < float("inf")


class TestTrailDuration:
    def test_empty_and_singleton(self):
        assert trail_duration([]) == 0.0
        assert trail_duration([((0, 0), 5.0)]) == 0.0

    def test_duration(self):
        assert trail_duration([((0, 0), 5.0), ((1, 1), 25.0)]) == 20.0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_property_regions_cover_their_dwells(seed):
    """Every qualifying region's rect contains samples from the trail and
    satisfies the thresholds it was frozen under."""
    rng = random.Random(seed)
    params = CTParams()
    spots = [(rng.uniform(50, 950), rng.uniform(50, 950)) for _ in range(rng.randint(1, 4))]
    trail = dwell_trail(rng, spots, dwell_reports=rng.randint(18, 40))
    regions = identify_qs_regions(trail, params)
    for region in regions:
        assert region.dwell_time > params.t_time
        assert region.rect.area < params.t_area
        assert any(region.rect.contains_point(p) for p, _ in trail)
