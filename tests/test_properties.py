"""Cross-module property-based tests: the invariants the paper relies on.

These complement the per-module hypothesis tests with whole-index properties
driven by generated workloads: whatever sequence of inserts, moves, and
deletes arrives, every structure must agree with a brute-force oracle and
keep its internal invariants.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.core.qsregion import identify_qs_regions
from repro.rtree import AlphaTree, LazyRTree, RTree
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, dwell_trail

DOMAIN = Rect((0, 0), (1000, 1000))

coord = st.floats(min_value=0, max_value=1000, allow_nan=False, width=32)
point = st.tuples(coord, coord)

# A workload step: (op, object id, point).
step = st.tuples(st.sampled_from(["insert", "move", "delete"]), st.integers(0, 25), point)


def apply_workload(index, steps, needs_old_point):
    """Drive an index through generated steps, mirroring in a dict oracle."""
    oracle = {}
    for op, oid, pt in steps:
        if op == "insert" and oid not in oracle:
            index.insert(oid, pt)
            oracle[oid] = pt
        elif op == "move" and oid in oracle:
            if needs_old_point:
                index.update(oid, oracle[oid], pt)
            else:
                index.update(oid, oracle[oid], pt)
            oracle[oid] = pt
        elif op == "delete" and oid in oracle:
            if needs_old_point:
                assert index.delete(oid, oracle[oid])
            else:
                assert index.delete(oid)
            del oracle[oid]
    return oracle


@settings(max_examples=25, deadline=None)
@given(st.lists(step, max_size=120))
def test_rtree_agrees_with_oracle(steps):
    tree = RTree(Pager(), max_entries=5)
    oracle = apply_workload(tree, steps, needs_old_point=True)
    assert tree.validate() == []
    assert sorted(o for o, _ in tree.range_search(DOMAIN)) == sorted(oracle)


@settings(max_examples=25, deadline=None)
@given(st.lists(step, max_size=120))
def test_lazy_rtree_agrees_with_oracle(steps):
    tree = LazyRTree(Pager(), max_entries=5)
    oracle = apply_workload(tree, steps, needs_old_point=False)
    assert tree.validate() == []
    assert sorted(o for o, _ in tree.range_search(DOMAIN)) == sorted(oracle)


@settings(max_examples=25, deadline=None)
@given(st.lists(step, max_size=120))
def test_alpha_tree_agrees_with_oracle(steps):
    tree = AlphaTree(Pager(), max_entries=5)
    oracle = apply_workload(tree, steps, needs_old_point=False)
    assert tree.validate() == []
    assert sorted(o for o, _ in tree.range_search(DOMAIN)) == sorted(oracle)


@settings(max_examples=20, deadline=None)
@given(st.lists(step, max_size=100), st.integers(0, 3))
def test_ctrtree_agrees_with_oracle(steps, region_layout):
    layouts = [
        [],
        [Rect((0, 0), (200, 200))],
        [Rect((0, 0), (150, 150)), Rect((100, 100), (300, 300))],  # overlapping
        [Rect((i * 250.0, j * 250.0), (i * 250.0 + 80, j * 250.0 + 80))
         for i in range(4) for j in range(4)],
    ]
    tree = CTRTree(
        Pager(), DOMAIN, layouts[region_layout],
        max_entries=5, ct_params=CTParams(t_list=1, t_buf_num=4, t_buf_time=3.0),
    )
    oracle = apply_workload(tree, steps, needs_old_point=False)
    assert tree.validate() == []
    assert sorted(o for o, _ in tree.range_search(DOMAIN)) == sorted(oracle)


@settings(max_examples=20, deadline=None)
@given(st.lists(step, max_size=100))
def test_ct_and_lazy_always_agree(steps):
    """Two very different structures, one answer."""
    ct = CTRTree(Pager(), DOMAIN, [Rect((0, 0), (400, 400))], max_entries=5)
    lazy = LazyRTree(Pager(), max_entries=5)
    oracle = {}
    for op, oid, pt in steps:
        if op == "insert" and oid not in oracle:
            ct.insert(oid, pt)
            lazy.insert(oid, pt)
            oracle[oid] = pt
        elif op == "move" and oid in oracle:
            ct.update(oid, oracle[oid], pt)
            lazy.update(oid, oracle[oid], pt)
            oracle[oid] = pt
        elif op == "delete" and oid in oracle:
            ct.delete(oid)
            lazy.delete(oid)
            del oracle[oid]
    queries = [
        Rect((0, 0), (100, 100)),
        Rect((250, 250), (600, 600)),
        Rect((0, 0), (1000, 1000)),
    ]
    for query in queries:
        ct_ans = sorted(o for o, _ in ct.range_search(query))
        lazy_ans = sorted(o for o, _ in lazy.range_search(query))
        assert ct_ans == lazy_ans == brute_force_range(oracle, query)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 4))
def test_phase1_to_ct_pipeline_property(seed, n_spots):
    """Regions mined from a trail always accept the trail's dwell points."""
    rng = random.Random(seed)
    params = CTParams()
    spots = [(rng.uniform(100, 900), rng.uniform(100, 900)) for _ in range(n_spots)]
    trail = dwell_trail(rng, spots, dwell_reports=30)
    regions = identify_qs_regions(trail, params, object_id=0)
    tree = CTRTree(Pager(), DOMAIN, regions, max_entries=8, ct_params=params)
    # Insert the trail's own samples: dwell samples land in qs-regions.
    in_region = 0
    for i, (pt, _t) in enumerate(trail):
        tree.insert(i, pt)
    assert tree.validate() == []
    in_region = len(trail) - tree.buffered_object_count()
    if regions:
        assert in_region / len(trail) > 0.5


@settings(max_examples=15, deadline=None)
@given(st.lists(point, min_size=1, max_size=200))
def test_hash_index_exactness_under_bulk(points):
    """After arbitrary inserts, the hash index locates every object exactly."""
    tree = LazyRTree(Pager(), max_entries=5)
    for oid, pt in enumerate(points):
        tree.insert(oid, pt)
    for oid, pt in enumerate(points):
        pid = tree.hash.peek(oid)
        leaf = tree.pager.inspect(pid)
        assert leaf.find_entry(oid) is not None
