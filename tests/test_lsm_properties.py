"""Property-based LSM-R-tree checks: random insert/update/delete
interleavings with arbitrary flush/compaction points stay equal to a
dict-of-latest-positions oracle, and verify_index stays clean throughout.

The ops strategy inserts explicit **flush** and **compact** actions into
the interleaving, so the oracle comparison exercises every component
boundary: memtable-only, memtable + runs, mid-compaction run layouts.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.geometry import Rect
from repro.health import verify_index
from repro.lsm import LSMConfig, LSMRTree
from repro.storage.pager import Pager

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (op, oid, x, y): 0 = upsert, 1 = delete, 2 = flush, 3 = compact_step.
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=100,
)

CONFIGS = st.sampled_from(
    [
        # Tiny memtable: every few ops cross a flush boundary organically.
        LSMConfig(memtable_size=4, size_ratio=2, max_runs=3),
        # Flush only when the interleaving says so.
        LSMConfig(memtable_size=64, size_ratio=2, max_runs=4, auto_compact=False),
        LSMConfig(memtable_size=8, size_ratio=3, max_runs=5, auto_compact=False),
    ]
)


def _drive(lsm, ops):
    """Apply the interleaving; returns the latest-position oracle."""
    oracle = {}
    t = 0.0
    for op, oid, x, y in ops:
        t += 1.0
        if op == 0:
            old = oracle.get(oid)
            if old is None:
                lsm.insert(oid, (x, y), now=t)
            else:
                lsm.update(oid, old, (x, y), now=t)
            oracle[oid] = (x, y)
        elif op == 1:
            assert lsm.delete(oid) == (oid in oracle)
            oracle.pop(oid, None)
        elif op == 2:
            lsm.flush()
        else:
            lsm.compact_step()
    return oracle


class TestLSMProperties:
    @SETTINGS
    @given(ops=OPS, config=CONFIGS)
    def test_range_matches_oracle_at_every_step(self, ops, config):
        lsm = LSMRTree(Pager(), max_entries=4, config=config)
        oracle = {}
        t = 0.0
        for op, oid, x, y in ops:
            t += 1.0
            if op == 0:
                old = oracle.get(oid)
                if old is None:
                    lsm.insert(oid, (x, y), now=t)
                else:
                    lsm.update(oid, old, (x, y), now=t)
                oracle[oid] = (x, y)
            elif op == 1:
                lsm.delete(oid)
                oracle.pop(oid, None)
            elif op == 2:
                lsm.flush()
            else:
                lsm.compact_step()
            assert dict(lsm.range_search(DOMAIN)) == oracle
            assert len(lsm) == len(oracle)

    @SETTINGS
    @given(ops=OPS, config=CONFIGS)
    def test_verify_clean_at_every_flush_and_compaction(self, ops, config):
        lsm = LSMRTree(Pager(), max_entries=4, config=config)
        oracle = {}
        t = 0.0
        for op, oid, x, y in ops:
            t += 1.0
            if op == 0:
                old = oracle.get(oid)
                if old is None:
                    lsm.insert(oid, (x, y), now=t)
                else:
                    lsm.update(oid, old, (x, y), now=t)
                oracle[oid] = (x, y)
            elif op == 1:
                lsm.delete(oid)
                oracle.pop(oid, None)
            else:
                if op == 2:
                    lsm.flush()
                else:
                    lsm.compact_step()
                report = verify_index(lsm)
                assert report.ok, [str(v) for v in report.violations]
        report = verify_index(lsm)
        assert report.ok, [str(v) for v in report.violations]
        assert report.kind == "lsm"

    @SETTINGS
    @given(ops=OPS, config=CONFIGS)
    def test_partial_rect_and_knn_match_oracle(self, ops, config):
        lsm = LSMRTree(Pager(), max_entries=4, config=config)
        oracle = _drive(lsm, ops)
        probe = Rect((20.0, 20.0), (70.0, 70.0))
        expected = {
            oid: pt for oid, pt in oracle.items() if probe.contains_point(pt)
        }
        assert dict(lsm.range_search(probe)) == expected
        if oracle:
            target = (50.0, 50.0)
            brute = sorted(
                (math.dist(target, pt), oid, pt) for oid, pt in oracle.items()
            )[:3]
            assert lsm.nearest(target, 3) == brute

    @SETTINGS
    @given(ops=OPS, config=CONFIGS)
    def test_final_drain_and_full_compaction_preserve_answers(self, ops, config):
        lsm = LSMRTree(Pager(), max_entries=4, config=config)
        oracle = _drive(lsm, ops)
        lsm.flush(reason="final")
        lsm.maybe_compact()
        assert dict(lsm.range_search(DOMAIN)) == oracle
        assert sorted(dict(lsm.iter_objects()).items()) == sorted(oracle.items())
        assert verify_index(lsm).ok
