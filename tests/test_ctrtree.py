"""Unit tests for the CT-R-tree structure and dynamic operations (Section 3)."""

import pytest

from repro.core.ctrtree import CTRTree, infinite_rect
from repro.core.geometry import Rect
from repro.core.overflow import OWNER_QS, DataPage, NodeBuffer
from repro.core.params import CTParams
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points, random_query

DOMAIN = Rect((0, 0), (1000, 1000))


def grid_regions(nx=4, ny=4, side=60.0, pitch=250.0):
    return [
        Rect((i * pitch, j * pitch), (i * pitch + side, j * pitch + side))
        for i in range(nx)
        for j in range(ny)
    ]


@pytest.fixture
def tree(pager):
    return CTRTree(pager, DOMAIN, grid_regions(), max_entries=8)


class TestConstruction:
    def test_empty_tree(self, pager):
        tree = CTRTree(pager, DOMAIN)
        assert len(tree) == 0
        assert tree.region_count == 0
        assert tree.range_search(DOMAIN) == []

    def test_regions_become_permanent_leaf_entries(self, tree):
        assert tree.region_count == 16
        assert tree.validate() == []

    def test_structural_splits_during_construction(self, pager):
        tree = CTRTree(pager, DOMAIN, grid_regions(6, 6, side=40, pitch=160), max_entries=4)
        assert tree.region_count == 36
        assert tree.height >= 2
        assert tree.validate() == []

    def test_rejects_small_fanout(self, pager):
        with pytest.raises(ValueError):
            CTRTree(pager, DOMAIN, max_entries=2)

    def test_rejects_unknown_split(self, pager):
        with pytest.raises(ValueError):
            CTRTree(pager, DOMAIN, split="bogus")

    def test_accepts_qsregion_objects(self, pager):
        from repro.core.qsregion import QSRegion

        regions = [QSRegion(rect=Rect((0, 0), (10, 10)), dwell_time=500.0)]
        tree = CTRTree(pager, DOMAIN, regions)
        assert tree.region_count == 1

    def test_infinite_rect_contains_everything(self):
        inf = infinite_rect(2)
        assert inf.contains_point((1e300, -1e300))


class TestInsert:
    def test_insert_into_containing_region(self, tree, pager):
        pid = tree.insert(1, (30.0, 30.0))  # inside region (0,0)-(60,60)
        page = pager.inspect(pid)
        assert isinstance(page, DataPage)
        assert page.owner[0] == OWNER_QS
        assert page.tolerance.contains_point((30.0, 30.0))
        assert tree.hash.peek(1) == pid

    def test_insert_chooses_min_area_region(self, pager):
        big = Rect((0, 0), (100, 100))
        small = Rect((40, 40), (60, 60))
        tree = CTRTree(pager, DOMAIN, [big, small])
        pid = tree.insert(1, (50.0, 50.0))
        page = pager.inspect(pid)
        assert page.tolerance == small

    def test_insert_outside_regions_goes_to_buffer(self, tree, pager):
        pid = tree.insert(1, (130.0, 130.0))  # in the gap between regions
        page = pager.inspect(pid)
        assert isinstance(page, DataPage)
        assert page.owner[0] == "list"
        assert tree.buffered_object_count() == 1

    def test_insert_outside_domain_lands_in_root_buffer(self, tree):
        tree.insert(1, (-500.0, -500.0))
        assert tree.buffered_object_count() == 1
        assert tree.search_point((-500.0, -500.0)) == [1]

    def test_chain_grows_without_splitting(self, pager):
        region = Rect((0, 0), (100, 100))
        tree = CTRTree(pager, DOMAIN, [region], max_entries=4)
        for i in range(50):  # 50 objects >> page capacity 4
            tree.insert(i, (50.0 + (i % 5) * 0.1, 50.0))
        assert tree.region_count == 1  # never split
        (_, qs), = list(tree.iter_qs_entries())
        assert len(qs.chain) >= 13
        assert tree.validate() == []

    def test_first_non_full_page_reused(self, tree, pager):
        pid_a = tree.insert(1, (30.0, 30.0))
        pid_b = tree.insert(2, (31.0, 30.0))
        assert pid_a == pid_b  # same page until full


class TestDelete:
    def test_delete_from_region(self, tree):
        tree.insert(1, (30.0, 30.0))
        assert tree.delete(1)
        assert len(tree) == 0
        assert tree.hash.peek(1) is None
        assert tree.search_point((30.0, 30.0)) == []

    def test_delete_missing(self, tree):
        assert not tree.delete(5)

    def test_empty_page_deallocated(self, tree, pager):
        pid = tree.insert(1, (30.0, 30.0))
        tree.delete(1)
        assert not pager.contains(pid)
        assert tree.validate() == []

    def test_region_survives_emptying(self, tree):
        """Paper: qs-regions "are never removed from the index (i.e. they are
        allowed to be underfull)"."""
        tree.insert(1, (30.0, 30.0))
        tree.delete(1)
        assert tree.region_count == 16

    def test_delete_from_buffer(self, tree):
        tree.insert(1, (130.0, 130.0))
        assert tree.delete(1)
        assert tree.buffered_object_count() == 0
        assert tree.validate() == []


class TestUpdate:
    def test_in_region_update_is_lazy(self, tree, pager):
        tree.insert(1, (30.0, 30.0))
        reads, writes = pager.stats.reads(), pager.stats.writes()
        pid = tree.update(1, (30.0, 30.0), (35.0, 35.0))
        # 1 hash read + 1 page read + 1 page write: the constant-I/O path.
        assert pager.stats.reads() - reads == 2
        assert pager.stats.writes() - writes == 1
        assert tree.lazy_hits == 1
        assert tree.search_point((35.0, 35.0)) == [1]

    def test_cross_region_update_relocates(self, tree):
        tree.insert(1, (30.0, 30.0))
        tree.update(1, (30.0, 30.0), (280.0, 30.0))  # region (250..310, 0..60)
        assert tree.relocations == 1
        assert tree.search_point((280.0, 30.0)) == [1]
        assert tree.search_point((30.0, 30.0)) == []
        assert tree.validate() == []

    def test_region_to_buffer_update(self, tree):
        tree.insert(1, (30.0, 30.0))
        tree.update(1, (30.0, 30.0), (130.0, 130.0))
        assert tree.buffered_object_count() == 1
        assert tree.validate() == []

    def test_buffer_to_region_update(self, tree):
        tree.insert(1, (130.0, 130.0))
        tree.update(1, (130.0, 130.0), (30.0, 30.0))
        assert tree.buffered_object_count() == 0
        assert tree.search_point((30.0, 30.0)) == [1]

    def test_buffer_resident_update_always_relocates(self, tree):
        """List buffers carry no MBR, so there is no lazy path for them."""
        tree.insert(1, (130.0, 130.0))
        tree.update(1, (130.0, 130.0), (131.0, 130.0))
        assert tree.lazy_hits == 0
        assert tree.relocations == 1

    def test_update_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree.update(9, (0, 0), (1, 1))

    def test_many_updates_stay_consistent(self, tree, rng):
        points = {}
        for oid in range(60):
            point = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.insert(oid, point)
            points[oid] = point
        for _ in range(600):
            oid = rng.randrange(60)
            new = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
        for _ in range(25):
            query = random_query(rng, span=1000)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)


class TestSearch:
    def test_point_and_range_search(self, tree, rng):
        points = {}
        for oid in range(80):
            point = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.insert(oid, point)
            points[oid] = point
        for _ in range(40):
            query = random_query(rng, span=1000)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)

    def test_query_reads_all_chain_pages_of_hit_regions(self, pager):
        region = Rect((0, 0), (100, 100))
        tree = CTRTree(pager, DOMAIN, [region], max_entries=4)
        for i in range(20):  # 5 chain pages
            tree.insert(i, (50.0, 50.0))
        reads_before = pager.stats.reads()
        tree.range_search(Rect((40, 40), (60, 60)))
        # root + 5 chain pages.
        assert pager.stats.reads() - reads_before == 6

    def test_query_missing_region_reads_no_chain(self, pager):
        region = Rect((0, 0), (100, 100))
        tree = CTRTree(pager, DOMAIN, [region], max_entries=4)
        for i in range(20):
            tree.insert(i, (50.0, 50.0))
        reads_before = pager.stats.reads()
        tree.range_search(Rect((500, 500), (600, 600)))
        assert pager.stats.reads() - reads_before == 1  # just the root

    def test_search_includes_buffers_at_every_visited_node(self, tree):
        tree.insert(1, (130.0, 130.0))  # buffered
        tree.insert(2, (30.0, 30.0))  # in region
        got = sorted(oid for oid, _ in tree.range_search(Rect((0, 0), (200, 200))))
        assert got == [1, 2]


class TestBufferConversion:
    def test_list_converts_to_alpha_tree(self, pager):
        params = CTParams(t_list=2)
        tree = CTRTree(pager, DOMAIN, grid_regions(), max_entries=4, ct_params=params)
        # 2 pages x 4 records fill the list; the 9th insert converts.
        for i in range(12):
            tree.insert(i, (130.0 + i * 0.5, 130.0))
        converted = [
            node for node in tree.iter_nodes() if node.buffer.kind == NodeBuffer.KIND_TREE
        ]
        assert len(converted) == 1
        assert len(tree._buffer_trees[converted[0].pid]) == 12
        assert tree.validate() == []

    def test_non_adaptive_tree_keeps_lists(self, pager):
        params = CTParams(t_list=1)
        tree = CTRTree(
            pager, DOMAIN, grid_regions(), max_entries=4, ct_params=params, adaptive=False
        )
        for i in range(30):
            tree.insert(i, (130.0 + i * 0.5, 130.0))
        assert all(
            node.buffer.kind == NodeBuffer.KIND_LIST for node in tree.iter_nodes()
        )
        assert tree.validate() == []

    def test_hash_pointers_follow_conversion(self, pager):
        params = CTParams(t_list=1)
        tree = CTRTree(pager, DOMAIN, grid_regions(), max_entries=4, ct_params=params)
        for i in range(10):
            tree.insert(i, (130.0 + i * 0.5, 130.0))
        assert tree.validate() == []  # includes hash-exactness checks

    def test_tree_buffer_supports_lazy_updates(self, pager):
        params = CTParams(t_list=1)
        tree = CTRTree(pager, DOMAIN, grid_regions(), max_entries=4, ct_params=params)
        for i in range(10):
            tree.insert(i, (130.0 + i * 0.3, 130.0))
        lazy_before = tree.lazy_hits
        tree.update(0, (130.0, 130.0), (130.1, 130.0))
        assert tree.lazy_hits == lazy_before + 1

    def test_buffered_queries_after_conversion(self, pager, rng):
        params = CTParams(t_list=1)
        tree = CTRTree(pager, DOMAIN, grid_regions(), max_entries=4, ct_params=params)
        points = {}
        for oid in range(40):
            point = (rng.uniform(100, 200), rng.uniform(100, 200))  # gap area
            tree.insert(oid, point)
            points[oid] = point
        for _ in range(20):
            query = random_query(rng, span=300)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)


class TestMixedLifecycle:
    def test_interleaved_everything(self, tree, rng):
        points = {}
        next_id = 0
        for step in range(1500):
            action = rng.random()
            if action < 0.3 or not points:
                point = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                tree.insert(next_id, point, now=float(step))
                points[next_id] = point
                next_id += 1
            elif action < 0.8:
                oid = rng.choice(list(points))
                old = points[oid]
                new = (
                    min(max(old[0] + rng.gauss(0, 10), 0), 1000),
                    min(max(old[1] + rng.gauss(0, 10), 0), 1000),
                )
                tree.update(oid, old, new, now=float(step))
                points[oid] = new
            else:
                oid = rng.choice(list(points))
                assert tree.delete(oid, now=float(step))
                del points[oid]
        assert tree.validate() == []
        assert len(tree) == len(points)
        got = sorted(oid for oid, _ in tree.range_search(Rect((0, 0), (1000, 1000))))
        assert got == sorted(points)
