"""Unit tests for ``repro.resilience``: breaker, retries, dedup, supervisor.

Everything here runs against fake clocks and fake child processes -- no
sockets, no subprocesses, no sleeps.  The live end-to-end behaviour is
covered by ``tests/test_chaos.py`` and the ``repro chaos`` harness.
"""

import json
import random

import pytest

from repro.durability import (
    DurabilityManager,
    FaultSchedule,
    FaultSpec,
    append_corrupt_frame,
    append_torn_frame,
    read_checkpoint_info,
    recover,
    scan_directory,
)
from repro.resilience import (
    CircuitBreaker,
    DedupJournal,
    RetryPolicy,
    Supervisor,
    SupervisorError,
    SupervisorPolicy,
    file_ready_check,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def sleep(self, delay: float) -> None:
        self.t += max(delay, 0.001)


# -- circuit breaker ----------------------------------------------------------


def test_breaker_opens_after_threshold_and_half_open_probe_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown_s=1.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.acquire() == 0.0

    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # below threshold
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens == 1

    wait = breaker.acquire()
    assert 0.0 < wait <= 1.0  # open: fail fast, come back later

    clock.t += 1.5  # cooldown elapses
    assert breaker.acquire() == 0.0  # exactly one probe admitted
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.consecutive_failures == 0


def test_breaker_half_open_failure_reopens_immediately():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, cooldown_s=0.5, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    clock.t += 1.0
    assert breaker.acquire() == 0.0
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_failure()  # the probe failed: straight back to OPEN
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens == 2
    assert breaker.acquire() > 0.0


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(threshold=3, cooldown_s=1.0, clock=FakeClock())
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # streak restarted


def test_breaker_rejects_bad_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=0.0)


# -- retry policy -------------------------------------------------------------


def test_retry_delay_is_deterministic_given_seed_and_bounded_by_cap():
    policy = RetryPolicy(backoff_base=0.02, backoff_cap=0.5)
    a = [policy.delay(n, 0.0, random.Random(42)) for n in range(1, 9)]
    b = [policy.delay(n, 0.0, random.Random(42)) for n in range(1, 9)]
    assert a == b
    rng = random.Random(7)
    for attempt in range(1, 30):
        assert 0.0 <= policy.delay(attempt, 0.0, rng) <= 0.5


def test_retry_hint_raises_the_jitter_ceiling_not_a_fixed_sleep():
    policy = RetryPolicy(backoff_base=0.01, backoff_cap=10.0)
    # With a 2.0s server hint the sleep is uniform(0, 2.0) -- jittered,
    # never an exact lockstep 2.0s wait.
    rng = random.Random(0)
    delays = [policy.delay(1, 2.0, rng) for _ in range(64)]
    assert max(delays) <= 2.0
    assert max(delays) > 0.5  # the hint ceiling is actually used
    assert len(set(delays)) > 1  # and it jitters


# -- dedup journal ------------------------------------------------------------


def test_dedup_miss_then_record_then_hit_with_cached_ack():
    journal = DedupJournal()
    assert journal.check("c1", 1) is None
    journal.record("c1", 1, seq=17)
    hit = journal.check("c1", 1)
    assert hit is not None and hit.seq == 17 and hit.accepted == 1
    # A new rid above the watermark is a miss again.
    assert journal.check("c1", 2) is None
    assert journal.metrics_dict()["hits"] == 1


def test_dedup_detects_replay_even_after_window_eviction():
    journal = DedupJournal(window=2)
    for rid in (1, 2, 3):
        journal.record("c1", rid, seq=rid * 10)
    hit = journal.check("c1", 1)  # evicted, but still <= watermark
    assert hit is not None and hit.seq is None
    assert journal.evicted_hits == 1
    hit3 = journal.check("c1", 3)
    assert hit3 is not None and hit3.seq == 30


def test_dedup_state_round_trip_and_replay_absorption():
    journal = DedupJournal(window=8)
    journal.record("a", 1, seq=5)
    journal.record("b", 3, seq=9, accepted=4)
    restored = DedupJournal.from_state(
        json.loads(json.dumps(journal.to_state()))
    )
    assert restored.watermark("a") == 1
    hit = restored.check("b", 3)
    assert hit is not None and hit.accepted == 4
    # The WAL tail's stamps fold in on top (restart path).
    restored.absorb_replay([("a", 2, 11), ("c", 1, 12)])
    assert restored.watermark("a") == 2
    assert restored.check("c", 1).seq == 12


# -- fault schedules ----------------------------------------------------------


def test_fault_schedule_reproduces_from_seed_and_round_trips_json():
    first = FaultSchedule.generate(1234, n_faults=4)
    second = FaultSchedule.generate(1234, n_faults=4)
    assert first.to_json() == second.to_json()
    assert first.seed_line() == second.seed_line()
    restored = FaultSchedule.from_json(first.to_json())
    assert [s.to_dict() for s in restored.specs] == [
        s.to_dict() for s in first.specs
    ]
    different = FaultSchedule.generate(1235, n_faults=4)
    assert different.to_json() != first.to_json()


def test_fault_schedule_splits_live_and_surgery_specs():
    schedule = FaultSchedule(
        [
            FaultSpec(FaultSpec.CRASH_APPEND, at=3, torn_bytes=2),
            FaultSpec(FaultSpec.TORN_TAIL, at=5),
            FaultSpec(FaultSpec.CRC_FLIP, at=0),
        ]
    )
    assert [s.kind for s in schedule.live_specs] == [FaultSpec.CRASH_APPEND]
    assert len(schedule.surgery_specs) == 2
    injector = schedule.injector()
    assert injector is not None


# -- crash-honest WAL tail debris ---------------------------------------------


def _manager_with_records(tmp_path, n=6):
    from repro.core.geometry import Rect
    from repro.storage.pager import Pager
    from repro.workload import make_index

    domain = Rect((0.0, 0.0), (100.0, 100.0))
    index = make_index("lazy", Pager(), domain)
    manager = DurabilityManager(tmp_path, sync="always")
    manager.attach(index, kind="lazy")
    for oid in range(n):
        pos = (float(oid), float(oid))
        manager.log_insert(oid, pos, t=float(oid))
        index.insert(oid, pos, now=float(oid))
    manager.checkpoint()
    for oid in range(n):
        old = (float(oid), float(oid))
        new = (float(oid) + 0.5, float(oid) + 0.5)
        manager.log_update(oid, old, new, t=10.0 + oid)
        index.update(oid, old, new, now=10.0 + oid)
    return manager, index


def test_torn_frame_debris_never_costs_acked_records(tmp_path):
    manager, _index = _manager_with_records(tmp_path)
    acked_seq = manager.last_seq
    manager.close()
    append_torn_frame(tmp_path, nbytes=9)  # crash debris past the tail
    scan = scan_directory(tmp_path)
    assert scan.torn_tail
    recovered, report = recover(tmp_path)
    assert report.torn_tail
    # Tail-only damage: the "gap" sits past every acked record, meaning
    # nothing complete was lost -- only debris was trimmed.
    assert report.gap_at_seq in (0, acked_seq + 1)
    # Every acked update replayed: positions reflect the post-update state.
    from repro.core.geometry import Rect

    positions = dict(recovered.range_search(Rect((0.0, 0.0), (100.0, 100.0))))
    assert all(pos[0] != int(pos[0]) for pos in positions.values())
    assert report.checkpoint_seq < acked_seq  # the tail really replayed


def test_corrupt_frame_debris_never_costs_acked_records(tmp_path):
    manager, _index = _manager_with_records(tmp_path)
    manager.close()
    append_corrupt_frame(tmp_path)
    scan = scan_directory(tmp_path)
    assert scan.corrupt_segments == 1
    recovered, report = recover(tmp_path)
    assert report.corrupt_segments == 1
    from repro.core.geometry import Rect

    positions = dict(recovered.range_search(Rect((0.0, 0.0), (100.0, 100.0))))
    assert len(positions) == 6
    assert all(pos[0] != int(pos[0]) for pos in positions.values())


# -- checkpoint metadata / sequence resumption --------------------------------


def test_read_checkpoint_info_skips_snapshot_materialization(tmp_path):
    manager, _index = _manager_with_records(tmp_path)
    info = manager.checkpoint()
    manager.close()
    meta = read_checkpoint_info(info.path)
    assert meta.covered_seq == info.covered_seq
    assert meta.ordinal == info.ordinal
    assert meta.kind == "lazy"


def test_manager_resumes_sequence_past_truncated_checkpoint(tmp_path):
    manager, index = _manager_with_records(tmp_path)
    manager.checkpoint()  # covers everything; truncation may empty the WAL
    covered = manager.last_seq
    manager.close()

    fresh = DurabilityManager(tmp_path, sync="always")
    fresh.attach(index, kind="lazy")
    # Without the checkpoint guard this would restart below ``covered`` and
    # recovery would skip the new records as already applied.
    seq = fresh.log_update(0, (0.5, 0.5), (9.0, 9.0), t=99.0)
    assert seq > covered
    fresh.close()
    index.update(0, (0.5, 0.5), (9.0, 9.0), now=99.0)

    recovered, report = recover(tmp_path)
    from repro.core.geometry import Rect

    positions = dict(recovered.range_search(Rect((0.0, 0.0), (100.0, 100.0))))
    assert positions[0] == (9.0, 9.0)
    assert report.records_replayed >= 1


# -- supervisor ---------------------------------------------------------------


class FakeChild:
    _next_pid = 1000

    def __init__(self) -> None:
        FakeChild._next_pid += 1
        self.pid = FakeChild._next_pid
        self.exit_code = None
        self.ready = True
        self.killed = False

    def poll(self):
        return self.exit_code

    def wait(self, timeout=None):
        return self.exit_code if self.exit_code is not None else 0

    def kill(self):
        self.killed = True
        self.exit_code = -9

    def terminate(self):
        if self.exit_code is None:
            self.exit_code = 0


def _policy(**kw):
    defaults = dict(
        max_restarts=3, backoff_base=0.1, backoff_cap=1.0,
        ready_timeout=5.0, poll_interval=0.05,
    )
    defaults.update(kw)
    return SupervisorPolicy(**defaults)


def test_supervisor_restarts_crashes_and_reports_mttr():
    clock = FakeClock()
    children = []
    surgeries = []

    def spawn():
        child = FakeChild()
        children.append(child)
        return child

    def scripted_sleep(delay):
        clock.sleep(delay)
        child = children[-1]
        if child.exit_code is None:
            # Incarnations 1 and 2 crash; the third drains cleanly.
            child.exit_code = -9 if len(children) <= 2 else 0

    supervisor = Supervisor(
        spawn,
        ready_check=lambda child: child.ready,
        policy=_policy(),
        on_crash=lambda n: surgeries.append(n) or [f"surgery-{n}"],
        clock=clock,
        sleep=scripted_sleep,
    )
    supervisor.start()
    assert supervisor.run() == 0
    assert supervisor.restarts == 2
    assert len(children) == 3
    assert surgeries == [1, 2]
    assert all(event.ready for event in supervisor.events)
    assert [event.surgery for event in supervisor.events] == [
        ["surgery-1"], ["surgery-2"]
    ]
    mttrs = supervisor.mttr_values()
    assert len(mttrs) == 2 and all(m > 0 for m in mttrs)
    summary = supervisor.to_dict()
    assert summary["exhausted"] is False
    assert summary["mttr_mean_s"] == pytest.approx(sum(mttrs) / 2)
    # Backoff doubles per consecutive restart.
    assert supervisor.events[1].backoff_s == pytest.approx(
        supervisor.events[0].backoff_s * 2
    )


def test_supervisor_budget_exhaustion_stops_the_crash_loop():
    clock = FakeClock()
    children = []

    def spawn():
        child = FakeChild()
        children.append(child)
        return child

    def scripted_sleep(delay):
        clock.sleep(delay)
        if children[-1].exit_code is None:
            children[-1].exit_code = -9  # every incarnation crashes

    supervisor = Supervisor(
        spawn,
        ready_check=lambda child: child.ready,
        policy=_policy(max_restarts=2),
        clock=clock,
        sleep=scripted_sleep,
    )
    supervisor.start()
    assert supervisor.run() == -9
    assert supervisor.exhausted
    assert supervisor.restarts == 2
    assert len(children) == 3  # original + two budgeted restarts


def test_supervisor_start_fails_when_child_never_becomes_ready():
    clock = FakeClock()

    def spawn():
        child = FakeChild()
        child.ready = False
        return child

    supervisor = Supervisor(
        spawn,
        ready_check=lambda child: child.ready,
        policy=_policy(ready_timeout=0.5),
        clock=clock,
        sleep=clock.sleep,
    )
    with pytest.raises(SupervisorError):
        supervisor.start()


def test_file_ready_check_requires_matching_pid(tmp_path):
    ready = tmp_path / "ready.json"
    check = file_ready_check(ready)
    child = FakeChild()
    assert not check(child)  # no file yet
    ready.write_text(json.dumps({"host": "x", "port": 1, "pid": child.pid}))
    assert check(child)
    # A stale file from the SIGKILLed previous incarnation must not count.
    ready.write_text(json.dumps({"host": "x", "port": 1, "pid": child.pid - 1}))
    assert not check(child)
    ready.write_text("not json")
    assert not check(child)
