"""Smoke tests for the experiment harness and every figure module.

These run tiny configurations -- the goal is that each table/figure module
executes end to end and produces structurally sane output, not to reproduce
the shapes (the benchmarks do that at larger scales).
"""

import pytest

from repro.experiments import harness
from repro.experiments.harness import (
    ExperimentResult,
    build_workload,
    ratio_controls,
    run_index_on,
)
from repro.experiments.scales import SCALES, Scale, get_scale
from repro.workload.driver import IndexKind


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    harness.clear_workload_cache()
    yield
    harness.clear_workload_cache()


@pytest.fixture(scope="module")
def bundle():
    return build_workload("smoke", seed=0)


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"smoke", "small", "medium", "paper"}

    def test_get_scale_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_paper_scale_matches_table1(self):
        paper = get_scale("paper")
        params = paper.simulation_params()
        assert params.n_objects == 100_000
        assert params.update_rate == pytest.approx(5000.0)

    def test_base_update_rate(self):
        scale = Scale("x", n_objects=100, n_history=10, n_updates=5)
        assert scale.base_update_rate == pytest.approx(5.0)


class TestHarness:
    def test_workload_memoized(self):
        a = build_workload("smoke", seed=0)
        b = build_workload("smoke", seed=0)
        assert a is b
        assert build_workload("smoke", seed=0, fresh=True) is not a

    def test_bundle_slices(self, bundle):
        histories = bundle.histories()
        assert len(histories) == bundle.scale.n_objects
        assert all(len(h) == bundle.scale.n_history - 1 for h in histories.values())
        assert len(bundle.current()) == bundle.scale.n_objects

    def test_ratio_controls_thin_updates_at_low_ratio(self, bundle):
        duration = bundle.update_stream().duration
        skip, query_rate = ratio_controls(bundle.scale, duration, 0.1)
        assert skip > 1
        effective_update_rate = bundle.scale.base_update_rate / skip
        assert effective_update_rate / query_rate == pytest.approx(0.1, rel=0.3)

    def test_ratio_controls_full_sampling_at_high_ratio(self, bundle):
        duration = bundle.update_stream().duration
        skip, query_rate = ratio_controls(bundle.scale, duration, 1000.0)
        assert skip == 1
        assert bundle.scale.base_update_rate / query_rate == pytest.approx(1000.0)

    def test_ratio_controls_reject_nonpositive(self, bundle):
        with pytest.raises(ValueError):
            ratio_controls(bundle.scale, 100.0, 0.0)

    @pytest.mark.parametrize("kind", IndexKind.ALL)
    def test_run_index_on_every_kind(self, bundle, kind):
        run = run_index_on(kind, bundle, skip=10, query_count=5)
        assert run.result.n_updates > 0
        assert run.result.total_ios > 0

    def test_object_restriction(self, bundle):
        subset = bundle.trace.object_ids[:50]
        run = run_index_on(IndexKind.LAZY, bundle, object_ids=subset, query_count=3)
        assert len(run.index) == 50


class TestExperimentResult:
    def test_table_rendering(self):
        result = ExperimentResult(title="T", columns=["a", "b"])
        result.add(a=1, b=2.5)
        result.add(a=10_000, b="x")
        text = result.to_table()
        assert "T" in text and "10,000" in text and "2.50" in text

    def test_csv(self):
        result = ExperimentResult(title="T", columns=["a", "b"])
        result.add(a=1, b=2)
        assert result.to_csv().splitlines() == ["a,b", "1,2"]

    def test_column_access(self):
        result = ExperimentResult(title="T", columns=["a"])
        result.add(a=1)
        result.add(a=2)
        assert result.column("a") == [1, 2]


class TestFigureModules:
    def test_table1(self):
        from repro.experiments import table1

        text = table1.run("smoke")
        assert "lambda_u" in text

    def test_figure8(self):
        from repro.experiments import figure8

        result = figure8.run("smoke", ratios=(1.0, 100.0))
        assert len(result.rows) == 2
        for row in result.rows:
            for kind in IndexKind.ALL:
                assert row[IndexKind.LABELS[kind]] > 0

    def test_figure9(self):
        from repro.experiments import figure9

        result = figure9.run("smoke", sizes_pct=(0.1, 1.0), query_count=20)
        assert len(result.rows) == 2
        assert all(row["CT/lazy"] > 0 for row in result.rows)

    def test_figure10(self):
        from repro.experiments import figure10

        result = figure10.run("smoke", sizes_pct=(0.5,))
        assert len(result.rows) == 1

    def test_figure11(self):
        from repro.experiments import figure11

        result = figure11.run("smoke", counts=(50, 150), query_count=5)
        assert [row["objects"] for row in result.rows] == [50, 150]
        first, second = result.rows
        label = IndexKind.LABELS[IndexKind.LAZY]
        assert second[label] > first[label]  # more objects, more I/O

    def test_figure12(self):
        from repro.experiments import figure12

        result = figure12.run_parameter("t_rate", "smoke", values=(1.0, 2.0))
        assert len(result.rows) == 2
        with pytest.raises(ValueError):
            figure12.run_parameter("bogus", "smoke")

    def test_figure13(self):
        from repro.experiments import figure13

        result = figure13.run("smoke", ratios=(10.0,))
        (row,) = result.rows
        assert row["unchanged qs-regions"] > 0
        assert row["new qs-regions"] > 0

    def test_ablation_secondary_index(self):
        from repro.experiments import ablations

        result = ablations.run_secondary_index("smoke")
        rows = {row["index"]: row for row in result.rows}
        assert rows["lazy-R-tree"]["I/O per update"] < rows["R-tree"]["I/O per update"]

    def test_ablation_merge_phases(self):
        from repro.experiments import ablations

        result = ablations.run_merge_phases("smoke")
        assert len(result.rows) == 2
        phase1_row, full_row = result.rows
        assert phase1_row["qs-regions"] >= full_row["qs-regions"]

    def test_ablation_bulk_loading(self):
        from repro.experiments import ablations

        result = ablations.run_bulk_loading("smoke")
        rows = {row["method"]: row for row in result.rows}
        assert rows["STR packing"]["build I/O"] < rows["repeated insertion"]["build I/O"]
