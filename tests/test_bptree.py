"""Tests for the B+-tree substrate and its lazy variant (Section-6 extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree, LazyBPlusTree
from repro.storage.pager import Pager


def brute_range(keys, low, high):
    return sorted(
        (k, oid) for oid, k in keys.items() if low <= k <= high
    )


@pytest.fixture
def tree(pager):
    return BPlusTree(pager, max_entries=6)


class TestConstruction:
    def test_empty(self, tree):
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_search(-1e9, 1e9) == []
        assert tree.validate() == []

    def test_rejects_small_fanout(self, pager):
        with pytest.raises(ValueError):
            BPlusTree(pager, max_entries=3)


class TestInsertSearch:
    def test_single(self, tree):
        tree.insert(1, 42.0)
        assert tree.search(42.0) == [1]
        assert tree.search(41.0) == []

    def test_duplicate_keys_coexist(self, tree):
        tree.insert(1, 20.0)
        tree.insert(2, 20.0)
        tree.insert(3, 20.0)
        assert sorted(tree.search(20.0)) == [1, 2, 3]

    def test_many_inserts_keep_invariants(self, tree, rng):
        keys = {oid: rng.uniform(0, 1000) for oid in range(300)}
        for oid, key in keys.items():
            tree.insert(oid, key)
        assert tree.validate() == []
        assert tree.height >= 3

    def test_range_search_matches_brute_force(self, tree, rng):
        keys = {oid: rng.uniform(0, 100) for oid in range(200)}
        for oid, key in keys.items():
            tree.insert(oid, key)
        for _ in range(30):
            low = rng.uniform(0, 90)
            high = low + rng.uniform(0, 30)
            got = sorted((k, oid) for oid, k in tree.range_search(low, high))
            assert got == brute_range(keys, low, high)

    def test_range_search_reversed_bounds(self, tree):
        tree.insert(1, 5.0)
        assert tree.range_search(10.0, 0.0) == []

    def test_sorted_insertion_order(self, tree):
        for i in range(100):
            tree.insert(i, float(i))
        assert tree.validate() == []
        assert [oid for oid, _ in tree.iter_entries()] == list(range(100))

    def test_reverse_sorted_insertion(self, tree):
        for i in range(100):
            tree.insert(i, float(-i))
        assert tree.validate() == []

    def test_all_identical_keys_beyond_fanout(self, tree):
        for i in range(40):
            tree.insert(i, 7.0)
        assert tree.validate() == []
        assert sorted(tree.search(7.0)) == list(range(40))

    def test_insert_returns_holding_leaf(self, tree, pager):
        pid = tree.insert(1, 3.0)
        leaf = pager.inspect(pid)
        assert leaf.find_entry(1) is not None


class TestDelete:
    def test_delete_existing(self, tree):
        tree.insert(1, 5.0)
        assert tree.delete(1, 5.0)
        assert len(tree) == 0
        assert tree.search(5.0) == []

    def test_delete_missing(self, tree):
        tree.insert(1, 5.0)
        assert not tree.delete(2, 5.0)
        assert not tree.delete(1, 6.0)

    def test_delete_all_then_reuse(self, tree, rng):
        keys = {oid: rng.uniform(0, 100) for oid in range(150)}
        for oid, key in keys.items():
            tree.insert(oid, key)
        for oid, key in keys.items():
            assert tree.delete(oid, key)
        assert len(tree) == 0
        assert tree.validate() == []
        tree.insert(999, 1.0)
        assert tree.search(1.0) == [999]

    def test_interleaved_delete_keeps_chain(self, tree, rng):
        keys = {oid: rng.uniform(0, 100) for oid in range(200)}
        for oid, key in keys.items():
            tree.insert(oid, key)
        for oid in list(keys)[::2]:
            assert tree.delete(oid, keys.pop(oid))
        assert tree.validate() == []
        got = sorted((k, oid) for oid, k in tree.range_search(-1, 101))
        assert got == brute_range(keys, -1, 101)

    def test_delete_at_via_pointer(self, tree):
        pid = tree.insert(1, 5.0)
        assert tree.delete_at(1, pid) == 5.0
        assert tree.delete_at(1, pid) is None or len(tree) == 0

    def test_update_moves_key(self, tree):
        tree.insert(1, 5.0)
        tree.update(1, 5.0, 99.0)
        assert tree.search(5.0) == []
        assert tree.search(99.0) == [1]

    def test_update_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree.update(1, 5.0, 6.0)


class TestCharging:
    def test_search_is_read_only(self, tree, rng, pager):
        for oid in range(100):
            tree.insert(oid, rng.uniform(0, 100))
        writes = pager.stats.writes()
        tree.range_search(10, 20)
        assert pager.stats.writes() == writes

    def test_introspection_uncharged(self, tree, rng, pager):
        for oid in range(60):
            tree.insert(oid, rng.uniform(0, 100))
        total = pager.stats.total()
        list(tree.iter_entries())
        tree.validate()
        tree.node_count()
        assert pager.stats.total() == total


class TestLazyBPlusTree:
    def test_in_interval_update_is_lazy_and_cheap(self, pager):
        tree = LazyBPlusTree(pager, max_entries=6)
        for oid in range(6):
            tree.insert(oid, float(oid * 10))
        reads, writes = pager.stats.reads(), pager.stats.writes()
        tree.update(3, 30.0, 31.0)  # single-leaf tree: always in interval
        assert (pager.stats.reads() - reads, pager.stats.writes() - writes) == (2, 1)
        assert tree.lazy_hits == 1
        assert tree.search(31.0) == [3]

    def test_cross_separator_update_relocates(self, pager, rng):
        tree = LazyBPlusTree(pager, max_entries=6)
        keys = {oid: rng.uniform(0, 100) for oid in range(100)}
        for oid, key in keys.items():
            tree.insert(oid, key)
        # A median-key object sits in an interior leaf, bounded on both
        # sides (edge leaves have sentinel bounds and tolerate anything).
        median_oid = sorted(keys, key=keys.get)[50]
        tree.update(median_oid, keys[median_oid], keys[median_oid] + 500.0)
        assert tree.relocations >= 1
        assert tree.search(keys[median_oid] + 500.0) == [median_oid]
        assert tree.validate() == []

    def test_drifting_sensor_is_mostly_lazy(self, pager, rng):
        """The whole point: slow drift around an operating point stays lazy."""
        tree = LazyBPlusTree(pager, max_entries=8)
        keys = {}
        for oid in range(50):
            keys[oid] = 20.0 + rng.gauss(0, 1.0)
            tree.insert(oid, keys[oid])
        for _ in range(1000):
            oid = rng.randrange(50)
            new = keys[oid] + rng.gauss(0, 0.05)
            tree.update(oid, keys[oid], new)
            keys[oid] = new
        assert tree.lazy_hits / 1000 > 0.8
        assert tree.validate() == []

    def test_delete_via_hash(self, pager, rng):
        tree = LazyBPlusTree(pager, max_entries=6)
        for oid in range(80):
            tree.insert(oid, rng.uniform(0, 100))
        for oid in range(0, 80, 3):
            assert tree.delete(oid)
        assert not tree.delete(0)
        assert tree.validate() == []

    def test_update_missing_raises(self, pager):
        tree = LazyBPlusTree(pager)
        with pytest.raises(KeyError):
            tree.update(5, 0.0, 1.0)


key_floats = st.floats(min_value=-1000, max_value=1000, allow_nan=False, width=32)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["insert", "move", "delete"]),
                           st.integers(0, 20), key_floats), max_size=150))
def test_property_bptree_matches_dict(steps):
    tree = BPlusTree(Pager(), max_entries=5)
    oracle = {}
    for op, oid, key in steps:
        if op == "insert" and oid not in oracle:
            tree.insert(oid, key)
            oracle[oid] = float(key)
        elif op == "move" and oid in oracle:
            tree.update(oid, oracle[oid], key)
            oracle[oid] = float(key)
        elif op == "delete" and oid in oracle:
            assert tree.delete(oid, oracle.pop(oid))
    assert tree.validate() == []
    got = sorted((k, oid) for oid, k in tree.range_search(-1e9, 1e9))
    assert got == sorted((k, oid) for oid, k in oracle.items())


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["insert", "move", "delete"]),
                           st.integers(0, 20), key_floats), max_size=150))
def test_property_lazy_bptree_matches_dict(steps):
    tree = LazyBPlusTree(Pager(), max_entries=5)
    oracle = {}
    for op, oid, key in steps:
        if op == "insert" and oid not in oracle:
            tree.insert(oid, key)
            oracle[oid] = float(key)
        elif op == "move" and oid in oracle:
            tree.update(oid, oracle[oid], key)
            oracle[oid] = float(key)
        elif op == "delete" and oid in oracle:
            assert tree.delete(oid)
            del oracle[oid]
    assert tree.validate() == []
    got = sorted((k, oid) for oid, k in tree.range_search(-1e9, 1e9))
    assert got == sorted((k, oid) for oid, k in oracle.items())
