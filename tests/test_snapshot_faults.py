"""Snapshot durability under the fault harness (satellite of the WAL work).

Covers the failure modes the atomic snapshot writer and the checkpoint
fallback chain exist for: torn files, stale ``*.tmp`` leftovers, and a
checkpoint whose covered WAL position disagrees with the log on disk.
"""

import json

import pytest

from repro.core.geometry import Rect
from repro.durability import (
    DurabilityManager,
    clean_stale_tmp,
    recover,
    write_checkpoint,
)
from repro.engine import IndexKind, make_index
from repro.storage.pager import Pager
from repro.storage.snapshot import SnapshotError, load_index, save_index
from tests.conftest import brute_force_range, random_points

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def built_index(rng, n=10):
    index = make_index(IndexKind.LAZY, Pager(), DOMAIN)
    positions = random_points(rng, n)
    for oid, point in positions.items():
        index.insert(oid, point, now=0.0)
    return index, positions


class TestAtomicSnapshotWrites:
    def test_save_leaves_no_tmp(self, rng, tmp_path):
        index, _ = built_index(rng)
        path = tmp_path / "snap.json"
        save_index(index, path)
        assert path.exists()
        assert not (tmp_path / "snap.json.tmp").exists()

    def test_overwrite_is_all_or_nothing(self, rng, tmp_path):
        # A stale tmp from a (simulated) earlier crash must not poison a
        # later save: the writer replaces it and publishes atomically.
        index, positions = built_index(rng)
        path = tmp_path / "snap.json"
        save_index(index, path)
        (tmp_path / "snap.json.tmp").write_text("{ torn garb", encoding="utf-8")
        save_index(index, path)
        loaded = load_index(path)
        rect = Rect((0.0, 0.0), (70.0, 70.0))
        got = sorted(oid for oid, _ in loaded.range_search(rect))
        assert got == brute_force_range(positions, rect)

    def test_torn_snapshot_raises_snapshot_error(self, rng, tmp_path):
        index, _ = built_index(rng)
        path = tmp_path / "snap.json"
        save_index(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])  # partial read / torn write
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_binary_junk_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_bytes(b"\x80\x81\x82\xff garbage")
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_non_object_document_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(["not", "a", "snapshot"]), encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_index(path)


class TestCheckpointWalMismatch:
    def _durable_run(self, rng, directory, n_updates=12):
        index, positions = built_index(rng)
        manager = DurabilityManager(directory, sync="always")
        manager.attach(index)
        manager.checkpoint()
        ledger = dict(positions)
        for i in range(n_updates):
            oid = i % len(positions)
            new = (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
            manager.log_update(oid, ledger[oid], new, float(i + 1))
            index.update(oid, ledger[oid], new, now=float(i + 1))
            ledger[oid] = new
        return index, ledger, manager

    def test_checkpoint_ahead_of_wal_replays_nothing(self, rng, tmp_path):
        # The checkpoint claims to cover *more* than the log holds (its
        # truncation pass ran, the successor checkpoint file was lost).
        # Everything on disk is covered: replay must be empty, not wrong.
        index, ledger, manager = self._durable_run(rng, tmp_path)
        write_checkpoint(index, tmp_path, covered_seq=manager.last_seq + 100)
        recovered, report = recover(tmp_path)
        assert report.records_replayed == 0
        rect = Rect((0.0, 0.0), (100.0, 100.0))
        got = sorted(oid for oid, _ in recovered.range_search(rect))
        assert got == brute_force_range(ledger, rect)

    def test_wal_ahead_of_checkpoint_replays_the_gap(self, rng, tmp_path):
        # The opposite skew: the newest checkpoint is older than the log
        # (its covered_seq trails); recovery replays exactly the tail.
        _, ledger, _ = self._durable_run(rng, tmp_path, n_updates=12)
        # The only checkpoint is the baseline (covered_seq 0); the log
        # holds 1 marker + 12 updates past it.
        recovered, report = recover(tmp_path)
        assert report.checkpoint_seq == 0
        assert report.records_replayed == 12
        rect = Rect((0.0, 0.0), (100.0, 100.0))
        got = sorted(oid for oid, _ in recovered.range_search(rect))
        assert got == brute_force_range(ledger, rect)

    def test_stale_tmp_is_removed_by_repair(self, rng, tmp_path):
        self._durable_run(rng, tmp_path)
        stale = tmp_path / "checkpoint-00000099.json.tmp"
        stale.write_text("{ half-written", encoding="utf-8")
        _, report = recover(tmp_path)
        assert report.tmp_files_removed == 1
        assert not stale.exists()
        assert clean_stale_tmp(tmp_path) == 0  # nothing left behind
