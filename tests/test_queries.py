"""Unit tests for the range-query workload generator."""

import math

import pytest

from repro.core.geometry import Rect
from repro.workload.queries import QueryWorkload

DOMAIN = Rect((0, 0), (1000, 1000))


class TestConstruction:
    def test_side_from_fraction(self):
        w = QueryWorkload(DOMAIN, rate=1.0, size_fraction=0.001)
        assert w.side == pytest.approx(math.sqrt(1000.0))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            QueryWorkload(DOMAIN, rate=0.0, size_fraction=0.1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            QueryWorkload(DOMAIN, rate=1.0, size_fraction=0.0)
        with pytest.raises(ValueError):
            QueryWorkload(DOMAIN, rate=1.0, size_fraction=1.5)


class TestGeneration:
    def test_queries_are_squares_of_right_area(self):
        w = QueryWorkload(DOMAIN, rate=1.0, size_fraction=0.01, seed=1)
        for q in w.take(20):
            sides = q.rect.sides
            assert sides[0] == pytest.approx(sides[1])
            assert q.rect.area == pytest.approx(0.01 * DOMAIN.area)

    def test_centers_within_domain(self):
        w = QueryWorkload(DOMAIN, rate=1.0, size_fraction=0.01, seed=1)
        for q in w.take(50):
            assert DOMAIN.contains_point(q.rect.center)

    def test_poisson_arrivals_increasing(self):
        w = QueryWorkload(DOMAIN, rate=5.0, size_fraction=0.01, seed=2)
        queries = w.take(50)
        times = [q.t for q in queries]
        assert times == sorted(times)
        assert len(set(times)) == 50

    def test_between_respects_window(self):
        w = QueryWorkload(DOMAIN, rate=10.0, size_fraction=0.01, seed=3)
        queries = w.between(100.0, 200.0)
        assert all(100.0 <= q.t < 200.0 for q in queries)
        # Expect roughly rate * window arrivals.
        assert 500 < len(queries) < 1500

    def test_between_empty_window(self):
        w = QueryWorkload(DOMAIN, rate=10.0, size_fraction=0.01, seed=3)
        assert w.between(50.0, 50.0) == []

    def test_between_rejects_reversed_window(self):
        w = QueryWorkload(DOMAIN, rate=10.0, size_fraction=0.01, seed=3)
        with pytest.raises(ValueError):
            w.between(10.0, 5.0)

    def test_deterministic_per_seed(self):
        a = QueryWorkload(DOMAIN, 1.0, 0.01, seed=4).take(10)
        b = QueryWorkload(DOMAIN, 1.0, 0.01, seed=4).take(10)
        assert [q.rect for q in a] == [q.rect for q in b]

    def test_iterator_interface(self):
        w = QueryWorkload(DOMAIN, rate=1.0, size_fraction=0.01, seed=5)
        it = iter(w)
        first = next(it)
        second = next(it)
        assert second.t > first.t
