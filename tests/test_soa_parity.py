"""Differential parity: the SoA layout must be invisible (PR 7).

Runs the same deterministic trace through both registered entry layouts
(``soa`` and ``object``, switched via ``set_default_layout``) and demands
exact equality everywhere an observer could look: query result sequences,
per-category I/O ledgers (0.000% delta -- the counters are integers, so
"within tolerance" means equal), and canonical snapshot documents byte for
byte.  Inline engines, the thread-mode worker pool, and a process-mode pool
are all exercised.

Also unit-tests the shared-memory transport underneath the process pool:
transport selection, the forced-pipe override, the oversize->pipe payload
detour, and the unavailability error.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import random

import pytest

from repro.core.geometry import Rect
from repro.engine import IndexKind
from repro.engine.registry import IndexOptions, make_index
from repro.parallel import ParallelShardedIndex
from repro.parallel.shm import shm_available
from repro.parallel.workers import ProcessWorker, WorkerFailure
from repro.rtree.node import default_layout, set_default_layout
from repro.storage.iostats import IOCategory
from repro.storage.pager import Pager
from repro.storage.snapshot import build_document

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))

QUERY_RECTS = [
    Rect((10.0, 10.0), (60.0, 60.0)),
    Rect((0.0, 0.0), (100.0, 100.0)),
    Rect((40.0, 0.0), (55.0, 100.0)),
    Rect((80.0, 80.0), (99.0, 99.0)),
]


def _trace(n=70, rounds=3, seed=13):
    """A deterministic insert/move/delete/query script."""
    rng = random.Random(seed)
    ops = []
    pos = {}
    t = 1000.0
    for oid in range(n):
        p = (rng.uniform(0, 100), rng.uniform(0, 100))
        ops.append(("insert", oid, p, t))
        pos[oid] = p
        t += 1.0
    for r in range(rounds):
        for oid in range(n):
            if oid % 11 == r or oid not in pos:
                continue
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            ops.append(("update", oid, pos[oid], p, t))
            pos[oid] = p
            t += 1.0
        for q in QUERY_RECTS:
            ops.append(("query", q))
        victim = rng.randrange(n)
        if victim in pos:
            ops.append(("delete", victim, pos.pop(victim), t))
            t += 1.0
    return ops


def _replay(index, ops, stats, kind=None):
    """Drive any SpatialIndex through the script; returns query results."""
    from repro.engine.registry import delete_object

    results = []
    for op in ops:
        if op[0] == "insert":
            with stats.category(IOCategory.UPDATE):
                index.insert(op[1], op[2], now=op[3])
        elif op[0] == "update":
            with stats.category(IOCategory.UPDATE):
                index.update(op[1], op[2], op[3], now=op[4])
        elif op[0] == "delete":
            with stats.category(IOCategory.UPDATE):
                if kind is None:
                    index.delete(op[1], op[2], now=op[3])
                else:
                    delete_object(
                        kind, index, op[1], old_position=op[2], now=op[3]
                    )
        else:
            with stats.category(IOCategory.QUERY):
                results.append(index.range_search(op[1]))
    return results


@pytest.fixture
def restore_layout():
    prev = default_layout()
    yield
    set_default_layout(prev)


def _run_inline(kind, layout, ops):
    prev = set_default_layout(layout)
    try:
        pager = Pager()
        index = make_index(kind, pager, DOMAIN, max_entries=5)
        results = _replay(index, ops, pager.stats, kind=kind)
        ledger = pager.stats.to_dict()
        doc = json.dumps(build_document(index), sort_keys=True)
    finally:
        set_default_layout(prev)
    return results, ledger, doc


@pytest.mark.parametrize("kind", [IndexKind.RTREE, IndexKind.LAZY, IndexKind.ALPHA])
def test_inline_layout_parity(kind, restore_layout):
    ops = _trace()
    soa = _run_inline(kind, "soa", ops)
    obj = _run_inline(kind, "object", ops)
    assert soa[0] == obj[0], "query result sequences diverged"
    assert soa[1] == obj[1], "I/O ledgers diverged"
    assert soa[2] == obj[2], "snapshot documents diverged"


def _ledger_bytes(ledger) -> bytes:
    """Canonical serialized form: parity must hold byte-for-byte, not just
    under ``==`` (which would tolerate e.g. int/float drift in counters)."""
    return json.dumps(ledger, sort_keys=True, separators=(",", ":")).encode()


def _run_parallel(layout, ops, mode, **kwargs):
    prev = set_default_layout(layout)
    try:
        index = ParallelShardedIndex(
            IndexKind.LAZY, DOMAIN, 2, mode=mode, max_entries=5, **kwargs
        )
        try:
            results = _replay(index, ops, index.pager.stats)
            ledger = index.pager.stats.to_dict()
        finally:
            index.close()
    finally:
        set_default_layout(prev)
    return results, ledger


def test_thread_pool_layout_parity(restore_layout):
    ops = _trace(n=40, rounds=2)
    soa = _run_parallel("soa", ops, "thread")
    obj = _run_parallel("object", ops, "thread")
    assert soa[0] == obj[0]
    assert _ledger_bytes(soa[1]) == _ledger_bytes(obj[1])


def test_process_pool_layout_parity(restore_layout):
    """Process workers fork after set_default_layout, so each pool runs
    entirely on one layout; results and ledgers must still match -- and
    the ledgers byte-identically, across the hoisted-header command
    framing the process transport uses."""
    ops = _trace(n=40, rounds=2)
    soa = _run_parallel("soa", ops, "process")
    obj = _run_parallel("object", ops, "process")
    assert soa[0] == obj[0]
    assert _ledger_bytes(soa[1]) == _ledger_bytes(obj[1])


def test_process_pool_ledger_matches_thread_pool(restore_layout):
    """Thread workers execute raw command tuples; process workers round-trip
    them through encode_cmd/decode_frames.  Byte-identical ledgers across
    the two transports prove the hoisted header changes framing only."""
    ops = _trace(n=40, rounds=2)
    thread = _run_parallel("soa", ops, "thread")
    process = _run_parallel("soa", ops, "process")
    assert thread[0] == process[0]
    assert _ledger_bytes(thread[1]) == _ledger_bytes(process[1])


def test_process_pool_matches_inline(restore_layout):
    """The parallel SoA run against the inline object run: the full
    cross-product rail (layout x execution mode) holds."""
    ops = _trace(n=40, rounds=2)
    par = _run_parallel("soa", ops, "process")
    pager = Pager()
    prev = set_default_layout("object")
    try:
        index = make_index(IndexKind.LAZY, pager, DOMAIN, max_entries=5)
        inline_results = _replay(index, ops, pager.stats, kind=IndexKind.LAZY)
    finally:
        set_default_layout(prev)
    # Shard fan-out merges in shard-id order == inline insertion-order
    # routing, so even the result *sequences* agree, not just the sets.
    assert [sorted(r) for r in par[0]] == [sorted(r) for r in inline_results]


# -- shared-memory transport unit tests --------------------------------------


def _fork_ctx():
    if "fork" not in mp.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    return mp.get_context("fork")


def _mk_worker(**kwargs):
    return ProcessWorker(
        IndexKind.RTREE,
        0,
        DOMAIN,
        IndexOptions(max_entries=5),
        **kwargs,
    )


def _drain_ready(worker):
    ready = worker.result()
    assert ready.get("ok"), ready


def test_transport_auto_selects_shm():
    ctx = _fork_ctx()
    if not shm_available(ctx):
        pytest.skip("shared memory unavailable on this host")
    worker = _mk_worker()
    try:
        assert worker.transport == "shm"
        _drain_ready(worker)
        worker.submit(("ping", 7))
        resp = worker.result()
        assert resp["ok"] and resp["pong"] == 7
    finally:
        worker.close()


def test_transport_forced_pipe():
    worker = _mk_worker(transport="pipe")
    try:
        assert worker.transport == "pipe"
        _drain_ready(worker)
        worker.submit(("ping", 3))
        assert worker.result()["pong"] == 3
    finally:
        worker.close()


def test_transport_rejects_unknown():
    with pytest.raises(ValueError):
        _mk_worker(transport="carrier-pigeon")


def test_forced_shm_unavailable_raises():
    if "spawn" not in mp.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    ctx = mp.get_context("spawn")
    # shm_available requires fork; forcing shm under spawn must fail loudly.
    with pytest.raises(WorkerFailure):
        _mk_worker(transport="shm", ctx=ctx)


def test_oversize_payload_detours_through_pipe(monkeypatch):
    """A response larger than the mailbox rides the fallback pipe
    (FLAG_PIPE) without the caller noticing."""
    ctx = _fork_ctx()
    if not shm_available(ctx):
        pytest.skip("shared memory unavailable on this host")
    monkeypatch.setenv("REPRO_SHM_CAPACITY", "4096")
    worker = _mk_worker(transport="shm")
    try:
        assert worker.transport == "shm"
        _drain_ready(worker)
        token = "x" * 50_000  # pickles far beyond the 4 KiB mailbox
        worker.submit(("ping", token))
        resp = worker.result()
        assert resp["ok"] and resp["pong"] == token
    finally:
        worker.close()


def test_oversize_payload_beyond_socket_buffer(monkeypatch):
    """FLAG_PIPE with a payload far beyond the kernel socket buffer
    (~64-208 KiB): the doorbell must ring before the pipe write, so the
    reader drains concurrently.  With the old ordering (send_bytes before
    the semaphore release) this deadlocked both processes -- the writer
    blocked on a full pipe, the reader parked on the doorbell."""
    ctx = _fork_ctx()
    if not shm_available(ctx):
        pytest.skip("shared memory unavailable on this host")
    monkeypatch.delenv("REPRO_SHM_CAPACITY", raising=False)
    worker = _mk_worker(transport="shm")
    try:
        assert worker.transport == "shm"
        _drain_ready(worker)
        # 2 MiB: oversize at the default 1 MiB capacity in *both*
        # directions, and far past any socket buffer either way.
        token = "x" * (2 * 1024 * 1024)
        worker.submit(("ping", token))
        resp = worker.result()
        assert resp["ok"] and resp["pong"] == token
    finally:
        worker.close()


def test_orphaned_worker_exits_and_unlinks():
    """A SIGKILLed parent never reaches close(): the child's ppid check on
    the command doorbell must notice, exit, and unlink the segments."""
    import signal
    import time

    ctx = _fork_ctx()
    if not shm_available(ctx):
        pytest.skip("shared memory unavailable on this host")
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm to inspect for leaked segments")

    parent_conn, child_conn = ctx.Pipe(duplex=False)

    def middle() -> None:
        worker = _mk_worker(transport="shm")
        _drain_ready(worker)
        channel = worker._channel
        child_conn.send(
            (channel._req._shm.name, channel._resp._shm.name)
        )
        time.sleep(60)  # hold the worker open until SIGKILLed

    # Not daemonic: the middle process must itself fork the worker.
    proc = ctx.Process(target=middle)
    proc.start()
    child_conn.close()
    names = parent_conn.recv()
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=5.0)
    # The grandchild polls its ppid every _CHILD_POLL_S; give it a few
    # cycles to notice, exit the command loop, and unlink.
    deadline = time.monotonic() + 10.0
    paths = [f"/dev/shm/{name.lstrip('/')}" for name in names]
    while time.monotonic() < deadline:
        if not any(os.path.exists(p) for p in paths):
            break
        time.sleep(0.1)
    leaked = [p for p in paths if os.path.exists(p)]
    assert not leaked, f"orphaned worker left segments behind: {leaked}"


def test_shm_worker_sequences_fire_and_forget(monkeypatch):
    """Two sends without an intervening receive must not clobber each
    other (the free-slot rendezvous): the worker sees both, in order."""
    ctx = _fork_ctx()
    if not shm_available(ctx):
        pytest.skip("shared memory unavailable on this host")
    worker = _mk_worker(transport="shm")
    try:
        _drain_ready(worker)
        worker.submit(("ping", "a"))
        worker.submit(("ping", "b"))  # blocks until "a" is consumed
        assert worker.result()["pong"] == "a"
        assert worker.result()["pong"] == "b"
    finally:
        worker.close()
