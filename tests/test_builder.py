"""Unit tests for the end-to-end CT-R-tree builder pipeline."""

import pytest

from repro.core.builder import CTRTreeBuilder
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.storage.iostats import IOCategory
from repro.storage.pager import Pager
from tests.conftest import dwell_trail

DOMAIN = Rect((0, 0), (1000, 1000))


@pytest.fixture
def histories(rng):
    spots = [(100, 100), (500, 500), (850, 200)]
    trails = {}
    for oid in range(12):
        route = [spots[oid % 3], spots[(oid + 1) % 3]]
        trails[oid] = dwell_trail(rng, route, dwell_reports=30)
    return trails


class TestMine:
    def test_mine_produces_regions_and_edges(self, histories):
        builder = CTRTreeBuilder(CTParams(), query_rate=1.0)
        graph, phase1, merges, t_max = builder.mine(histories, DOMAIN)
        assert phase1 >= graph.region_count  # merging only shrinks
        assert graph.region_count >= 1
        assert t_max > 0

    def test_shared_dwell_spots_merge_across_objects(self, histories):
        builder = CTRTreeBuilder(CTParams(), query_rate=1.0)
        graph, phase1, _merges, _ = builder.mine(histories, DOMAIN)
        # 12 objects x 2 dwells = ~24 phase-1 regions over only 3 spots.
        assert phase1 >= 20
        assert graph.region_count <= phase1 / 2

    def test_empty_histories(self):
        builder = CTRTreeBuilder()
        graph, phase1, merges, t_max = builder.mine({}, DOMAIN)
        assert phase1 == 0
        assert graph.region_count == 0
        assert t_max == 0.0


class TestBuild:
    def test_build_loads_current_positions(self, histories):
        builder = CTRTreeBuilder(CTParams(), query_rate=1.0)
        pager = Pager()
        current = {oid: trail[-1][0] for oid, trail in histories.items()}
        tree, report = builder.build(pager, DOMAIN, histories, current)
        assert len(tree) == 12
        assert report.object_count == 12
        assert report.phase3_regions == tree.region_count
        assert tree.validate() == []

    def test_build_charges_build_category(self, histories):
        builder = CTRTreeBuilder()
        pager = Pager()
        current = {oid: trail[-1][0] for oid, trail in histories.items()}
        _tree, report = builder.build(pager, DOMAIN, histories, current)
        assert report.build_ios > 0
        assert pager.stats.total(IOCategory.BUILD) == report.build_ios
        assert pager.stats.total(IOCategory.UPDATE) == 0

    def test_build_without_current(self, histories):
        builder = CTRTreeBuilder()
        tree, _report = builder.build(Pager(), DOMAIN, histories)
        assert len(tree) == 0
        assert tree.region_count >= 1

    def test_build_on_empty_history_still_works(self):
        builder = CTRTreeBuilder()
        tree, report = builder.build(Pager(), DOMAIN, {}, {0: (5.0, 5.0)})
        assert len(tree) == 1
        assert tree.search_point((5.0, 5.0)) == [0]
        assert report.phase3_regions == 0

    def test_adaptive_flag_propagates(self, histories):
        builder = CTRTreeBuilder(adaptive=False)
        tree, _ = builder.build(Pager(), DOMAIN, histories)
        assert not tree.adaptive

    def test_report_counts_are_consistent(self, histories):
        builder = CTRTreeBuilder()
        _tree, report = builder.build(Pager(), DOMAIN, histories)
        assert report.phase2_regions >= report.phase3_regions
        assert report.phase1_regions >= report.phase2_regions
        assert report.traffic_merges == report.phase2_regions - report.phase3_regions
