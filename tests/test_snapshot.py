"""Tests for snapshot persistence (save/load without pickle)."""

import json

import pytest

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.rtree import AlphaTree, LazyRTree
from repro.storage.pager import Pager
from repro.storage.snapshot import (
    SnapshotError,
    load_ctrtree,
    load_lazy_rtree,
    save_ctrtree,
    save_lazy_rtree,
)
from tests.conftest import brute_force_range, random_points, random_query

DOMAIN = Rect((0, 0), (1000, 1000))


class TestLazyRTreeSnapshot:
    def build(self, rng):
        tree = LazyRTree(Pager(), max_entries=6)
        points = random_points(rng, 120)
        for oid, point in points.items():
            tree.insert(oid, point)
        for oid in list(points)[::5]:
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.update(oid, points[oid], new)
            points[oid] = new
        return tree, points

    def test_roundtrip_preserves_contents(self, rng, tmp_path):
        tree, points = self.build(rng)
        path = save_lazy_rtree(tree, tmp_path / "lazy.json")
        loaded = load_lazy_rtree(path)
        assert len(loaded) == len(points)
        assert loaded.validate() == []
        for _ in range(15):
            query = random_query(rng)
            got = sorted(oid for oid, _ in loaded.range_search(query))
            assert got == brute_force_range(points, query)

    def test_loaded_tree_is_fully_operational(self, rng, tmp_path):
        tree, points = self.build(rng)
        loaded = load_lazy_rtree(save_lazy_rtree(tree, tmp_path / "lazy.json"))
        loaded.insert(999, (50.0, 50.0))
        assert loaded.search_point((50.0, 50.0)) == [999]
        oid = next(iter(points))
        loaded.update(oid, points[oid], (1.0, 1.0))
        assert loaded.delete(oid)
        assert loaded.validate() == []

    def test_configuration_preserved(self, rng, tmp_path):
        tree = AlphaTree(Pager(), max_entries=8, alpha=0.25)
        for oid, point in random_points(rng, 30).items():
            tree.insert(oid, point)
        loaded = load_lazy_rtree(save_lazy_rtree(tree, tmp_path / "a.json"))
        assert loaded.tree.alpha == 0.25
        assert loaded.tree.max_entries == 8

    def test_load_charges_nothing(self, rng, tmp_path):
        tree, _ = self.build(rng)
        loaded = load_lazy_rtree(save_lazy_rtree(tree, tmp_path / "lazy.json"))
        assert loaded.pager.stats.total() == 0


class TestCTRTreeSnapshot:
    def build(self, rng):
        regions = [Rect((i * 200.0, 100), (i * 200.0 + 80, 180)) for i in range(4)]
        tree = CTRTree(
            Pager(), DOMAIN, regions, max_entries=6,
            ct_params=CTParams(t_list=1, t_buf_num=3, t_buf_time=100.0),
        )
        points = {}
        for oid in range(90):
            point = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            tree.insert(oid, point, now=float(oid))
            points[oid] = point
        return tree, points

    def test_roundtrip_preserves_everything(self, rng, tmp_path):
        tree, points = self.build(rng)
        assert tree.buffered_object_count() > 0  # exercise buffers too
        path = save_ctrtree(tree, tmp_path / "ct.json")
        loaded = load_ctrtree(path)
        assert len(loaded) == len(points)
        assert loaded.region_count == tree.region_count
        assert loaded.validate() == []
        for _ in range(15):
            query = random_query(rng, span=1000)
            got = sorted(oid for oid, _ in loaded.range_search(query))
            assert got == brute_force_range(points, query)

    def test_buffer_trees_restored(self, rng, tmp_path):
        tree, _ = self.build(rng)
        if not tree._buffer_trees:
            pytest.skip("no buffer converted in this build")
        loaded = load_ctrtree(save_ctrtree(tree, tmp_path / "ct.json"))
        assert set(loaded._buffer_trees) == set(tree._buffer_trees)
        for pid, btree in loaded._buffer_trees.items():
            assert len(btree) == len(tree._buffer_trees[pid])

    def test_loaded_tree_keeps_working(self, rng, tmp_path):
        tree, points = self.build(rng)
        loaded = load_ctrtree(save_ctrtree(tree, tmp_path / "ct.json"))
        oid = next(iter(points))
        loaded.update(oid, points[oid], (150.0, 140.0), now=1000.0)
        assert loaded.search_point((150.0, 140.0)) == [oid]
        loaded.insert(4242, (150.5, 140.5), now=1001.0)
        assert loaded.delete(4242, now=1002.0)
        assert loaded.validate() == []

    def test_params_and_counters_preserved(self, rng, tmp_path):
        tree, _ = self.build(rng)
        loaded = load_ctrtree(save_ctrtree(tree, tmp_path / "ct.json"))
        assert loaded.params.t_list == 1
        assert loaded.params.t_buf_num == 3
        assert loaded._next_region_id == tree._next_region_id
        assert loaded._clock == tree._clock
        assert loaded.adaptive == tree.adaptive

    def test_adaptation_works_after_reload(self, rng, tmp_path):
        tree, _ = self.build(rng)
        loaded = load_ctrtree(save_ctrtree(tree, tmp_path / "ct.json"))
        # Stream a tight new cluster (the test_adaptive fill pattern):
        # promotion must still fire post-reload.
        t = loaded._clock
        for i in range(50):
            t += 20.0
            offset = (i % 7) * 0.4
            loaded.insert(5000 + i, (900.0 + offset, 900.0 + offset / 2.0), now=t)
        assert loaded.adaptation.promotions >= 1
        assert loaded.validate() == []


class TestFormatValidation:
    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(SnapshotError):
            load_ctrtree(path)

    def test_rejects_wrong_structure(self, rng, tmp_path):
        tree = LazyRTree(Pager())
        tree.insert(1, (1.0, 1.0))
        path = save_lazy_rtree(tree, tmp_path / "lazy.json")
        with pytest.raises(SnapshotError):
            load_ctrtree(path)

    def test_rejects_wrong_version(self, rng, tmp_path):
        tree = LazyRTree(Pager())
        tree.insert(1, (1.0, 1.0))
        path = save_lazy_rtree(tree, tmp_path / "lazy.json")
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError):
            load_lazy_rtree(path)

    def test_snapshot_is_pure_data(self, rng, tmp_path):
        tree = LazyRTree(Pager())
        tree.insert(1, (1.0, 1.0))
        path = save_lazy_rtree(tree, tmp_path / "lazy.json")
        text = path.read_text()
        json.loads(text)  # valid JSON
        assert "__" not in text  # no dunder / code smuggling
