"""Tests for atomic checkpoints: publish, retention, fallback, cleanup."""

import json

import pytest

from repro.core.geometry import Rect
from repro.durability import (
    CheckpointInfo,
    FaultInjector,
    InjectedCrash,
    clean_stale_tmp,
    list_checkpoints,
    load_latest_checkpoint,
    next_ordinal,
    read_checkpoint,
    write_checkpoint,
)
from repro.engine import IndexKind, ShardedIndex, make_index
from repro.storage.pager import Pager
from repro.storage.snapshot import SnapshotError
from tests.conftest import brute_force_range, random_points

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def built_index(rng, n=12, kind=IndexKind.LAZY):
    if kind == "sharded":
        index = ShardedIndex(IndexKind.LAZY, DOMAIN, 4)
    else:
        index = make_index(kind, Pager(), DOMAIN)
    positions = random_points(rng, n)
    for oid, point in positions.items():
        index.insert(oid, point, now=0.0)
    return index, positions


class TestWriteAndRead:
    def test_round_trip_preserves_queries(self, rng, tmp_path):
        index, positions = built_index(rng)
        info = write_checkpoint(index, tmp_path, covered_seq=17)
        assert (info.ordinal, info.covered_seq, info.kind) == (1, 17, "lazy")
        loaded, read_info = read_checkpoint(info.path)
        assert read_info == info
        rect = Rect((10.0, 10.0), (80.0, 80.0))
        got = sorted(oid for oid, _ in loaded.range_search(rect))
        assert got == brute_force_range(positions, rect)

    def test_sharded_round_trip(self, rng, tmp_path):
        index, positions = built_index(rng, kind="sharded")
        info = write_checkpoint(index, tmp_path, covered_seq=3)
        assert info.kind == "sharded"
        loaded, _ = load_latest_checkpoint(tmp_path)
        rect = Rect((0.0, 0.0), (60.0, 60.0))
        got = sorted(oid for oid, _ in loaded.range_search(rect))
        assert got == brute_force_range(positions, rect)

    def test_ordinals_increment(self, rng, tmp_path):
        index, _ = built_index(rng)
        assert next_ordinal(tmp_path) == 1
        write_checkpoint(index, tmp_path, covered_seq=1, retain=10)
        write_checkpoint(index, tmp_path, covered_seq=2, retain=10)
        assert next_ordinal(tmp_path) == 3
        assert [n for n, _ in list_checkpoints(tmp_path)] == [1, 2]

    def test_no_tmp_leftover_after_publish(self, rng, tmp_path):
        index, _ = built_index(rng)
        write_checkpoint(index, tmp_path, covered_seq=1)
        assert not any(p.name.endswith(".tmp") for p in tmp_path.iterdir())


class TestRetention:
    def test_keeps_newest_plus_fallbacks(self, rng, tmp_path):
        index, _ = built_index(rng)
        for seq in range(1, 7):
            write_checkpoint(index, tmp_path, covered_seq=seq, retain=2)
        # Newest (6) plus two fallbacks (4, 5).
        assert [n for n, _ in list_checkpoints(tmp_path)] == [4, 5, 6]

    def test_retain_zero_keeps_only_newest(self, rng, tmp_path):
        index, _ = built_index(rng)
        for seq in range(1, 4):
            write_checkpoint(index, tmp_path, covered_seq=seq, retain=0)
        assert [n for n, _ in list_checkpoints(tmp_path)] == [3]


class TestDamageFallback:
    def test_crash_before_replace_preserves_previous(self, rng, tmp_path):
        index, _ = built_index(rng)
        good = write_checkpoint(index, tmp_path, covered_seq=5)
        fault = FaultInjector(crash_on_checkpoint_replace=True)
        with pytest.raises(InjectedCrash):
            write_checkpoint(index, tmp_path, covered_seq=9, fault=fault)
        assert any(p.name.endswith(".tmp") for p in tmp_path.iterdir())
        _, info = load_latest_checkpoint(tmp_path)
        assert info.ordinal == good.ordinal
        assert info.covered_seq == 5
        assert clean_stale_tmp(tmp_path) == 1

    def test_damaged_newest_falls_back_to_older(self, rng, tmp_path):
        index, _ = built_index(rng)
        write_checkpoint(index, tmp_path, covered_seq=5, retain=5)
        bad = write_checkpoint(index, tmp_path, covered_seq=9, retain=5)
        # Truncate the newest file mid-JSON (a pre-atomic-writer tear).
        data = bad.path.read_bytes()
        bad.path.write_bytes(data[: len(data) // 2])
        loaded, info = load_latest_checkpoint(tmp_path)
        assert info.ordinal == 1
        assert info.covered_seq == 5

    def test_read_rejects_garbage(self, rng, tmp_path):
        path = tmp_path / "checkpoint-00000001.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(SnapshotError):
            read_checkpoint(path)
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        with pytest.raises(SnapshotError):
            read_checkpoint(path)
        path.write_text(
            json.dumps({"version": 99, "ordinal": 1, "covered_seq": 0}),
            encoding="utf-8",
        )
        with pytest.raises(SnapshotError):
            read_checkpoint(path)

    def test_empty_directory_has_no_checkpoint(self, tmp_path):
        assert load_latest_checkpoint(tmp_path) is None
        assert list_checkpoints(tmp_path / "missing") == []

    def test_info_is_metadata_only(self):
        fields = set(CheckpointInfo.__dataclass_fields__)
        assert fields == {"path", "ordinal", "covered_seq", "kind", "app_state"}
