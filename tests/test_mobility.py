"""Unit tests for the dwell/travel mobility model."""

import random

import pytest

from repro.citysim.city import City
from repro.citysim.mobility import MobilityModel, ObjectState


@pytest.fixture(scope="module")
def city():
    return City.generate(seed=2, n_buildings=20)


@pytest.fixture
def model(city):
    return MobilityModel(city, random.Random(3), dwell_mean=600.0)


class TestSpawn:
    def test_spawn_inside_building(self, model):
        obj = model.spawn(0, now=0.0)
        assert obj.state == ObjectState.INDOORS
        assert obj.building is not None
        assert obj.building.rect.contains_point(obj.position)
        assert 0 <= obj.floor < obj.building.floors
        assert obj.dwell_until > 0

    def test_spawn_requires_buildings(self):
        empty = City.generate(seed=3, n_buildings=0)
        with pytest.raises(ValueError):
            MobilityModel(empty, random.Random(0))


class TestDwelling:
    def test_indoor_jitter_stays_inside(self, model):
        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 1e9
        rect = obj.building.rect
        for step in range(200):
            model.step(obj, now=step * 20.0, dt=20.0)
            assert rect.contains_point(obj.position)

    def test_jitter_is_small_per_step(self, model):
        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 1e9
        previous = obj.position
        import math

        for step in range(100):
            model.step(obj, now=step * 20.0, dt=20.0)
            assert math.dist(previous, obj.position) < 20.0
            previous = obj.position

    def test_dwell_expiry_starts_trip(self, model):
        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 10.0
        model.step(obj, now=20.0, dt=20.0)
        assert obj.state == ObjectState.TRAVELING
        assert obj.waypoints

    def test_ground_bias_pushes_to_floor_zero(self, city):
        model = MobilityModel(city, random.Random(4), floor_change_prob=1.0)
        model.ground_bias = 1
        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 1e9
        for step in range(5):
            model.step(obj, now=step * 20.0, dt=20.0)
        assert obj.floor == 0

    def test_negative_bias_keeps_off_ground(self, city):
        model = MobilityModel(city, random.Random(4), floor_change_prob=1.0)
        model.ground_bias = -1
        obj = model.spawn(0, now=0.0)
        obj.building = max(city.buildings, key=lambda b: b.floors)
        obj.dwell_until = 1e9
        for step in range(5):
            model.step(obj, now=step * 20.0, dt=20.0)
        assert obj.floor > 0


class TestTravel:
    def test_travel_reaches_destination_and_dwells(self, model):
        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 0.0
        t = 0.0
        for _ in range(2000):
            t += 20.0
            model.step(obj, now=t, dt=20.0)
            if obj.state != ObjectState.TRAVELING:
                break
        assert obj.state in (ObjectState.INDOORS, ObjectState.IN_PARK)
        if obj.state == ObjectState.INDOORS:
            assert obj.building.rect.contains_point(obj.position)

    def test_travel_speed_bounded(self, model):
        import math

        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 0.0
        model.step(obj, now=20.0, dt=20.0)  # start trip
        previous = obj.position
        while obj.state == ObjectState.TRAVELING:
            model.step(obj, now=40.0, dt=20.0)
            dist = math.dist(previous, obj.position)
            assert dist <= model.speed_range[1] * 20.0 + 1e-6
            previous = obj.position

    def test_rejects_negative_dt(self, model):
        obj = model.spawn(0, now=0.0)
        with pytest.raises(ValueError):
            model.step(obj, now=0.0, dt=-1.0)

    def test_park_trips_happen(self, city):
        model = MobilityModel(city, random.Random(5), park_prob=1.0)
        obj = model.spawn(0, now=0.0)
        obj.dwell_until = 0.0
        t = 0.0
        for _ in range(500):
            t += 20.0
            model.step(obj, now=t, dt=20.0)
            if obj.state == ObjectState.IN_PARK:
                break
        assert obj.state == ObjectState.IN_PARK
        assert obj.at_ground_level
