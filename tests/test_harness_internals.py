"""Tests for harness internals not covered by the figure smoke tests."""

import pytest

from repro.experiments.harness import (
    ExperimentResult,
    _resolve_query_rate,
    build_workload,
    run_index_on,
)
from repro.workload.driver import IndexKind


class TestResolveQueryRate:
    def test_explicit_rate_wins(self):
        assert _resolve_query_rate(100.0, query_rate=2.5, query_count=None) == 2.5

    def test_count_converts_to_rate(self):
        assert _resolve_query_rate(200.0, None, query_count=50) == pytest.approx(0.25)

    def test_both_rejected(self):
        with pytest.raises(ValueError):
            _resolve_query_rate(100.0, query_rate=1.0, query_count=5)

    def test_zero_duration_guard(self):
        assert _resolve_query_rate(0.0, None, query_count=3) == 3.0

    def test_no_spec_defaults_to_one_query(self):
        assert _resolve_query_rate(100.0, None, None) == pytest.approx(0.01)


class TestExperimentResultEdge:
    def test_empty_result_renders(self):
        result = ExperimentResult(title="Empty", columns=["a", "b"])
        text = result.to_table()
        assert "Empty" in text
        assert "a" in text and "b" in text

    def test_notes_rendered(self):
        result = ExperimentResult(title="T", columns=["a"], notes=["careful"])
        result.add(a=1)
        assert "note: careful" in result.to_table()

    def test_missing_cell_blank(self):
        result = ExperimentResult(title="T", columns=["a", "b"])
        result.add(a=1)  # b absent
        assert result.to_table().count("|") >= 2

    def test_str_is_table(self):
        result = ExperimentResult(title="T", columns=["a"])
        assert str(result) == result.to_table()


class TestRunIndexOnOptions:
    def test_ct_params_propagate(self):
        from repro.core.params import CTParams

        bundle = build_workload("smoke", 0)
        run = run_index_on(
            IndexKind.CT,
            bundle,
            skip=20,
            query_count=2,
            ct_params=CTParams(t_dist=60.0),
        )
        assert run.index.params.t_dist == 60.0  # type: ignore[attr-defined]

    def test_adaptive_flag_propagates(self):
        bundle = build_workload("smoke", 0)
        run = run_index_on(
            IndexKind.CT, bundle, skip=20, query_count=2, adaptive=False
        )
        assert not run.index.adaptive  # type: ignore[attr-defined]

    def test_custom_builder_query_rate(self):
        """A tiny anticipated query rate lets Equation 6 merge everything."""
        bundle = build_workload("smoke", 0)
        aggressive = run_index_on(
            IndexKind.CT, bundle, skip=20, query_count=2, builder_query_rate=1e-9
        )
        default = run_index_on(IndexKind.CT, bundle, skip=20, query_count=2)
        assert (
            aggressive.index.region_count < default.index.region_count  # type: ignore[attr-defined]
        )

    def test_lazy_hits_surface_on_indexrun(self):
        bundle = build_workload("smoke", 0)
        run = run_index_on(IndexKind.LAZY, bundle, skip=10, query_count=2)
        assert run.lazy_hits is not None
        rtree_run = run_index_on(IndexKind.RTREE, bundle, skip=20, query_count=2)
        assert rtree_run.lazy_hits is None
