"""Unit tests for points and rectangles."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import Rect, square_at


def rect(x0, y0, x1, y1):
    return Rect((x0, y0), (x1, y1))


class TestConstruction:
    def test_basic_bounds(self):
        r = rect(0, 1, 2, 3)
        assert r.lo == (0.0, 1.0)
        assert r.hi == (2.0, 3.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            rect(2, 0, 1, 1)

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1, 1, 1))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            Rect((), ())

    def test_degenerate_rect_is_allowed(self):
        r = Rect.from_point((5, 5))
        assert r.area == 0.0
        assert r.contains_point((5, 5))

    def test_from_points_bounds_all(self):
        r = Rect.from_points([(0, 5), (3, 1), (2, 2)])
        assert r == rect(0, 1, 3, 5)

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_union_all(self):
        r = Rect.union_all([rect(0, 0, 1, 1), rect(2, 2, 3, 3)])
        assert r == rect(0, 0, 3, 3)

    def test_union_all_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect.union_all([])

    def test_three_dimensional(self):
        r = Rect((0, 0, 0), (1, 2, 3))
        assert r.dim == 3
        assert r.area == 6.0


class TestMeasures:
    def test_area(self):
        assert rect(0, 0, 2, 3).area == 6.0

    def test_margin(self):
        assert rect(0, 0, 2, 3).margin == 5.0

    def test_diagonal(self):
        assert rect(0, 0, 3, 4).diagonal == 5.0

    def test_center(self):
        assert rect(0, 0, 2, 4).center == (1.0, 2.0)

    def test_sides(self):
        assert rect(1, 1, 4, 3).sides == (3.0, 2.0)


class TestPredicates:
    def test_contains_point_interior(self):
        assert rect(0, 0, 2, 2).contains_point((1, 1))

    def test_contains_point_boundary(self):
        assert rect(0, 0, 2, 2).contains_point((2, 2))
        assert rect(0, 0, 2, 2).contains_point((0, 1))

    def test_contains_point_outside(self):
        assert not rect(0, 0, 2, 2).contains_point((2.01, 1))

    def test_contains_rect(self):
        assert rect(0, 0, 4, 4).contains_rect(rect(1, 1, 2, 2))
        assert not rect(0, 0, 4, 4).contains_rect(rect(1, 1, 5, 2))
        assert rect(0, 0, 4, 4).contains_rect(rect(0, 0, 4, 4))

    def test_intersects_overlap(self):
        assert rect(0, 0, 2, 2).intersects(rect(1, 1, 3, 3))

    def test_intersects_touching_edge_counts(self):
        assert rect(0, 0, 1, 1).intersects(rect(1, 0, 2, 1))

    def test_intersects_disjoint(self):
        assert not rect(0, 0, 1, 1).intersects(rect(2, 2, 3, 3))


class TestCombination:
    def test_intersection(self):
        overlap = rect(0, 0, 2, 2).intersection(rect(1, 1, 3, 3))
        assert overlap == rect(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert rect(0, 0, 1, 1).intersection(rect(2, 2, 3, 3)) is None

    def test_overlap_area(self):
        assert rect(0, 0, 2, 2).overlap_area(rect(1, 1, 3, 3)) == 1.0
        assert rect(0, 0, 1, 1).overlap_area(rect(5, 5, 6, 6)) == 0.0

    def test_union(self):
        assert rect(0, 0, 1, 1).union(rect(2, 2, 3, 3)) == rect(0, 0, 3, 3)

    def test_union_point_inside_returns_self(self):
        r = rect(0, 0, 2, 2)
        assert r.union_point((1, 1)) is r

    def test_union_point_outside_expands(self):
        assert rect(0, 0, 1, 1).union_point((3, 0.5)) == rect(0, 0, 3, 1)

    def test_enlargement(self):
        assert rect(0, 0, 1, 1).enlargement(rect(0, 0, 2, 1)) == 1.0
        assert rect(0, 0, 2, 2).enlargement(rect(1, 1, 2, 2)) == 0.0

    def test_enlargement_point(self):
        assert rect(0, 0, 1, 1).enlargement_point((2, 1)) == 1.0

    def test_inflated_grows_each_side(self):
        r = rect(0, 0, 10, 10).inflated(0.1)
        assert r.sides == (11.0, 11.0)
        assert r.center == (5.0, 5.0)

    def test_inflated_zero_is_identity(self):
        r = rect(1, 2, 3, 4)
        assert r.inflated(0.0) == r

    def test_inflated_rejects_negative(self):
        with pytest.raises(ValueError):
            rect(0, 0, 1, 1).inflated(-0.5)

    def test_translated(self):
        assert rect(0, 0, 1, 1).translated((5, -1)) == rect(5, -1, 6, 0)


class TestDunder:
    def test_equality_and_hash(self):
        a, b = rect(0, 0, 1, 1), rect(0, 0, 1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != rect(0, 0, 1, 2)

    def test_equality_other_type(self):
        assert rect(0, 0, 1, 1) != "rect"

    def test_repr_roundtrips_mentally(self):
        assert "Rect" in repr(rect(0, 0, 1, 1))


class TestSquareAt:
    def test_centered_square(self):
        s = square_at((5, 5), 2.0)
        assert s == rect(4, 4, 6, 6)

    def test_zero_side(self):
        assert square_at((1, 1), 0.0).area == 0.0

    def test_rejects_negative_side(self):
        with pytest.raises(ValueError):
            square_at((0, 0), -1.0)


coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x0, x1 = sorted((draw(coords), draw(coords)))
    y0, y1 = sorted((draw(coords), draw(coords)))
    return Rect((x0, y0), (x1, y1))


class TestProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), rects())
    def test_union_is_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rect(overlap)
            assert b.contains_rect(overlap)

    @given(rects(), rects())
    def test_intersects_iff_intersection_exists(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(rects(), rects())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= 0.0

    @given(rects())
    def test_diagonal_vs_sides(self, r):
        assert r.diagonal <= sum(r.sides) + 1e-6
        assert r.diagonal >= max(r.sides) - 1e-6

    @given(rects(), st.floats(min_value=0, max_value=3))
    def test_inflated_contains_original(self, r, alpha):
        assert r.inflated(alpha).contains_rect(r)

    @given(rects(), coords, coords)
    def test_union_point_contains_point(self, r, x, y):
        assert r.union_point((x, y)).contains_point((x, y))
