"""Unit tests for the lazy-R-tree (hash-indexed updates, Section 2.1)."""

import pytest

from repro.core.geometry import Rect
from repro.rtree import LazyRTree
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, random_points, random_query


@pytest.fixture
def tree(pager):
    return LazyRTree(pager, max_entries=8)


class TestBasics:
    def test_insert_sets_hash_pointer(self, tree):
        pid = tree.insert(1, (5, 5))
        assert tree.hash.peek(1) == pid

    def test_delete_via_hash(self, tree):
        tree.insert(1, (5, 5))
        assert tree.delete(1)
        assert tree.hash.peek(1) is None
        assert tree.search_point((5, 5)) == []

    def test_delete_missing(self, tree):
        assert not tree.delete(42)

    def test_update_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree.update(1, (0, 0), (1, 1))

    def test_len_tracks_tree(self, tree, rng):
        for oid, point in random_points(rng, 30).items():
            tree.insert(oid, point)
        assert len(tree) == 30


class TestLazyPath:
    def test_small_move_is_lazy(self, tree):
        for i in range(8):
            tree.insert(i, (float(i), 0.0))
        before = tree.relocations
        tree.update(0, (0.0, 0.0), (0.5, 0.0))  # stays in the only leaf
        assert tree.lazy_hits == 1
        assert tree.relocations == before
        assert tree.search_point((0.5, 0.0)) == [0]

    def test_lazy_update_costs_three_ios(self, tree, pager):
        for i in range(8):
            tree.insert(i, (float(i), 0.0))
        reads, writes = pager.stats.reads(), pager.stats.writes()
        tree.update(0, (0.0, 0.0), (0.5, 0.0))
        # 1 hash-bucket read + 1 leaf read + 1 leaf write (Section 2.1).
        assert pager.stats.reads() - reads == 2
        assert pager.stats.writes() - writes == 1

    def test_far_move_relocates(self, tree, rng):
        points = random_points(rng, 60)
        for oid, point in points.items():
            tree.insert(oid, point)
        tree.update(0, points[0], (999.0, 999.0))
        assert tree.relocations >= 1
        assert tree.search_point((999.0, 999.0)) == [0]
        assert tree.hash.peek(0) is not None

    def test_lazy_path_leaves_structure_untouched(self, tree, rng):
        points = random_points(rng, 60)
        for oid, point in points.items():
            tree.insert(oid, point)
        nodes_before = tree.tree.node_count()
        for oid, point in points.items():
            tree.update(oid, point, (point[0] + 0.01, point[1] + 0.01))
        assert tree.tree.node_count() == nodes_before


class TestHashConsistency:
    def test_pointers_exact_after_splits(self, tree, rng):
        points = random_points(rng, 200)
        for oid, point in points.items():
            tree.insert(oid, point)
        assert tree.validate() == []

    def test_pointers_exact_after_heavy_updates(self, tree, rng):
        points = random_points(rng, 100)
        for oid, point in points.items():
            tree.insert(oid, point)
        for _ in range(800):
            oid = rng.randrange(100)
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
        for _ in range(20):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)

    def test_pointers_exact_after_deletes(self, tree, rng):
        points = random_points(rng, 120)
        for oid, point in points.items():
            tree.insert(oid, point)
        for oid in list(points)[::2]:
            assert tree.delete(oid)
            del points[oid]
        assert tree.validate() == []

    def test_shared_hash_index_across_trees(self, pager):
        from repro.hashindex import HashIndex

        shared = HashIndex(pager, entries_per_bucket=8)
        a = LazyRTree(pager, hash_index=shared)
        a.insert(1, (0, 0))
        assert shared.peek(1) is not None


class TestMBRBehaviour:
    def test_no_shrink_on_delete(self, tree, rng):
        points = random_points(rng, 100)
        for oid, point in points.items():
            tree.insert(oid, point)
        mbrs_before = {
            leaf.pid: leaf.mbr for leaf in tree.tree.iter_leaves()
        }
        # Delete a few objects: surviving leaves must not tighten.
        for oid in list(points)[:20]:
            tree.delete(oid)
        for leaf in tree.tree.iter_leaves():
            if leaf.pid in mbrs_before and leaf.entries:
                assert mbrs_before[leaf.pid].contains_rect(leaf.mbr)

    def test_queries_correct_with_loose_mbrs(self, rng):
        pager = Pager()
        tree = LazyRTree(pager, max_entries=6)
        points = random_points(rng, 150)
        for oid, point in points.items():
            tree.insert(oid, point)
        for oid in list(points)[::3]:
            tree.delete(oid)
            del points[oid]
        for _ in range(25):
            query = random_query(rng)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute_force_range(points, query)
