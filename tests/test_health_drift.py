"""Drift monitor: windows, hysteresis, confirmation, reset semantics."""

from __future__ import annotations

import pytest

from repro.health import DriftMonitor, DriftThresholds, HealthState


def _feed(monitor: DriftMonitor, n: int, *, lazy_frac: float, ios: int = 2):
    """Feed ``n`` updates with the given lazy fraction; return transitions."""
    transitions = []
    lazy_every = 1.0 / lazy_frac if lazy_frac > 0 else float("inf")
    credit = 0.0
    for _ in range(n):
        credit += 1.0
        lazy = lazy_frac > 0 and credit >= lazy_every
        if lazy:
            credit -= lazy_every
        transition = monitor.note_update(ios, lazy)
        if transition is not None:
            transitions.append(transition)
    return transitions


def test_window_closes_every_n_updates():
    monitor = DriftMonitor(window=10)
    _feed(monitor, 35, lazy_frac=1.0)
    assert len(monitor.windows) == 3
    assert all(w.n_updates == 10 for w in monitor.windows)
    assert monitor.windows[0].change_tolerance == 1.0


def test_healthy_workload_stays_healthy():
    monitor = DriftMonitor(window=20)
    transitions = _feed(monitor, 400, lazy_frac=0.9)
    assert transitions == []
    assert monitor.state == HealthState.HEALTHY


def test_degrades_then_goes_critical():
    monitor = DriftMonitor(window=20)
    _feed(monitor, 100, lazy_frac=0.9)
    assert monitor.state == HealthState.HEALTHY
    transitions = _feed(monitor, 300, lazy_frac=0.3)
    assert (HealthState.HEALTHY, HealthState.DEGRADED) in transitions
    assert monitor.state == HealthState.DEGRADED
    transitions = _feed(monitor, 400, lazy_frac=0.0)
    assert (HealthState.DEGRADED, HealthState.CRITICAL) in transitions
    assert monitor.state == HealthState.CRITICAL


def test_confirm_windows_filters_single_bad_window():
    monitor = DriftMonitor(
        window=10, thresholds=DriftThresholds(confirm_windows=2), ewma_alpha=1.0
    )
    _feed(monitor, 50, lazy_frac=1.0)
    # One bad window is a candidate, not a transition.
    transitions = _feed(monitor, 10, lazy_frac=0.0)
    assert transitions == []
    assert monitor.state == HealthState.HEALTHY
    # The second consecutive bad window commits it.
    transitions = _feed(monitor, 10, lazy_frac=0.0)
    assert monitor.state != HealthState.HEALTHY
    assert transitions


def test_exit_band_hysteresis():
    thresholds = DriftThresholds(
        degraded_enter=0.5, degraded_exit=0.65, confirm_windows=1
    )
    monitor = DriftMonitor(window=10, thresholds=thresholds, ewma_alpha=1.0)
    _feed(monitor, 20, lazy_frac=0.4)
    assert monitor.state == HealthState.DEGRADED
    # Between enter and exit: stays DEGRADED (no flapping at the boundary).
    _feed(monitor, 30, lazy_frac=0.6)
    assert monitor.state == HealthState.DEGRADED
    # Above the exit band: recovers.
    _feed(monitor, 30, lazy_frac=0.9)
    assert monitor.state == HealthState.HEALTHY


def test_io_blowup_degrades_even_when_lazy():
    monitor = DriftMonitor(
        window=10,
        thresholds=DriftThresholds(io_degraded_factor=1.5, confirm_windows=1),
        ewma_alpha=1.0,
    )
    _feed(monitor, 20, lazy_frac=1.0, ios=2)
    assert monitor.state == HealthState.HEALTHY
    _feed(monitor, 30, lazy_frac=1.0, ios=20)
    assert monitor.state in (HealthState.DEGRADED, HealthState.CRITICAL)


def test_consume_critical_transition_is_one_shot():
    monitor = DriftMonitor(
        window=10, thresholds=DriftThresholds(confirm_windows=1), ewma_alpha=1.0
    )
    assert monitor.consume_critical_transition() is False
    _feed(monitor, 10, lazy_frac=1.0)
    _feed(monitor, 40, lazy_frac=0.0)
    assert monitor.state == HealthState.CRITICAL
    assert monitor.consume_critical_transition() is True
    assert monitor.consume_critical_transition() is False


def test_reset_restores_healthy_and_keeps_history():
    monitor = DriftMonitor(
        window=10, thresholds=DriftThresholds(confirm_windows=1), ewma_alpha=1.0
    )
    _feed(monitor, 60, lazy_frac=0.0)
    assert monitor.state != HealthState.HEALTHY
    windows_before = len(monitor.windows)
    monitor.reset()
    assert monitor.state == HealthState.HEALTHY
    assert monitor.ewma_tolerance is None and monitor.ewma_io is None
    assert len(monitor.windows) == windows_before
    assert monitor.transitions[-1][2] == HealthState.HEALTHY
    assert monitor.consume_critical_transition() is False


def test_residency_probe_sampled_per_window():
    calls = []

    def probe():
        calls.append(1)
        return 0.75

    monitor = DriftMonitor(window=10, residency_probe=probe)
    _feed(monitor, 30, lazy_frac=1.0)
    assert len(calls) == 3
    assert monitor.windows[0].residency == 0.75


def test_threshold_validation():
    with pytest.raises(ValueError):
        DriftThresholds(degraded_enter=0.7, degraded_exit=0.5)
    with pytest.raises(ValueError):
        DriftThresholds(critical_enter=0.4, critical_exit=0.2)
    with pytest.raises(ValueError):
        DriftThresholds(confirm_windows=0)
    with pytest.raises(ValueError):
        DriftMonitor(window=0)


def test_to_dict_round_trips_counters():
    monitor = DriftMonitor(window=5)
    _feed(monitor, 12, lazy_frac=1.0)
    d = monitor.to_dict()
    assert d["windows_closed"] == 2
    assert d["state"] == HealthState.HEALTHY
    assert monitor.windows[0].to_dict()["n_updates"] == 5
