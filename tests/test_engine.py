"""Tests for the execution engine: protocol, registry, batching, sharding."""

import pytest

from repro.btree.bptree import BPlusTree
from repro.btree.lazy import LazyBPlusTree
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.engine import (
    FlushPolicy,
    IndexKind,
    IndexOptions,
    IndexSpec,
    LinearIndex,
    RunResult,
    ShardedIndex,
    SpacePartition,
    SpatialIndex,
    UpdateBuffer,
    available_kinds,
    conforms_to_spatial,
    delete_object,
    get_spec,
    index_label,
    make_index,
    merge_results,
    register_index,
    unregister_index,
)
from repro.rtree import AlphaTree, LazyRTree, RTree
from repro.storage.iostats import IOCounter
from repro.storage.pager import Pager
from tests.conftest import brute_force_range, dwell_trail, random_points

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def small_histories(rng, n_objects=8):
    spots = [(20.0, 20.0), (70.0, 60.0), (40.0, 85.0)]
    return {
        oid: dwell_trail(rng, spots, dwell_reports=12) for oid in range(n_objects)
    }


class TestProtocolConformance:
    def test_spatial_indexes_satisfy_protocol(self, rng):
        indexes = [
            RTree(Pager()),
            LazyRTree(Pager()),
            AlphaTree(Pager()),
            ShardedIndex(IndexKind.LAZY, DOMAIN, 2),
        ]
        for index in indexes:
            assert isinstance(index, SpatialIndex), type(index).__name__
            assert conforms_to_spatial(index)

    def test_ctrtree_satisfies_protocol(self, rng):
        tree = make_index(
            IndexKind.CT, Pager(), DOMAIN, histories=small_histories(rng)
        )
        assert isinstance(tree, CTRTree)
        assert isinstance(tree, SpatialIndex)

    def test_bptrees_are_linear_not_spatial(self):
        for tree in (BPlusTree(Pager()), LazyBPlusTree(Pager())):
            assert isinstance(tree, LinearIndex)

    def test_non_indexes_rejected(self):
        assert not conforms_to_spatial(object())
        assert not isinstance(42, SpatialIndex)


class TestRegistry:
    def test_all_four_kinds_registered(self):
        for kind in IndexKind.ALL:
            spec = get_spec(kind)
            assert spec.kind == kind
            assert index_label(kind) == IndexKind.LABELS[kind]
        assert set(IndexKind.ALL) <= set(available_kinds())

    def test_unknown_kind_error_mentions_choices(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            make_index("btree", Pager(), DOMAIN)
        with pytest.raises(ValueError, match="unknown index kind"):
            get_spec("nope")

    def test_ct_requires_histories(self):
        with pytest.raises(ValueError, match="history profile"):
            make_index(IndexKind.CT, Pager(), DOMAIN)

    def test_register_and_unregister_custom_kind(self):
        spec = IndexSpec(
            kind="toy",
            label="toy-index",
            factory=lambda store, domain, options: LazyRTree(
                store, max_entries=options.max_entries
            ),
        )
        register_index(spec)
        try:
            assert "toy" in available_kinds()
            assert index_label("toy") == "toy-index"
            index = get_spec("toy").factory(
                Pager(), DOMAIN, IndexOptions(max_entries=8)
            )
            assert isinstance(index, LazyRTree)
            with pytest.raises(ValueError, match="already registered"):
                register_index(spec)
        finally:
            unregister_index("toy")
        assert "toy" not in available_kinds()

    def test_delete_adapters(self, rng):
        points = random_points(rng, 30)
        # pointer-based delete (lazy/alpha): no old position needed
        lazy = make_index(IndexKind.LAZY, Pager(), DOMAIN)
        for oid, p in points.items():
            lazy.insert(oid, p)
        assert delete_object(IndexKind.LAZY, lazy, 3)
        assert len(lazy) == len(points) - 1
        # spatial delete (rtree): old position required
        rtree = make_index(IndexKind.RTREE, Pager(), DOMAIN)
        for oid, p in points.items():
            rtree.insert(oid, p)
        with pytest.raises(ValueError, match="old position"):
            delete_object(IndexKind.RTREE, rtree, 3)
        assert delete_object(IndexKind.RTREE, rtree, 3, old_position=points[3])
        # timed delete (ct): accepts a clock
        histories = small_histories(rng)
        ct = make_index(IndexKind.CT, Pager(), DOMAIN, histories=histories)
        oid, trail = next(iter(histories.items()))
        ct.insert(oid, trail[-1][0], now=trail[-1][1])
        assert delete_object(IndexKind.CT, ct, oid, now=trail[-1][1] + 1.0)


class TestFlushPolicy:
    def test_needs_at_least_one_trigger(self):
        with pytest.raises(ValueError):
            FlushPolicy(batch_size=0, horizon=None)
        with pytest.raises(ValueError):
            FlushPolicy(batch_size=-1)
        with pytest.raises(ValueError):
            FlushPolicy(horizon=-1.0)

    def test_size_trigger(self):
        policy = FlushPolicy(batch_size=3)
        assert not policy.should_flush(2, None, None)
        assert policy.should_flush(3, None, None)

    def test_horizon_trigger(self):
        policy = FlushPolicy(batch_size=0, horizon=10.0)
        assert not policy.should_flush(5, oldest_t=100.0, now=105.0)
        assert policy.should_flush(5, oldest_t=100.0, now=110.0)

    def test_empty_buffer_never_flushes(self):
        assert not FlushPolicy(batch_size=1).should_flush(0, None, None)


class _RecordingIndex:
    """A SpatialIndex double that records every applied operation."""

    def __init__(self):
        self.pager = Pager()
        self.ops = []
        self.positions = {}

    def __len__(self):
        return len(self.positions)

    def insert(self, oid, point, now=None):
        self.ops.append(("insert", oid, tuple(point), now))
        self.positions[oid] = tuple(point)
        return 0

    def update(self, oid, old, new, now=None):
        self.ops.append(("update", oid, tuple(new), now))
        self.positions[oid] = tuple(new)
        return 0

    def range_search(self, rect):
        return [
            (oid, p) for oid, p in self.positions.items() if rect.contains_point(p)
        ]


class TestUpdateBuffer:
    def test_n_updates_to_one_object_apply_exactly_once(self):
        buffer = UpdateBuffer(FlushPolicy(batch_size=100))
        index = _RecordingIndex()
        index.insert(7, (1.0, 1.0))
        index.ops.clear()
        for i in range(10):
            buffer.put(7, (1.0, 1.0), (1.0 + i, 2.0), t=float(i))
        assert len(buffer) == 1
        assert buffer.stats.buffered == 10
        assert buffer.stats.coalesced == 9
        applied = buffer.flush(index)
        assert applied == 1
        assert index.ops == [("update", 7, (10.0, 2.0), 9.0)]
        assert buffer.pending_for(7) is None

    def test_old_point_frozen_across_coalescing(self):
        buffer = UpdateBuffer(FlushPolicy(batch_size=100))
        buffer.put(1, (0.0, 0.0), (5.0, 5.0), t=1.0)
        buffer.put(1, (5.0, 5.0), (9.0, 9.0), t=2.0)
        pending = buffer.pending_for(1)
        # the index still holds (0,0); the intermediate (5,5) was never applied
        assert pending.old_point == (0.0, 0.0)
        assert pending.point == (9.0, 9.0)
        assert pending.absorbed == 1

    def test_flush_applies_in_timestamp_order(self):
        buffer = UpdateBuffer(FlushPolicy(batch_size=100))
        index = _RecordingIndex()
        buffer.put(3, (0.0, 0.0), (3.0, 3.0), t=30.0)
        buffer.put(1, (0.0, 0.0), (1.0, 1.0), t=10.0)
        buffer.put(2, (0.0, 0.0), (2.0, 2.0), t=20.0)
        buffer.flush(index)
        nows = [op[3] for op in index.ops]
        assert nows == sorted(nows) == [10.0, 20.0, 30.0]

    def test_unapplied_objects_flush_as_inserts(self):
        buffer = UpdateBuffer(FlushPolicy(batch_size=100))
        index = _RecordingIndex()
        buffer.put(5, None, (4.0, 4.0), t=1.0)
        buffer.flush(index)
        assert index.ops == [("insert", 5, (4.0, 4.0), 1.0)]

    def test_stats_accumulate_across_flushes(self):
        buffer = UpdateBuffer(FlushPolicy(batch_size=2))
        index = _RecordingIndex()
        for oid in (1, 2):
            buffer.put(oid, None, (1.0, 1.0), t=float(oid))
        assert buffer.should_flush()
        buffer.flush(index)
        buffer.put(3, None, (1.0, 1.0), t=3.0)
        buffer.flush(index)
        assert buffer.stats.flushes == 2
        assert buffer.stats.applied == 3
        assert buffer.stats.to_dict()["buffered"] == 3

    def test_flush_keeps_unapplied_updates_on_failure(self):
        # Regression: flush used to clear the whole batch up front, so an
        # index raising mid-batch silently lost the failed + remaining
        # updates.  Now each entry leaves the buffer only after *its* apply.
        class _ExplodingIndex(_RecordingIndex):
            def update(self, oid, old, new, now=None):
                if oid == 2:
                    raise RuntimeError("page fault")
                return super().update(oid, old, new, now=now)

        buffer = UpdateBuffer(FlushPolicy(batch_size=100))
        index = _ExplodingIndex()
        for oid in (1, 2, 3):
            buffer.put(oid, (0.0, 0.0), (float(oid), 0.0), t=float(oid))
        with pytest.raises(RuntimeError):
            buffer.flush(index)
        # oid 1 applied; 2 (failed) and 3 (never reached) are still pending.
        assert buffer.stats.applied == 1
        assert buffer.pending_for(1) is None
        assert buffer.pending_for(2) is not None
        assert buffer.pending_for(3) is not None
        # A retry against a healed index drains the rest exactly once.
        applied = buffer.flush(_RecordingIndex())
        assert applied == 2
        assert len(buffer) == 0


class _RecordingLog:
    """An UpdateLog double that records the acknowledgement order."""

    def __init__(self):
        self.events = []
        self._seq = 0

    def log_insert(self, oid, point, t):
        self._seq += 1
        self.events.append(("ins", oid, tuple(point), t))
        return self._seq

    def log_update(self, oid, old_point, point, t):
        self._seq += 1
        self.events.append(("upd", oid, tuple(point), t))
        return self._seq

    def log_flush(self):
        self.events.append(("flush",))


class TestBufferWal:
    def test_put_logs_before_buffering(self):
        from repro.engine import UpdateLog

        log = _RecordingLog()
        assert isinstance(log, UpdateLog)
        buffer = UpdateBuffer(FlushPolicy(batch_size=100), wal=log)
        buffer.put(1, None, (1.0, 1.0), t=0.0)
        buffer.put(1, (1.0, 1.0), (2.0, 2.0), t=1.0)
        # Coalescing thins the buffer but never the log: both updates were
        # individually acknowledged, so both are individually recoverable.
        assert len(buffer) == 1
        assert [e[0] for e in log.events] == ["ins", "upd"]
        buffer.flush(_RecordingIndex())
        assert log.events[-1] == ("flush",)

    def test_crashing_log_rejects_the_update(self):
        class _CrashingLog(_RecordingLog):
            def log_update(self, oid, old_point, point, t):
                raise RuntimeError("disk gone")

        buffer = UpdateBuffer(FlushPolicy(batch_size=100), wal=_CrashingLog())
        buffer.put(1, None, (1.0, 1.0), t=0.0)
        with pytest.raises(RuntimeError):
            buffer.put(1, (1.0, 1.0), (2.0, 2.0), t=1.0)
        # The failed update was never acknowledged, so it must not pend:
        # the buffer still holds the last *logged* state.
        assert buffer.pending_for(1).point == (1.0, 1.0)
        assert buffer.stats.buffered == 1


class TestMergeResults:
    def test_counters_and_io_sum(self):
        a = RunResult(
            kind="lazy/shard0",
            n_updates=10,
            n_queries=3,
            result_count=5,
            update_io=IOCounter(reads=20, writes=10),
            query_io=IOCounter(reads=6, writes=0),
            n_flushes=1,
            n_coalesced=2,
            n_applied=8,
        )
        b = RunResult(
            kind="lazy/shard1",
            n_updates=4,
            n_queries=2,
            result_count=1,
            update_io=IOCounter(reads=8, writes=4),
            query_io=IOCounter(reads=2, writes=0),
        )
        merged = merge_results([a, b], kind="lazyx2")
        assert merged.kind == "lazyx2"
        assert merged.n_updates == 14
        assert merged.n_queries == 5
        assert merged.result_count == 6
        assert merged.update_ios == 42
        assert merged.query_ios == 8
        assert merged.n_flushes == 1 and merged.n_coalesced == 2
        assert merged.ios_per_update == pytest.approx(3.0)

    def test_refuses_empty(self):
        with pytest.raises(ValueError):
            merge_results([])


class TestSpacePartition:
    def test_routes_along_widest_axis(self):
        tall = Rect((0.0, 0.0), (10.0, 100.0))
        partition = SpacePartition(tall, 4)
        assert partition.axis == 1
        assert partition.shard_of((5.0, 10.0)) == 0
        assert partition.shard_of((5.0, 99.0)) == 3

    def test_out_of_domain_points_clamp(self):
        partition = SpacePartition(DOMAIN, 4)
        assert partition.shard_of((-5.0, 50.0)) == 0
        assert partition.shard_of((1e9, 50.0)) == 3

    def test_regions_tile_the_domain(self):
        partition = SpacePartition(DOMAIN, 5)
        regions = [partition.region(sid) for sid in range(5)]
        assert regions[0].lo == DOMAIN.lo
        assert regions[-1].hi == DOMAIN.hi
        for left, right in zip(regions, regions[1:]):
            assert left.hi[partition.axis] == pytest.approx(
                right.lo[partition.axis]
            )

    def test_intersecting_covers_query(self):
        partition = SpacePartition(DOMAIN, 4)
        assert partition.intersecting(Rect((0.0, 0.0), (100.0, 100.0))) == [
            0, 1, 2, 3,
        ]
        assert partition.intersecting(Rect((10.0, 10.0), (20.0, 20.0))) == [0]
        # queries beyond the domain still land in the edge slabs
        assert partition.intersecting(Rect((-50.0, 0.0), (-10.0, 10.0))) == [0]

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ValueError):
            SpacePartition(DOMAIN, 0)
        with pytest.raises(ValueError):
            SpacePartition(DOMAIN, 2).region(5)

    def test_routing_consistent_at_boundaries(self):
        """Regression: ``intersecting`` used closed-floor math while
        ``shard_of`` was half-open, so a point-rect exactly on (or one ulp
        around) a slab boundary could fan out to a shard that ``shard_of``
        would never route the object to.  Both now share ``slab_of``."""
        import math as _math

        partition = SpacePartition(DOMAIN, 4)
        for boundary in partition.boundaries():
            for x in (
                boundary,  # edge-exact
                _math.nextafter(boundary, -_math.inf),  # epsilon below
                _math.nextafter(boundary, _math.inf),  # epsilon above
            ):
                p = (x, 50.0)
                home = partition.shard_of(p)
                point_rect = Rect(p, p)
                assert partition.intersecting(point_rect) == [home]

    def test_routing_consistent_on_irrational_boundary(self):
        """The last-ulp disagreement case: width 1.0, three slabs, the
        x = 1/3 boundary is not representable, so floor((x-lo)/step) and
        int(frac*n) used to disagree for some points."""
        unit = Rect((0.0, 0.0), (1.0, 1.0))
        partition = SpacePartition(unit, 3)
        for x in (1.0 / 3.0, 2.0 / 3.0, 0.3333333333333333, 0.6666666666666666):
            p = (x, 0.5)
            assert partition.intersecting(Rect(p, p)) == [partition.shard_of(p)]

    def test_zero_extent_domain_degenerates_to_one_shard(self):
        """Regression: a zero-extent domain kept ``_width = 1.0`` as a
        division guard, so region() extended past domain.hi.  It now
        degenerates to a single shard covering the point domain."""
        point_domain = Rect((5.0, 7.0), (5.0, 7.0))
        partition = SpacePartition(point_domain, 4)
        assert partition.n_shards == 1
        assert partition.region(0) == point_domain
        assert partition.shard_of((5.0, 7.0)) == 0
        assert partition.shard_of((99.0, 99.0)) == 0  # clamps, never raises
        assert partition.intersecting(Rect((0.0, 0.0), (10.0, 10.0))) == [0]


class TestShardedIndex:
    def build(self, rng, kind=IndexKind.LAZY, n_shards=4):
        index = ShardedIndex(kind, DOMAIN, n_shards, max_entries=8)
        points = random_points(rng, 80)
        for oid, p in points.items():
            index.insert(oid, p)
        return index, points

    def test_results_match_brute_force(self, rng):
        index, points = self.build(rng)
        for _ in range(20):
            rect = Rect(
                (rng.uniform(0, 80), rng.uniform(0, 80)),
                (rng.uniform(80, 100), rng.uniform(80, 100)),
            )
            got = sorted(oid for oid, _ in index.range_search(rect))
            assert got == brute_force_range(points, rect)

    def test_results_match_unsharded(self, rng):
        sharded, points = self.build(rng)
        plain = make_index(IndexKind.LAZY, Pager(), DOMAIN, max_entries=8)
        for oid, p in points.items():
            plain.insert(oid, p)
        for oid in list(points)[::3]:
            new = (rng.uniform(0, 100), rng.uniform(0, 100))
            sharded.update(oid, points[oid], new)
            plain.update(oid, points[oid], new)
            points[oid] = new
        rect = Rect((10.0, 10.0), (90.0, 90.0))
        assert sorted(sharded.range_search(rect)) == sorted(
            plain.range_search(rect)
        )

    def test_cross_shard_moves_counted_and_ownership_tracked(self, rng):
        index, points = self.build(rng, n_shards=2)
        mover = 0
        index.update(mover, points[mover], (1.0, 50.0))
        assert index.owner_of(mover) == 0
        before = index.cross_shard_moves
        index.update(mover, (1.0, 50.0), (99.0, 50.0))
        assert index.owner_of(mover) == 1
        assert index.cross_shard_moves == before + 1
        assert len(index) == len(points)

    def test_shared_ledger_equals_sum_of_shard_ledgers(self, rng):
        index, _ = self.build(rng)
        shared = index.pager.stats.total()
        per_shard = sum(s.pager.stats.total() for s in index.shards)
        assert shared == per_shard > 0

    def test_merged_result_sums_shard_results(self, rng):
        index, points = self.build(rng)
        index.range_search(Rect((0.0, 0.0), (100.0, 100.0)))
        merged = index.merged_result()
        shard_results = index.shard_results()
        assert merged.n_updates == sum(r.n_updates for r in shard_results)
        assert merged.n_updates == len(points)
        # a full-domain query fans out to every shard
        assert merged.n_queries == index.n_shards
        assert merged.update_ios == sum(r.update_ios for r in shard_results)
        assert merged.result_count == len(points)

    def test_delete_routes_to_owning_shard(self, rng):
        index, points = self.build(rng)
        assert index.delete(5)
        assert index.owner_of(5) is None
        assert len(index) == len(points) - 1
        assert not index.delete(5)

    def test_ct_histories_route_by_latest_position(self, rng):
        histories = small_histories(rng)
        index = ShardedIndex(
            IndexKind.CT, DOMAIN, 2, histories=histories, query_rate=1.0
        )
        for oid, trail in histories.items():
            index.insert(oid, trail[-1][0], now=trail[-1][1])
        assert len(index) == len(histories)
        rect = Rect((0.0, 0.0), (100.0, 100.0))
        assert len(index.range_search(rect)) == len(histories)
