"""Unit tests for the secondary hash index (paper Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashindex import HashIndex
from repro.storage.pager import Pager


@pytest.fixture
def index(pager):
    return HashIndex(pager, entries_per_bucket=4)


class TestBasics:
    def test_get_missing_returns_none(self, index):
        assert index.get(0) is None

    def test_set_then_get(self, index):
        index.set(7, 123)
        assert index.get(7) == 123

    def test_overwrite(self, index):
        index.set(7, 1)
        index.set(7, 2)
        assert index.get(7) == 2
        assert len(index) == 1

    def test_remove(self, index):
        index.set(3, 9)
        assert index.remove(3)
        assert index.get(3) is None
        assert len(index) == 0

    def test_remove_missing_is_false(self, index):
        assert not index.remove(3)

    def test_negative_id_rejected(self, index):
        with pytest.raises(ValueError):
            index.set(-1, 0)

    def test_default_bucket_capacity_from_page_size(self, pager):
        index = HashIndex(pager)
        assert index.entries_per_bucket == pager.page_size // 16


class TestDirectAddressing:
    def test_ids_in_same_bucket_share_page(self, index, pager):
        index.set(0, 10)
        pages_after_first = pager.page_count
        index.set(3, 13)  # same bucket of 4
        assert pager.page_count == pages_after_first
        index.set(4, 14)  # next bucket
        assert pager.page_count == pages_after_first + 1

    def test_sparse_ids_only_allocate_touched_buckets(self, index):
        index.set(0, 1)
        index.set(1000, 2)
        assert index.bucket_count == 2

    def test_size_bytes(self, index, pager):
        index.set(0, 1)
        assert index.size_bytes == pager.page_size


class TestCharging:
    def test_get_costs_one_read(self, index, pager):
        index.set(5, 50)
        before = pager.stats.reads()
        index.get(5)
        assert pager.stats.reads() == before + 1

    def test_get_on_unallocated_bucket_is_free(self, index, pager):
        before = pager.stats.total()
        assert index.get(999) is None
        assert pager.stats.total() == before

    def test_set_costs_read_plus_write_on_existing_bucket(self, index, pager):
        index.set(0, 1)  # allocates
        before_r, before_w = pager.stats.reads(), pager.stats.writes()
        index.set(1, 2)
        assert pager.stats.reads() == before_r + 1
        assert pager.stats.writes() == before_w + 1

    def test_first_set_in_bucket_costs_one_write(self, index, pager):
        before_r, before_w = pager.stats.reads(), pager.stats.writes()
        index.set(0, 1)
        assert pager.stats.reads() == before_r
        assert pager.stats.writes() == before_w + 2  # allocation + content write

    def test_set_many_coalesces_per_bucket(self, index, pager):
        index.set(0, 0)  # allocate bucket 0
        index.set(4, 0)  # allocate bucket 1
        before_r, before_w = pager.stats.reads(), pager.stats.writes()
        index.set_many([(0, 1), (1, 2), (2, 3), (5, 9)])
        # bucket 0: 1 read + 1 write for three entries; bucket 1: 1 + 1.
        assert pager.stats.reads() == before_r + 2
        assert pager.stats.writes() == before_w + 2

    def test_peek_is_free(self, index, pager):
        index.set(0, 7)
        before = pager.stats.total()
        assert index.peek(0) == 7
        assert pager.stats.total() == before


class TestBulk:
    def test_set_many_counts_new_entries_once(self, index):
        index.set_many([(0, 1), (1, 2)])
        index.set_many([(0, 3)])
        assert len(index) == 2
        assert index.get(0) == 3

    @given(st.dictionaries(st.integers(0, 500), st.integers(0, 10_000), max_size=60))
    def test_matches_dict_semantics(self, mapping):
        pager = Pager()
        index = HashIndex(pager, entries_per_bucket=8)
        for key, value in mapping.items():
            index.set(key, value)
        for key, value in mapping.items():
            assert index.get(key) == value
        assert len(index) == len(mapping)
