"""The paper's algorithms "are applicable to the general case of any
multidimensional data" (Section 3.1.1) -- these tests exercise 3-D and 4-D.
"""

import math
import random

import pytest

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.core.qsregion import identify_qs_regions
from repro.rtree import LazyRTree, RTree
from repro.storage.pager import Pager

DOMAIN_3D = Rect((0, 0, 0), (100, 100, 100))


def random_points_3d(rng, count):
    return {
        oid: (rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100))
        for oid in range(count)
    }


def brute(points, rect):
    return sorted(oid for oid, p in points.items() if rect.contains_point(p))


class TestGeometry3D:
    def test_volume_and_diagonal(self):
        cube = Rect((0, 0, 0), (2, 3, 4))
        assert cube.area == 24.0
        assert cube.diagonal == pytest.approx(math.sqrt(4 + 9 + 16))

    def test_containment_and_intersection(self):
        a = Rect((0, 0, 0), (10, 10, 10))
        b = Rect((5, 5, 5), (15, 15, 15))
        assert a.intersects(b)
        assert a.intersection(b) == Rect((5, 5, 5), (10, 10, 10))
        assert not a.contains_rect(b)

    def test_min_distance_3d(self):
        cube = Rect((0, 0, 0), (10, 10, 10))
        assert cube.min_distance((13, 0, 4)) == 3.0
        assert cube.min_distance((13, 14, 10)) == 5.0


class TestRTree3D:
    def test_insert_query_delete(self, rng):
        pager = Pager()
        tree = RTree(pager, max_entries=6)
        points = random_points_3d(rng, 150)
        for oid, point in points.items():
            tree.insert(oid, point)
        assert tree.validate() == []
        for _ in range(25):
            lo = tuple(rng.uniform(0, 60) for _ in range(3))
            hi = tuple(c + rng.uniform(10, 40) for c in lo)
            query = Rect(lo, hi)
            got = sorted(oid for oid, _ in tree.range_search(query))
            assert got == brute(points, query)
        for oid in list(points)[:50]:
            assert tree.delete(oid, points.pop(oid))
        assert tree.validate() == []

    def test_knn_3d(self, rng):
        tree = RTree(Pager(), max_entries=6)
        points = random_points_3d(rng, 120)
        for oid, point in points.items():
            tree.insert(oid, point)
        target = (50.0, 50.0, 50.0)
        got = [oid for _, oid, _ in tree.nearest(target, k=5)]
        expected = sorted(points, key=lambda o: math.dist(points[o], target))[:5]
        assert got == expected

    def test_lazy_updates_3d(self, rng):
        tree = LazyRTree(Pager(), max_entries=6)
        points = random_points_3d(rng, 100)
        for oid, point in points.items():
            tree.insert(oid, point)
        for oid, p in list(points.items())[:50]:
            new = (p[0] + 0.5, p[1] + 0.5, p[2] + 0.5)
            tree.update(oid, p, new)
            points[oid] = new
        assert tree.validate() == []
        assert tree.lazy_hits > 0


class TestPhase1InHigherDimensions:
    def test_3d_sensor_trail(self):
        """A (temp, pressure, humidity) sensor dwelling at an operating point."""
        rng = random.Random(4)
        trail = []
        t = 0.0
        for _ in range(40):
            t += 20.0
            trail.append(
                ((20 + rng.gauss(0, 0.1), 1000 + rng.gauss(0, 0.3), 50 + rng.gauss(0, 0.5)), t)
            )
        # A step change to a new operating point, then a second dwell.
        for _ in range(40):
            t += 20.0
            trail.append(
                ((35 + rng.gauss(0, 0.1), 980 + rng.gauss(0, 0.3), 30 + rng.gauss(0, 0.5)), t)
            )
        params = CTParams(t_dist=5.0, t_rate=0.1, t_time=300.0, t_area=1000.0)
        regions = identify_qs_regions(trail, params)
        assert len(regions) == 2
        assert all(r.rect.dim == 3 for r in regions)


class TestCTRTree3D:
    def test_full_lifecycle_3d(self, rng):
        regions = [
            Rect((i * 30.0, 0, 0), (i * 30.0 + 20, 20, 20)) for i in range(3)
        ]
        tree = CTRTree(Pager(), DOMAIN_3D, regions, max_entries=5, ct_params=CTParams())
        points = {}
        for oid in range(80):
            if oid % 2:
                region = regions[oid % 3]
                point = tuple(rng.uniform(l, h) for l, h in zip(region.lo, region.hi))
            else:
                point = (rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100))
            tree.insert(oid, point)
            points[oid] = point
        assert tree.validate() == []
        for oid in list(points)[:30]:
            new = tuple(min(max(c + rng.gauss(0, 2), 0), 100) for c in points[oid])
            tree.update(oid, points[oid], new)
            points[oid] = new
        assert tree.validate() == []
        query = Rect((0, 0, 0), (50, 50, 50))
        got = sorted(oid for oid, _ in tree.range_search(query))
        assert got == brute(points, query)

    def test_knn_3d_matches_brute_force(self, rng):
        tree = CTRTree(Pager(), DOMAIN_3D, [Rect((10, 10, 10), (40, 40, 40))], max_entries=5)
        points = random_points_3d(rng, 60)
        for oid, point in points.items():
            tree.insert(oid, point)
        target = (25.0, 25.0, 25.0)
        got = [oid for _, oid, _ in tree.nearest(target, k=4)]
        expected = sorted(points, key=lambda o: math.dist(points[o], target))[:4]
        assert got == expected


class TestFourDimensions:
    def test_rtree_4d_roundtrip(self, rng):
        tree = RTree(Pager(), max_entries=5)
        points = {
            oid: tuple(rng.uniform(0, 10) for _ in range(4)) for oid in range(60)
        }
        for oid, point in points.items():
            tree.insert(oid, point)
        assert tree.validate() == []
        query = Rect((0, 0, 0, 0), (5, 5, 5, 5))
        got = sorted(oid for oid, _ in tree.range_search(query))
        assert got == brute(points, query)
