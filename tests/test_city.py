"""Unit tests for city map generation and routing."""

import math

import pytest

from repro.citysim.city import City


@pytest.fixture(scope="module")
def city():
    return City.generate(seed=1)


class TestGeneration:
    def test_default_composition_matches_paper(self, city):
        assert len(city.buildings) == 71
        assert len(city.intersections) == 6
        assert city.park.area > 0

    def test_buildings_disjoint(self, city):
        for i, a in enumerate(city.buildings):
            for b in city.buildings[i + 1 :]:
                assert not a.rect.intersects(b.rect)

    def test_buildings_avoid_park(self, city):
        for building in city.buildings:
            assert not building.rect.intersects(city.park)

    def test_buildings_inside_bounds(self, city):
        for building in city.buildings:
            assert city.bounds.contains_rect(building.rect)

    def test_floors_positive(self, city):
        assert all(1 <= b.floors <= 8 for b in city.buildings)

    def test_entrance_on_boundary(self, city):
        for building in city.buildings:
            e = building.entrance
            rect = building.rect
            on_x = e[0] in (rect.lo[0], rect.hi[0]) and rect.lo[1] <= e[1] <= rect.hi[1]
            on_y = e[1] in (rect.lo[1], rect.hi[1]) and rect.lo[0] <= e[0] <= rect.hi[0]
            assert on_x or on_y

    def test_generation_is_deterministic(self):
        a = City.generate(seed=9, n_buildings=20)
        b = City.generate(seed=9, n_buildings=20)
        assert [x.rect for x in a.buildings] == [x.rect for x in b.buildings]

    def test_different_seeds_differ(self):
        a = City.generate(seed=1, n_buildings=20)
        b = City.generate(seed=2, n_buildings=20)
        assert [x.rect for x in a.buildings] != [x.rect for x in b.buildings]

    def test_roads_cover_intersections_and_accesses(self, city):
        # At least one access road per building.
        assert len(city.roads) >= len(city.buildings)


class TestRouting:
    def test_route_endpoints(self, city):
        src, dst = (10.0, 10.0), (900.0, 900.0)
        route = city.route(src, dst)
        assert route[0] == src
        assert route[-1] == dst
        assert len(route) >= 2

    def test_route_passes_through_network(self, city):
        src = city.buildings[0].entrance
        dst = city.buildings[-1].entrance
        route = city.route(src, dst)
        graph_nodes = set(city.graph.nodes)
        assert any(p in graph_nodes for p in route)

    def test_route_has_finite_length(self, city):
        route = city.route((0.0, 0.0), (1000.0, 1000.0))
        length = sum(math.dist(a, b) for a, b in zip(route, route[1:]))
        assert 0 < length < 10_000


class TestChanges:
    def test_with_changes_swaps_buildings(self, city):
        changed = city.with_changes(remove=5, add=5, seed=3)
        assert len(changed.buildings) == len(city.buildings)
        before = {b.rect for b in city.buildings}
        after = {b.rect for b in changed.buildings}
        assert len(before - after) == 5
        assert len(after - before) == 5

    def test_changed_city_still_disjoint(self, city):
        changed = city.with_changes(remove=5, add=5, seed=3)
        for i, a in enumerate(changed.buildings):
            for b in changed.buildings[i + 1 :]:
                assert not a.rect.intersects(b.rect)

    def test_ids_renumbered(self, city):
        changed = city.with_changes(remove=5, add=5, seed=3)
        assert [b.id for b in changed.buildings] == list(range(len(changed.buildings)))

    def test_zero_changes_is_identity_footprints(self, city):
        same = city.with_changes(remove=0, add=0, seed=3)
        assert {b.rect for b in same.buildings} == {b.rect for b in city.buildings}
