"""Unit tests for data pages and buffer directories."""

import pytest

from repro.core.geometry import Rect
from repro.core.overflow import OWNER_LIST, OWNER_QS, DataPage, NodeBuffer, QSEntry


class TestDataPage:
    def test_capacity_enforced(self):
        page = DataPage(2, (OWNER_LIST, 0), None)
        page.add(1, (0, 0))
        page.add(2, (1, 1))
        assert page.is_full
        with pytest.raises(ValueError):
            page.add(3, (2, 2))

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DataPage(0, (OWNER_LIST, 0), None)

    def test_remove_returns_point(self):
        page = DataPage(4, (OWNER_QS, 0, 1), Rect((0, 0), (10, 10)))
        page.add(7, (3.0, 4.0))
        assert page.remove(7) == (3.0, 4.0)
        assert page.remove(7) is None
        assert page.is_empty

    def test_matches_filters_by_rect(self):
        page = DataPage(4, (OWNER_LIST, 0), None)
        page.add(1, (1.0, 1.0))
        page.add(2, (9.0, 9.0))
        hits = page.matches(Rect((0, 0), (5, 5)))
        assert hits == [(1, (1.0, 1.0))]

    def test_len(self):
        page = DataPage(4, (OWNER_LIST, 0), None)
        page.add(1, (0, 0))
        assert len(page) == 1


class TestQSEntry:
    def test_first_non_full(self):
        qs = QSEntry(Rect((0, 0), (10, 10)), region_id=0)
        qs.chain = [10, 11, 12]
        qs.fills = [4, 4, 2]
        assert qs.first_non_full(4) == 2
        qs.fills = [4, 4, 4]
        assert qs.first_non_full(4) is None

    def test_object_count(self):
        qs = QSEntry(Rect((0, 0), (10, 10)), region_id=0)
        qs.chain = [1, 2]
        qs.fills = [3, 5]
        assert qs.object_count() == 8

    def test_created_at_window(self):
        qs = QSEntry(Rect((0, 0), (1, 1)), region_id=3, created_at=42.0)
        assert qs.window_start == 42.0
        assert qs.removals == 0


class TestNodeBuffer:
    def test_starts_as_empty_list(self):
        buf = NodeBuffer()
        assert buf.kind == NodeBuffer.KIND_LIST
        assert buf.pages == []
        assert buf.object_count() == 0

    def test_first_non_full(self):
        buf = NodeBuffer()
        buf.pages = [5, 6]
        buf.fills = [4, 1]
        assert buf.first_non_full(4) == 1
        buf.fills = [4, 4]
        assert buf.first_non_full(4) is None
