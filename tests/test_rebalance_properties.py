"""Property-based partitioner and rebalance invariants.

Partition laws that must hold for every policy (grid, density, speed)
under arbitrary boundary lists and points: regions tile the domain
exactly, every point routes to exactly one shard, a point query fans out
to exactly the owning shard (plus the churn shard for speed partitions),
and a mid-run rebalance preserves exact I/O-signature parity between the
inline and parallel engines while staying verifier-clean.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.geometry import Rect
from repro.engine import (
    BoundaryPartition,
    IndexKind,
    ShardedIndex,
    SpacePartition,
    SpeedPartition,
)
from repro.health import verify_index
from repro.parallel import ParallelShardedIndex
from repro.storage.iostats import IOCategory

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

COORDS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

#: Strictly-increasing interior boundary lists for the x axis.
BOUNDARY_LISTS = st.lists(
    st.floats(min_value=0.5, max_value=99.5, allow_nan=False),
    min_size=0,
    max_size=6,
    unique=True,
).map(sorted)

PARTITIONS = st.one_of(
    st.integers(min_value=1, max_value=8).map(
        lambda n: SpacePartition(DOMAIN, n)
    ),
    BOUNDARY_LISTS.map(lambda b: BoundaryPartition(DOMAIN, b, axis=0)),
    st.tuples(
        BOUNDARY_LISTS,
        st.sets(st.integers(min_value=0, max_value=15), max_size=5),
    ).map(
        lambda t: SpeedPartition(
            DOMAIN, BoundaryPartition(DOMAIN, t[0], axis=0), t[1]
        )
    ),
)


@given(partition=PARTITIONS)
@SETTINGS
def test_regions_tile_domain_exactly(partition):
    spatial = getattr(partition, "inner", partition)
    regions = [spatial.region(sid) for sid in range(spatial.n_shards)]
    assert regions[0].lo == DOMAIN.lo
    assert regions[-1].hi == DOMAIN.hi
    axis = spatial.axis
    for left, right in zip(regions, regions[1:]):
        assert left.hi[axis] == right.lo[axis]  # no gap, no overlap
    # Off-axis extents always span the whole domain.
    for region in regions:
        for d in range(len(DOMAIN.lo)):
            if d != axis:
                assert region.lo[d] == DOMAIN.lo[d]
                assert region.hi[d] == DOMAIN.hi[d]


@given(partition=PARTITIONS, x=COORDS, y=COORDS)
@SETTINGS
def test_every_point_routes_to_exactly_one_shard(partition, x, y):
    point = (x, y)
    sid = partition.shard_of(point)
    assert 0 <= sid < partition.n_shards
    # The spatial owner's region contains the point on the routing axis
    # (half-open: boundary-exact points belong to the upper slab, and the
    # domain's top edge belongs to the last slab).
    region = partition.region(sid)
    axis = partition.axis
    v = point[axis]
    lo, hi = region.lo[axis], region.hi[axis]
    assert lo <= v
    assert v < hi or hi == DOMAIN.hi[axis]
    # Identity routing is total too, fast or not.
    for oid in (0, 7, 12):
        owner = partition.shard_for(oid, point)
        assert 0 <= owner < partition.n_shards


@given(partition=PARTITIONS, x=COORDS, y=COORDS)
@SETTINGS
def test_point_query_fans_out_to_owner_only(partition, x, y):
    point = (x, y)
    sids = partition.intersecting(Rect(point, point))
    churn = getattr(partition, "churn_sid", None)
    if churn is None:
        assert sids == [partition.shard_of(point)]
    else:
        # Speed partitions add exactly the churn shard, last.
        assert sids == [partition.shard_of(point), churn]
    # Epsilon-perturbed points never fan out wider than the routing says.
    for xx in (math.nextafter(x, -math.inf), math.nextafter(x, math.inf)):
        p = (xx, y)
        fan = partition.intersecting(Rect(p, p))
        assert fan[0] == partition.shard_of(p)


@given(partition=PARTITIONS)
@SETTINGS
def test_boundaries_round_trip_routing(partition):
    from repro.engine import partition_from_dict

    again = partition_from_dict(partition.to_dict())
    assert again.n_shards == partition.n_shards
    for x in (0.0, 13.7, 50.0, 99.99, 100.0):
        p = (x, 1.0)
        assert again.shard_of(p) == partition.shard_of(p)
        assert again.shard_for(5, p) == partition.shard_for(5, p)


OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # 0 = upsert, 1 = query
        st.integers(min_value=0, max_value=15),
        COORDS,
        COORDS,
    ),
    min_size=8,
    max_size=40,
)


def _io_signature(stats):
    return tuple(
        (cat, counter.reads, counter.writes)
        for cat, counter in sorted(stats.snapshot().items())
    )


def _drive(index, ops, rebalance_at, plan):
    """Replay ops under driver-style category scopes, cutting over to
    ``plan`` after ``rebalance_at`` operations."""
    stats = index.pager.stats
    positions = {}
    t = 1000.0
    for i, (op, oid, x, y) in enumerate(ops):
        if i == rebalance_at:
            index.apply_partition(plan)
        t += 1.0
        if op == 0:
            with stats.category(IOCategory.UPDATE):
                if oid in positions:
                    index.update(oid, positions[oid], (x, y), now=t)
                else:
                    index.insert(oid, (x, y), now=t)
            positions[oid] = (x, y)
        else:
            lo = (min(x, y), 0.0)
            hi = (max(x, y), 100.0)
            with stats.category(IOCategory.QUERY):
                index.range_search(Rect(lo, hi))
    return positions


@given(ops=OPS, boundaries=BOUNDARY_LISTS, cut=st.integers(0, 39))
@SETTINGS
def test_midrun_rebalance_keeps_inline_parallel_parity(ops, boundaries, cut):
    """The tentpole invariant: a rebalance cutover mid-run leaves the
    thread-parallel engine's I/O ledger bit-identical to the inline
    engine's, object for object and category for category."""
    rebalance_at = min(cut, len(ops) - 1)
    inline = ShardedIndex(IndexKind.LAZY, DOMAIN, 4, max_entries=8)
    par = ParallelShardedIndex(
        IndexKind.LAZY, DOMAIN, 4, mode="thread", max_entries=8
    )
    try:
        plan_a = BoundaryPartition(DOMAIN, boundaries, axis=0)
        plan_b = BoundaryPartition(DOMAIN, boundaries, axis=0)
        oracle = _drive(inline, ops, rebalance_at, plan_a)
        _drive(par, ops, rebalance_at, plan_b)
        assert _io_signature(par.pager.stats) == _io_signature(
            inline.pager.stats
        )
        assert len(par) == len(inline) == len(oracle)
        got = sorted(par.range_search(DOMAIN))
        assert got == sorted(inline.range_search(DOMAIN))
        assert sorted(oid for oid, _ in got) == sorted(oracle)
        report = verify_index(inline, kind=IndexKind.LAZY)
        assert report.ok, report.violations
        report = verify_index(par, kind=IndexKind.LAZY)
        assert report.ok, report.violations
    finally:
        par.close()
