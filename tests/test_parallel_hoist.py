"""Hoisted-header command framing (PR 7 follow-up).

``("apply", category, ops)`` sub-batches share a byte-identical 2-tuple
header across every shard and every round; ``encode_cmd`` pickles it once
per ``(tag, category)`` and concatenates the cached bytes with the ops
pickle.  These tests pin the framing itself (round-trip, cache reuse,
single-stream passthrough) and that a forced-pipe worker -- whose receive
path had to switch from ``conn.recv()`` to explicit ``decode_frames`` --
still applies and queries correctly.
"""

import pickle

from repro.core.geometry import Rect
from repro.engine.registry import IndexKind, IndexOptions
from repro.parallel.shm import decode_frames
from repro.parallel.workers import _HEADER_PICKLES, ProcessWorker, encode_cmd

DOMAIN = Rect((0.0, 0.0), (100.0, 100.0))


def test_apply_command_round_trips():
    ops = [("insert", 7, (1.0, 2.0), 0.5), ("update", 7, (1.0, 2.0), (3.0, 4.0), 1.0)]
    cmd = ("apply", "update", ops)
    assert decode_frames(encode_cmd(cmd)) == cmd


def test_header_bytes_cached_and_shared():
    _HEADER_PICKLES.clear()
    a = encode_cmd(("apply", "update", [("insert", 1, (0.0, 0.0), 0.0)]))
    b = encode_cmd(("apply", "update", [("insert", 2, (9.0, 9.0), 1.0)]))
    header = _HEADER_PICKLES[("apply", "update")]
    assert a.startswith(header) and b.startswith(header)
    # Exactly one cache entry per category: the header was pickled once.
    assert list(_HEADER_PICKLES) == [("apply", "update")]
    encode_cmd(("apply", "build", []))
    assert ("apply", "build") in _HEADER_PICKLES


def test_non_apply_commands_stay_single_stream():
    for cmd in [("query", "query", (0.0, 0.0), (5.0, 5.0)), ("stats",), ("ping", 3), ("shutdown",)]:
        data = encode_cmd(cmd)
        assert decode_frames(data) == cmd
        # Single stream: plain pickle.loads agrees, proving responses and
        # control commands are untouched by the framing change.
        assert pickle.loads(data) == cmd


def test_naive_loads_would_drop_the_ops_body():
    """The hazard the explicit decoder exists for: pickle.loads silently
    ignores trailing bytes, so it would decode the header and lose the ops."""
    cmd = ("apply", "update", [("insert", 1, (0.0, 0.0), 0.0)])
    data = encode_cmd(cmd)
    assert pickle.loads(data) == ("apply", "update")  # body dropped!
    assert decode_frames(data) == cmd


def test_pipe_transport_applies_hoisted_batches():
    worker = ProcessWorker(
        IndexKind.LAZY,
        0,
        DOMAIN,
        IndexOptions(max_entries=5),
        transport="pipe",
    )
    try:
        assert worker.result().get("ready")
        worker.submit(
            (
                "apply",
                "update",
                [
                    ("insert", 1, (10.0, 10.0), 0.0),
                    ("insert", 2, (20.0, 20.0), 0.5),
                    ("update", 1, (10.0, 10.0), (30.0, 30.0), 1.0),
                ],
            )
        )
        resp = worker.result()
        assert resp["ok"] and resp["applied"] == 3
        worker.submit(("query", "query", (0.0, 0.0), (100.0, 100.0)))
        resp = worker.result()
        assert sorted(oid for oid, _ in resp["matches"]) == [1, 2]
    finally:
        worker.close()
