"""Unit tests for Phase 3: traffic-driven merging (Equation 6)."""

import pytest

from repro.core.geometry import Rect
from repro.core.graph_merge import dead_space_increase, merge_by_traffic, should_merge
from repro.core.params import CTParams
from repro.core.qsregion import QSRegion
from repro.core.update_graph import UpdateGraph


def graph_with_pair(gap: float, weight: float, side: float = 10.0):
    """Two side x side squares separated by ``gap`` along x, linked by ``weight``."""
    g = UpdateGraph()
    a = g.add_region(QSRegion(rect=Rect((0, 0), (side, side)), dwell_time=100))
    b = g.add_region(
        QSRegion(rect=Rect((side + gap, 0), (2 * side + gap, side)), dwell_time=100)
    )
    if weight:
        g.add_edge(a, b, weight)
    return g, a, b


class TestDeadSpace:
    def test_disjoint_pair(self):
        g, a, b = graph_with_pair(gap=10.0, weight=1.0)
        # Union 30x10 = 300; covered 200; dead 100.
        assert dead_space_increase(g, a, b) == pytest.approx(100.0)

    def test_touching_pair_has_no_dead_space(self):
        g, a, b = graph_with_pair(gap=0.0, weight=1.0)
        assert dead_space_increase(g, a, b) == pytest.approx(0.0)

    def test_overlapping_counts_overlap_once(self):
        g = UpdateGraph()
        a = g.add_region(QSRegion(rect=Rect((0, 0), (10, 10)), dwell_time=1))
        b = g.add_region(QSRegion(rect=Rect((5, 0), (15, 10)), dwell_time=1))
        g.add_edge(a, b, 1.0)
        assert dead_space_increase(g, a, b) == pytest.approx(0.0)


class TestShouldMerge:
    def test_heavy_traffic_merges(self):
        g, a, b = graph_with_pair(gap=10.0, weight=100.0)
        assert should_merge(g, a, b, query_rate=1.0, domain_area=1000.0, params=CTParams())

    def test_light_traffic_with_costly_queries_does_not(self):
        g, a, b = graph_with_pair(gap=10.0, weight=0.001)
        assert not should_merge(
            g, a, b, query_rate=100.0, domain_area=1000.0, params=CTParams()
        )

    def test_zero_weight_never_merges(self):
        g, a, b = graph_with_pair(gap=0.0, weight=0.0)
        assert not should_merge(g, a, b, query_rate=0.0, domain_area=1.0, params=CTParams())

    def test_equation6_boundary(self):
        # C_u * w >= C_q * r_q * M / A with M=100, A=1000, r_q=1 -> threshold 0.1.
        g, a, b = graph_with_pair(gap=10.0, weight=0.1)
        assert should_merge(g, a, b, query_rate=1.0, domain_area=1000.0, params=CTParams())
        g2, a2, b2 = graph_with_pair(gap=10.0, weight=0.0999)
        assert not should_merge(
            g2, a2, b2, query_rate=1.0, domain_area=1000.0, params=CTParams()
        )

    def test_scaling_factors_shift_threshold(self):
        g, a, b = graph_with_pair(gap=10.0, weight=0.05)
        base = CTParams()
        assert not should_merge(g, a, b, 1.0, 1000.0, base)
        update_favoring = CTParams(c_update=10.0)
        assert should_merge(g, a, b, 1.0, 1000.0, update_favoring)

    def test_rejects_bad_domain_area(self):
        g, a, b = graph_with_pair(gap=1.0, weight=1.0)
        with pytest.raises(ValueError):
            should_merge(g, a, b, 1.0, 0.0, CTParams())


class TestMergeByTraffic:
    def test_merges_heaviest_first_to_fixpoint(self):
        g = UpdateGraph()
        a = g.add_region(QSRegion(rect=Rect((0, 0), (10, 10)), dwell_time=1))
        b = g.add_region(QSRegion(rect=Rect((20, 0), (30, 10)), dwell_time=1))
        c = g.add_region(QSRegion(rect=Rect((500, 0), (510, 10)), dwell_time=1))
        g.add_edge(a, b, 50.0)   # close + heavy: merges
        g.add_edge(b, c, 0.001)  # far + light: stays
        merges = merge_by_traffic(g, query_rate=1.0, domain_area=10000.0, params=CTParams())
        assert merges == 1
        assert g.region_count == 2

    def test_max_merges_bound(self):
        g = UpdateGraph()
        rids = [
            g.add_region(QSRegion(rect=Rect((i * 12.0, 0), (i * 12.0 + 10, 10)), dwell_time=1))
            for i in range(4)
        ]
        for x, y in zip(rids, rids[1:]):
            g.add_edge(x, y, 100.0)
        merges = merge_by_traffic(
            g, query_rate=1.0, domain_area=10000.0, params=CTParams(), max_merges=1
        )
        assert merges == 1
        assert g.region_count == 3

    def test_no_edges_no_merges(self):
        g = UpdateGraph()
        g.add_region(QSRegion(rect=Rect((0, 0), (1, 1)), dwell_time=1))
        assert merge_by_traffic(g, 1.0, 100.0, CTParams()) == 0

    def test_cascading_merges(self):
        """After one merge the combined region may newly qualify with a third."""
        g = UpdateGraph()
        a = g.add_region(QSRegion(rect=Rect((0, 0), (10, 10)), dwell_time=1))
        b = g.add_region(QSRegion(rect=Rect((10, 0), (20, 10)), dwell_time=1))
        c = g.add_region(QSRegion(rect=Rect((20, 0), (30, 10)), dwell_time=1))
        g.add_edge(a, b, 10.0)
        g.add_edge(b, c, 10.0)
        merge_by_traffic(g, query_rate=1.0, domain_area=10000.0, params=CTParams())
        assert g.region_count == 1
